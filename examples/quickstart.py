#!/usr/bin/env python
"""Quickstart: suppress a moving-object stream with the Dual Kalman Filter.

Covers the minimal end-to-end flow in ~30 lines of code:

1. generate (or load) a stream;
2. pick a state-space model and a precision constraint δ;
3. run the DKF session and compare against the caching baseline.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CachedValueScheme,
    DKFConfig,
    DKFSession,
    evaluate_scheme,
    linear_model,
)
from repro.datasets import moving_object_dataset
from repro.metrics import format_results


def main() -> None:
    # A 2-D trajectory: 4000 positions sampled every 100 ms (paper Fig. 3).
    stream = moving_object_dataset()

    # The user's continuous query tolerates answers within 3 position units.
    delta = 3.0

    # The DKF pair: a constant-velocity model at the server predicts the
    # object's path; the mirror at the sensor transmits only when that
    # prediction drifts out of tolerance.
    dkf = DKFSession(DKFConfig(model=linear_model(dims=2, dt=0.1), delta=delta))

    # The classic alternative: cache the last value, resend when it escapes
    # the same tolerance.
    caching = CachedValueScheme.from_precision(delta, dims=2)

    results = [
        evaluate_scheme(caching, stream),
        evaluate_scheme(dkf, stream),
    ]
    print(format_results(results))

    saved = results[0].updates - results[1].updates
    print(
        f"\nThe DKF suppressed {saved} of {results[0].updates} updates the "
        f"caching scheme needed ({100 * saved / results[0].updates:.0f}% "
        "bandwidth saved) while honouring the same precision constraint."
    )


if __name__ == "__main__":
    main()
