#!/usr/bin/env python
"""Adaptive sampling: skip sensor readings when the stream is predictable.

Implements the paper's future-work item 5 ("adaptively adjusting the
sampling rate based on the innovation sequence").  On a slowly varying
stream like zonal power load the innovation collapses while the model
tracks the cycle, so the sensor can stretch its sampling interval --
saving the *reading* cost (ADC + CPU wake-ups), not just the transmission
-- and snap back to fast sampling when the load moves unexpectedly.

The demo contrasts a fast stream (vehicle) with a slow one (power load):
adaptive sampling is nearly free on the slow stream and visibly costly on
the fast one, which is exactly the trade-off the controller's thresholds
manage.

Run with::

    python examples/adaptive_sampling.py
"""

import math

import numpy as np

from repro import AdaptiveSamplingSession, DKFConfig, DKFSession, evaluate_scheme
from repro.datasets import moving_object_dataset, power_load_dataset
from repro.filters import linear_model, sinusoidal_model
from repro.metrics import collect_trace


def demo(name, stream, config, max_interval):
    plain = DKFSession(config)
    plain_result = evaluate_scheme(plain, stream)

    adaptive = AdaptiveSamplingSession(config, max_interval=max_interval)
    trace = collect_trace(adaptive, stream)
    errors = trace.errors()

    print(f"{name} (delta = {config.delta:g}, max stretch {max_interval}x)")
    print(
        f"  plain DKF: {plain_result.readings} readings, "
        f"{plain_result.updates} updates, "
        f"avg error {plain_result.average_error:.2f}"
    )
    print(
        f"  adaptive:  {adaptive.samples_taken} readings "
        f"({100 * adaptive.samples_taken / len(stream):.0f}% of instants), "
        f"{adaptive.updates_sent} updates, "
        f"avg error {float(errors.mean()):.2f}, "
        f"95th pct error {np.percentile(errors, 95):.2f}"
    )
    print()


def main() -> None:
    # Slow stream: hourly power load -- adaptive sampling is nearly free.
    omega = 2 * math.pi / 24
    demo(
        "Power load (slow, periodic)",
        power_load_dataset(n=2000),
        DKFConfig(model=sinusoidal_model(omega=omega, theta=-8 * omega), delta=50.0),
        max_interval=8,
    )

    # Fast stream: a vehicle at up to 50 units/step -- skipping readings
    # costs real accuracy, so the controller should be kept tight.
    demo(
        "Vehicle (fast, manoeuvring)",
        moving_object_dataset(n=2000),
        DKFConfig(model=linear_model(dims=2, dt=0.1), delta=5.0),
        max_interval=4,
    )

    print(
        "Reading cost falls where the model predicts well; precision at "
        "skipped instants is best-effort, so the stretch cap must match "
        "how fast the stream can surprise you."
    )


if __name__ == "__main__":
    main()
