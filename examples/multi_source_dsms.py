#!/usr/bin/env python
"""A complete mini-DSMS: many sources, many queries, lossy links.

Exercises the :class:`~repro.dsms.engine.StreamEngine` -- the end-to-end
system of the paper's future-work list:

* three heterogeneous sources (vehicle, power zone, web gateway), each
  with its own model;
* multiple queries per source with different precisions (the tightest
  drives the installed filter);
* a lossy link on one source, exercising the resync recovery path;
* a system-wide traffic and energy report.

Run with::

    python examples/multi_source_dsms.py
"""

import math

from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.dkf.protocol import random_loss
from repro.dsms import ContinuousQuery, LinkConfig, StreamEngine
from repro.filters import linear_model, sinusoidal_model


def main() -> None:
    engine = StreamEngine()

    # Register three heterogeneous sources.
    engine.add_source(
        "vehicle-17",
        linear_model(dims=2, dt=0.1),
        moving_object_dataset(n=2000),
    )
    engine.add_source(
        "zone-nj-4",
        sinusoidal_model(omega=2 * math.pi / 24, theta=-8 * 2 * math.pi / 24),
        power_load_dataset(n=2000),
    )
    engine.add_source(
        "gateway-dec",
        linear_model(dims=1, dt=1.0),
        http_traffic_dataset(n=2000),
        link=LinkConfig(loss_fn=random_loss(rate=0.05, seed=7)),  # flaky radio
    )

    # Two queries on the vehicle: dispatcher wants 10-unit accuracy, the
    # collision monitor wants 2 units; the tighter constraint wins.
    engine.submit_query(ContinuousQuery("vehicle-17", delta=10.0, query_id="dispatch"))
    engine.submit_query(ContinuousQuery("vehicle-17", delta=2.0, query_id="collision"))
    engine.submit_query(ContinuousQuery("zone-nj-4", delta=50.0, query_id="load-board"))
    engine.submit_query(
        ContinuousQuery("gateway-dec", delta=10.0, smoothing_f=1e-5, query_id="noc")
    )

    # Run everything to completion.
    ticks = engine.run()
    print(f"Ran {ticks} ticks.\n")

    print("Final query answers:")
    for answer in engine.answers():
        value = ", ".join(f"{v:.1f}" for v in answer.value)
        print(
            f"  {answer.query_id:10s} on {answer.source_id:12s} "
            f"k={answer.k:5d} value=({value}) +-{answer.precision:g}"
        )

    report = engine.report()
    print(
        f"\nSystem report: {report.readings} readings -> "
        f"{report.updates_sent} updates offered, "
        f"{report.bytes_delivered} bytes delivered, "
        f"{report.total_energy_joules * 1e3:.2f} mJ total sensor energy."
    )
    for source_id in ("vehicle-17", "zone-nj-4", "gateway-dec"):
        stats = engine.fabric.stats_for(source_id)
        server_stats = engine.server.stats(source_id)
        print(
            f"  {source_id:12s} delivered={stats.delivered:4d} "
            f"lost={stats.lost:3d} resyncs={stats.resyncs:3d} "
            f"desynced={server_stats['desynced']}"
        )


if __name__ == "__main__":
    main()
