#!/usr/bin/env python
"""Online model selection inside the protocol (paper future-work item 2).

A stream that cycles regimes -- flat, ramp, sinusoid -- defeats any fixed
model choice.  The model-bank DKF runs *all* the candidates on both ends
of the protocol (deterministically, so the mirror property survives),
scores them on every transmitted measurement, and predicts with the
posterior-weighted mixture.  Nobody ever re-installs a filter; the bank
re-decides by itself.

Run with::

    python examples/regime_adaptive.py
"""

import math

from repro.baselines import CachedValueScheme
from repro.datasets import regime_switch_dataset
from repro.dkf import DKFConfig, DKFSession, ModelBankSession
from repro.filters import constant_model, linear_model, sinusoidal_model
from repro.metrics import evaluate_scheme


def main() -> None:
    delta = 2.0
    stream = regime_switch_dataset(n=3000, segment=250)
    candidates = [
        constant_model(dims=1),
        linear_model(dims=1, dt=1.0),
        sinusoidal_model(omega=2 * math.pi / 50, theta=0.0),
    ]

    print(
        "Regime-switching stream (flat -> ramp -> sine, 250 samples each), "
        f"delta = {delta:g}:\n"
    )
    caching = evaluate_scheme(
        CachedValueScheme.from_precision(delta, dims=1), stream
    )
    print(f"  {'caching':18s} {caching.update_percentage:6.2f}% updates")
    for model in candidates:
        result = evaluate_scheme(
            DKFSession(DKFConfig(model=model, delta=delta)), stream
        )
        print(f"  fixed {model.name:12s} {result.update_percentage:6.2f}% updates")

    bank = ModelBankSession(candidates, delta=delta, verify_mirror=False)
    result = evaluate_scheme(bank, stream)
    print(f"  {'model bank':18s} {result.update_percentage:6.2f}% updates")

    print("\nFinal model posteriors at the server:")
    for posterior in bank.posteriors():
        print(f"  {posterior.name:24s} p={posterior.probability:.3f}")
    print(
        "\nThe bank lands below every fixed model: it re-weights toward "
        "whichever candidate explains the current regime, paying only "
        f"{len(candidates)}x the filter compute."
    )


if __name__ == "__main__":
    main()
