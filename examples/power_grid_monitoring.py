#!/usr/bin/env python
"""Power-grid monitoring: model choice on periodic streams (paper Example 2).

A utility's zonal load follows a strong diurnal cycle.  This example shows:

* fitting the sinusoidal model's frequency from the data (FFT), instead of
  assuming it -- the paper's "stream characteristics can only be deduced
  after the stream has been analyzed";
* the update-traffic gap between caching, a generic linear model, and the
  fitted sinusoidal model;
* the paper's robustness claim: perturbing the model's parameters degrades
  performance only mildly;
* a stream synopsis -- storing a month of readings as a handful of update
  points and reconstructing within tolerance.

Run with::

    python examples/power_grid_monitoring.py
"""

import math

from repro import CachedValueScheme, DKFConfig, DKFSession, evaluate_scheme
from repro.datasets import dominant_period, power_load_dataset
from repro.dkf import DKFConfig
from repro.dsms import KalmanSynopsis
from repro.filters import linear_model, sinusoidal_model
from repro.metrics import format_results


def main() -> None:
    stream = power_load_dataset()
    delta = 50.0

    # 1. Identify the dominant cycle from the data itself.
    period = dominant_period(stream)
    omega = 2.0 * math.pi / period
    print(f"Dominant period from FFT: {period:.1f} samples (hourly data, "
          f"so a {period:.0f}-hour cycle); omega = {omega:.4f}")

    # 2. Compare the three schemes at one precision width.
    theta = -8.0 * omega  # afternoon peak
    schemes = [
        CachedValueScheme.from_precision(delta, dims=1),
        DKFSession(DKFConfig(model=linear_model(dims=1, dt=1.0), delta=delta)),
        DKFSession(
            DKFConfig(model=sinusoidal_model(omega=omega, theta=theta), delta=delta)
        ),
    ]
    results = [evaluate_scheme(s, stream) for s in schemes]
    print()
    print(format_results(results))

    # 3. Robustness: the paper's claim is that even with mis-specified
    #    parameters "in almost all cases the sinusoidal KF model
    #    outperformed the caching model".
    caching_pct = results[0].update_percentage
    print(
        f"\nRobustness to model mis-specification (update % at delta=50; "
        f"caching reference: {caching_pct:.2f}%):"
    )
    for scale, label in [(1.0, "exact"), (1.1, "+10% omega"), (0.9, "-10% omega"),
                         (1.5, "+50% omega")]:
        session = DKFSession(
            DKFConfig(
                model=sinusoidal_model(omega=omega * scale, theta=theta),
                delta=delta,
            )
        )
        result = evaluate_scheme(session, stream)
        verdict = "beats caching" if result.update_percentage < caching_pct else "worse"
        print(f"  {label:12s} {result.update_percentage:6.2f}%  ({verdict})")

    # 4. Store the month as a synopsis and reconstruct.
    synopsis = KalmanSynopsis(
        DKFConfig(model=sinusoidal_model(omega=omega, theta=theta), delta=delta)
    )
    stats = synopsis.ingest(stream)
    error = synopsis.reconstruction_error(stream)
    print(
        f"\nSynopsis: {stats.original_records} hourly readings stored as "
        f"{stats.stored_updates} update points "
        f"({stats.compression_ratio:.1f}x compression), max reconstruction "
        f"error {error:.1f} (tolerance {stats.tolerance:g} at decision "
        "points)."
    )


if __name__ == "__main__":
    main()
