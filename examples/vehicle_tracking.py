#!/usr/bin/env python
"""Vehicle tracking with model selection, forecasting and energy accounting.

The paper's motivating scenario (Section 1.1): a vehicle reports GPS
positions over a power-constrained wireless link.  This example goes past
the quickstart:

* compares constant / linear / acceleration models at one precision;
* shows the server answering *future* queries by forecasting from the
  cached procedure -- impossible with static value caching;
* shows a :class:`~repro.filters.model_bank.ModelBank` identifying the
  right motion model online;
* converts the saved traffic into sensor-battery terms with the paper's
  bit-vs-instruction energy ratio.

Run with::

    python examples/vehicle_tracking.py
"""

import numpy as np

from repro import DKFConfig, DKFSession, ModelBank, evaluate_scheme
from repro.datasets import moving_object_dataset
from repro.dkf.protocol import FLOAT_BYTES, HEADER_BYTES
from repro.dsms import EnergyModel
from repro.filters import acceleration_model, constant_model, linear_model
from repro.metrics import format_results


def compare_models(stream, delta: float):
    """Score the three kinematic model orders at one precision width."""
    dt = stream.sampling_interval
    sessions = {
        "constant": DKFSession(DKFConfig(model=constant_model(dims=2), delta=delta)),
        "linear": DKFSession(
            DKFConfig(model=linear_model(dims=2, dt=dt), delta=delta)
        ),
        "acceleration": DKFSession(
            DKFConfig(model=acceleration_model(dims=2, dt=dt), delta=delta)
        ),
    }
    results = [evaluate_scheme(s, stream) for s in sessions.values()]
    print("Model comparison at delta =", delta)
    print(format_results(results))
    return sessions


def forecast_demo(stream, delta: float) -> None:
    """Server-side forecasting: where will the vehicle be in 1 second?"""
    session = DKFSession(
        DKFConfig(model=linear_model(dims=2, dt=stream.sampling_interval), delta=delta)
    )
    for record in stream:
        session.observe(record)
    horizon = 10  # 10 samples x 100 ms = 1 s ahead.
    forecast = session.forecast(horizon)
    print(
        f"\nServer forecast {horizon} steps ahead of the last reading: "
        f"({forecast[-1][0]:.1f}, {forecast[-1][1]:.1f}) -- answered with "
        "zero communication."
    )


def model_bank_demo(stream) -> None:
    """Online model identification from the measurement stream alone."""
    bank = ModelBank(
        [
            constant_model(dims=2),
            linear_model(dims=2, dt=stream.sampling_interval),
            acceleration_model(dims=2, dt=stream.sampling_interval),
        ]
    )
    bank.prime(stream[0].value)
    for record in list(stream)[1:500]:
        bank.step(record.value)
    print("\nModel bank posteriors after 500 samples:")
    for posterior in bank.posteriors():
        print(f"  {posterior.name:30s} p={posterior.probability:.3f}")
    print(f"  winner: {bank.best().name}")


def energy_demo(stream, delta: float) -> None:
    """Battery impact: DKF vs transmit-everything, in joules."""
    session = DKFSession(
        DKFConfig(model=linear_model(dims=2, dt=stream.sampling_interval), delta=delta)
    )
    result = evaluate_scheme(session, stream)
    model = EnergyModel(joules_per_bit=1e-6, bit_to_instruction_ratio=1000)
    bytes_sent = result.updates * (HEADER_BYTES + 2 * FLOAT_BYTES)
    dkf_energy = model.report(
        bytes_sent=bytes_sent,
        filter_steps=result.readings,
        state_dim=4,
        measurement_dim=2,
    )
    naive = model.naive_report(result.readings, floats_per_reading=2)
    print(
        f"\nEnergy at delta={delta}: DKF {dkf_energy.total_joules * 1e3:.2f} mJ "
        f"(radio {dkf_energy.radio_share:.0%}) vs transmit-everything "
        f"{naive.total_joules * 1e3:.2f} mJ -- "
        f"{naive.total_joules / dkf_energy.total_joules:.1f}x battery life on "
        "the radio budget."
    )


def main() -> None:
    stream = moving_object_dataset()
    delta = 3.0
    compare_models(stream, delta)
    forecast_demo(stream, delta)
    model_bank_demo(stream)
    energy_demo(stream, delta)


if __name__ == "__main__":
    main()
