#!/usr/bin/env python
"""Multi-sensor fusion and cross-source aggregates.

Two capabilities layered on the DKF substrate:

1. **Information-form fusion** -- two noisy position sensors observe the
   same vehicle; the information filter fuses them with a commutative
   addition per sensor, beating either sensor alone (the multi-sensor
   data-fusion application the paper cites for the Kalman filter).
2. **Certified aggregates** -- the server answers AVG/MIN/MAX queries
   *across* sources from its predictions, with an interval bound derived
   from the per-source precision widths -- zero extra communication.

Run with::

    python examples/sensor_fusion.py
"""

import numpy as np

from repro import InformationFilter
from repro.datasets import power_load_dataset
from repro.dsms import (
    AggregateQuery,
    ContinuousQuery,
    StreamEngine,
    answer_aggregate,
)
from repro.filters import linear_model


def fusion_demo() -> None:
    """Two position sensors, one fused track."""
    dt = 1.0
    phi = np.array([[1.0, dt], [0.0, 1.0]])
    q = np.diag([1e-4, 1e-4])
    h = np.array([[1.0, 0.0]])
    r_good = np.eye(1) * 0.25  # precise sensor
    r_poor = np.eye(1) * 4.0  # cheap sensor

    rng = np.random.default_rng(0)
    truth_pos, truth_vel = 0.0, 1.5

    fused = InformationFilter(phi, q, x0=np.zeros(2), p0=np.eye(2) * 10)
    only_good = InformationFilter(phi, q, x0=np.zeros(2), p0=np.eye(2) * 10)
    only_poor = InformationFilter(phi, q, x0=np.zeros(2), p0=np.eye(2) * 10)

    err = {"fused": 0.0, "good": 0.0, "poor": 0.0}
    steps = 400
    for _ in range(steps):
        truth_pos += truth_vel * dt
        z_good = np.array([truth_pos + rng.normal(0, 0.5)])
        z_poor = np.array([truth_pos + rng.normal(0, 2.0)])
        for filt in (fused, only_good, only_poor):
            filt.predict()
        fused.fuse([(h, r_good, z_good), (h, r_poor, z_poor)])
        only_good.update(h, r_good, z_good)
        only_poor.update(h, r_poor, z_poor)
        err["fused"] += abs(fused.x[0] - truth_pos)
        err["good"] += abs(only_good.x[0] - truth_pos)
        err["poor"] += abs(only_poor.x[0] - truth_pos)

    print("Sensor fusion (mean |position error| over the run):")
    for name in ("poor", "good", "fused"):
        print(f"  {name:6s} {err[name] / steps:.3f}")
    print(
        "  fusing both sensors beats the better sensor alone -- evidence "
        "adds in information form.\n"
    )


def aggregate_demo() -> None:
    """Grid-wide load statistics from per-zone DKF predictions."""
    engine = StreamEngine()
    zones = ["north", "south", "east", "west"]
    for i, zone in enumerate(zones):
        engine.add_source(
            f"zone-{zone}",
            linear_model(dims=1, dt=1.0),
            power_load_dataset(n=1000, seed=100 + i),
        )
        engine.submit_query(
            ContinuousQuery(f"zone-{zone}", delta=40.0, query_id=f"q-{zone}")
        )
    engine.run()

    source_ids = tuple(f"zone-{z}" for z in zones)
    print("Grid-wide aggregates from predictions (per-zone delta = 40):")
    for kind in ("avg", "min", "max", "sum"):
        answer = answer_aggregate(
            engine, AggregateQuery(kind, source_ids, query_id=f"grid-{kind}")
        )
        print(
            f"  {kind.upper():3s} = {answer.value:8.1f}  "
            f"certified within +-{answer.error_bound:.1f} "
            f"[{answer.lower:.1f}, {answer.upper:.1f}]"
        )
    report = engine.report()
    print(
        f"\n  answered from {report.updates_sent} updates over "
        f"{report.readings} readings "
        f"({100 * report.updates_sent / report.readings:.1f}% transmitted) -- "
        "the aggregates themselves cost zero extra messages."
    )


def main() -> None:
    fusion_demo()
    aggregate_demo()


if __name__ == "__main__":
    main()
