#!/usr/bin/env python
"""Network monitoring: smoothing noisy streams (paper Example 3).

HTTP traffic counts are too noisy for raw prediction to suppress anything.
This example shows:

* the effect of the smoothing factor F on the value stream the query sees;
* the update-traffic vs fidelity trade-off F controls (the paper's
  "fine-grain control over the sensitivity of the result");
* the innovation monitor flagging traffic spikes as outliers while the
  smoothed query answer glides over them.

Run with::

    python examples/network_monitoring.py
"""

import numpy as np

from repro import DKFConfig, DKFSession, evaluate_scheme
from repro.datasets import http_traffic_dataset
from repro.filters import InnovationMonitor, KalmanFilter, constant_model, linear_model
from repro.filters.smoothing import smooth_series


def smoothing_tradeoff(stream) -> None:
    """Sweep F: updates transmitted vs adherence to the raw data."""
    raw = stream.component(0)
    print("F sweep at delta = 10 (linear model):")
    print(f"  {'F':>8s}  {'updates%':>8s}  {'raw RMS err':>11s}")
    for f in (1e-9, 1e-7, 1e-5, 1e-3, 1e-1):
        session = DKFSession(
            DKFConfig(model=linear_model(dims=1, dt=1.0), delta=10.0, smoothing_f=f)
        )
        result = evaluate_scheme(session, stream)
        smoothed = smooth_series(raw, f=f)
        rms = float(np.sqrt(np.mean((smoothed - raw) ** 2)))
        print(f"  {f:8.0e}  {result.update_percentage:8.2f}  {rms:11.1f}")
    print(
        "  -> small F: almost no updates, heavily averaged answers;\n"
        "     large F: faithful answers, near-continuous updates."
    )


def spike_detection(stream) -> None:
    """Innovation monitoring: spikes are outliers, not trend changes."""
    values = stream.component(0)
    model = constant_model(dims=1, q=1.0, r=float(np.var(values[:50])))
    filter_ = model.build_filter(values[:1])
    monitor = InnovationMonitor(window=50, outlier_nis=10.8)  # chi2_1 99.9%
    outliers = []
    for k, value in enumerate(values[1:], start=1):
        filter_.predict()
        innovation = np.array([value]) - filter_.predict_measurement()
        s = filter_.innovation_covariance()
        if monitor.record(innovation, s):
            outliers.append(k)
        filter_.update(np.array([value]))
    top = np.argsort(values)[-5:]
    print(
        f"\nInnovation monitor: {len(outliers)} outliers in "
        f"{len(values) - 1} samples "
        f"({100 * len(outliers) / (len(values) - 1):.1f}%)."
    )
    flagged_top = sum(1 for k in top if k in set(outliers))
    print(
        f"  {flagged_top}/5 of the largest spikes were flagged; the "
        "smoothed query answer is unaffected by them, but the monitor "
        "lets an operator see them (Section 3.1, advantage 5)."
    )


def main() -> None:
    stream = http_traffic_dataset()
    summary = stream.summary()
    print(
        f"HTTP traffic stream: {summary['length']} samples, "
        f"mean {summary['mean']:.0f}, std {summary['std']:.0f} "
        "(no visible trend -- raw prediction is hopeless)\n"
    )
    smoothing_tradeoff(stream)
    spike_detection(stream)


if __name__ == "__main__":
    main()
