# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench soak wire-chaos figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# The CI-scale wire soak: 5k sources over real sockets, gated on probe
# p99 latency, datagram conservation and fleet priming.
soak:
	$(PYTHON) -m repro wire --soak --sources 5000 \
		--out soak.json --bench-out BENCH_wire.json

# The chaos drill: seeded socket-level faults, adversarial fuzzing, a
# mid-run rebind/stall and the zero-loss drain/restart, all gated.
wire-chaos:
	$(PYTHON) -m repro wire --chaos --seed 7 \
		--out chaos-summary.json --chaos-report chaos-report.json \
		--bench-out BENCH_wire_chaos.json

figures:
	$(PYTHON) -m repro.experiments.export figures-out/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

clean:
	rm -rf build dist *.egg-info figures-out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
