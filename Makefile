# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) -m repro.experiments.export figures-out/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; echo; done

clean:
	rm -rf build dist *.egg-info figures-out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
