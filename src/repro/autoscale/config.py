"""Autoscaler configuration: one frozen policy object.

:class:`AutoscalePolicy` is the single knob bundle both engines accept.
Like :class:`~repro.resilience.config.ResilienceConfig`, a default
instance is conservative -- forecasting runs every ``control_interval``
ticks, surges boost the process noise for a bounded window, and the
planner may take at most a couple of actions per interval -- and
``validate()`` rejects nonsense up front rather than letting a bad knob
silently disable the control loop.

The knobs split into three groups (see ``docs/AUTOSCALE.md``):

* **Forecast** -- ``model`` / ``horizon_ticks`` / ``confidence_z``
  shape the per-signal Kalman load models and the honest upper bound
  the planner consumes; ``surge_z`` / ``q_boost`` / ``boost_ticks``
  are the innovation-driven regime-change response.
* **Plan** -- the watermark fractions and per-interval action caps
  that turn a forecast into δ-widening / restore steps (scalar
  engine) or split / merge / pool-resize decisions (batch engine).
* **Actuate** -- worker-pool bounds for the batch engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AutoscalePolicy"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for the predictive autoscaler.

    Attributes:
        control_interval: Ticks between plan evaluations.
        horizon_ticks: Forecast lookahead, in ticks.  The planner acts
            on the *predicted* state this far ahead, which is exactly
            the lead time it buys over the reactive controller.
        model: Load-model kind -- ``"rw"`` (random walk, the default:
            honest for noisy count-like signals) or ``"cv"`` (constant
            velocity; tracks ramps but extrapolates trend, so its
            long-horizon intervals are far wider on jittery data).
        confidence_z: Width of the one-sided prediction interval the
            planner consumes (upper bound = mean + z·σ).  Honest
            planning uses the bound, not the point forecast.
        surge_z: Innovation z-score that flags a regime change.
        q_boost: Process-noise multiplier while a surge is active --
            the filter re-learns the new level fast instead of
            low-passing it away.
        boost_ticks: How long one surge detection keeps Q boosted.
        warmup_ticks: Observations consumed before forecasts are
            trusted (the planner stays passive during warmup).
        widen_per_interval: Max δ-widening steps per control interval.
        restore_per_interval: Max restore steps per control interval.
        plan_high: Predicted inbox fill fraction that triggers
            proactive widening (scalar engine).
        plan_low: Predicted fill fraction below which restores run.
        split_headroom: Split a shard when its predicted step latency
            exceeds ``split_headroom × latency_budget_us``.
        merge_headroom: Merge two sibling shards when their combined
            predicted latency stays under
            ``merge_headroom × latency_budget_us``.
        min_workers: Worker-pool floor (batch engine).
        max_workers: Worker-pool ceiling (batch engine).
    """

    control_interval: int = 4
    horizon_ticks: int = 8
    model: str = "rw"
    confidence_z: float = 1.0
    surge_z: float = 2.5
    q_boost: float = 32.0
    boost_ticks: int = 12
    warmup_ticks: int = 16
    widen_per_interval: int = 2
    restore_per_interval: int = 2
    plan_high: float = 0.5
    plan_low: float = 0.1
    split_headroom: float = 1.0
    merge_headroom: float = 0.35
    min_workers: int = 0
    max_workers: int = 8

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad values."""
        if self.control_interval < 1:
            raise ConfigurationError("control interval must be >= 1 tick")
        if self.horizon_ticks < 1:
            raise ConfigurationError("forecast horizon must be >= 1 tick")
        if self.model not in ("rw", "cv"):
            raise ConfigurationError(
                f"unknown load model {self.model!r} (want 'rw' or 'cv')"
            )
        if self.confidence_z < 0:
            raise ConfigurationError("confidence_z must be non-negative")
        if self.surge_z <= 0:
            raise ConfigurationError("surge_z must be positive")
        if self.q_boost < 1.0:
            raise ConfigurationError("q_boost must be at least 1")
        if self.boost_ticks < 1:
            raise ConfigurationError("boost_ticks must be >= 1")
        if self.warmup_ticks < 1:
            raise ConfigurationError("warmup_ticks must be >= 1")
        if self.widen_per_interval < 1 or self.restore_per_interval < 1:
            raise ConfigurationError(
                "per-interval action caps must be at least 1"
            )
        if not 0.0 < self.plan_low < self.plan_high <= 1.0:
            raise ConfigurationError(
                "plan watermarks must satisfy 0 < low < high <= 1"
            )
        if self.split_headroom <= 0 or self.merge_headroom <= 0:
            raise ConfigurationError("headroom fractions must be positive")
        if self.merge_headroom >= self.split_headroom:
            raise ConfigurationError(
                "merge_headroom must sit below split_headroom "
                "(hysteresis keeps split/merge from flapping)"
            )
        if self.min_workers < 0 or self.max_workers < self.min_workers:
            raise ConfigurationError(
                "need 0 <= min_workers <= max_workers"
            )
