"""Autoscale controllers: close the forecast→plan→actuate loop.

Two controllers share the forecasters and planner but drive different
actuators:

* :class:`InboxAutoscaler` (scalar engine) forecasts the server-inbox
  arrival rate and hands δ-widening / restore schedules to the existing
  :class:`~repro.resilience.supervisor.OverloadController` *before* the
  inbox crosses its watermark -- the controller's exact shed-error
  account and LIFO restore discipline are reused verbatim, so the audit
  trail is one ledger whether shedding was planned or reactive.
* :class:`ShardAutoscaler` (batch engine) forecasts per-shard step
  latency and plans shard splits, state-preserving merges and
  worker-pool resizes; the engine owns the actual router surgery.

Both keep a bounded plan trace (every control interval's inputs and
decisions) and emit ``autoscale.*`` events/metrics through the
telemetry handle, so ``forecast vs. actual`` is inspectable after any
run.
"""

from __future__ import annotations

from repro.autoscale.config import AutoscalePolicy
from repro.autoscale.forecast import LoadForecaster
from repro.autoscale.planner import QueueingPlanner, ResourcePlan
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["InboxAutoscaler", "ShardAutoscaler"]

#: Hard cap on retained trace entries (a control interval each).
_TRACE_MAX = 4096


class _TraceMixin:
    """Shared bounded plan trace + telemetry emission."""

    def _init_trace(self, telemetry) -> None:
        self._tel = telemetry or NULL_TELEMETRY
        self._trace: list[dict] = []
        self._plans = 0

    def _record(self, entry: dict) -> None:
        self._plans += 1
        if len(self._trace) < _TRACE_MAX:
            self._trace.append(entry)

    def trace(self) -> list[dict]:
        """Every recorded control-interval decision, in order."""
        return list(self._trace)


class InboxAutoscaler(_TraceMixin):
    """Predictive δ-widening for the scalar engine's bounded inbox.

    Args:
        policy: Autoscale knobs.
        overload: The engine's overload controller (the actuator; its
            shed ledger covers planned and reactive widening alike).
        telemetry: Observability handle.

    The engine calls :meth:`control` once per tick from its inbox-drain
    step, before the reactive controller runs.  Most ticks only feed
    the forecaster; every ``control_interval`` ticks a plan is made and
    actuated.  Returns ``{source_id: scale}`` changes to apply.
    """

    def __init__(
        self, policy: AutoscalePolicy, overload, telemetry=None
    ) -> None:
        policy.validate()
        self.policy = policy
        self._overload = overload
        self._planner = QueueingPlanner(policy)
        self._arrival = LoadForecaster("inbox_arrival", policy, q=0.05)
        self._depth = LoadForecaster("inbox_depth", policy, q=0.1)
        self._last_offered: int | None = None
        self._init_trace(telemetry)

    @property
    def arrival(self) -> LoadForecaster:
        """The arrival-rate load model (live object)."""
        return self._arrival

    def control(self, tick: int, *, depth: int, offered: int) -> dict[str, float]:
        """Observe this tick's load; plan and actuate on the interval.

        Args:
            tick: Current engine tick.
            depth: Inbox depth after this tick's drain.
            offered: Cumulative messages offered to the inbox
                (accepted + dropped -- the true arrival count).
        """
        arrival = (
            0.0 if self._last_offered is None
            else float(offered - self._last_offered)
        )
        had_baseline = self._last_offered is not None
        self._last_offered = offered
        tel = self._tel
        if had_baseline:
            was_boosted = self._arrival.boosted
            self._arrival.observe(tick, arrival)
            self._depth.observe(tick, float(depth))
            if self._arrival.boosted and not was_boosted:
                if tel.enabled:
                    tel.emit(
                        "autoscale.surge",
                        signal="inbox_arrival",
                        value=arrival,
                        z=round(self._arrival.last_z or 0.0, 3),
                    )
                    tel.count("autoscale_surges_total")
            if tel.enabled:
                tel.gauge("autoscale_arrival_rate", arrival)
                if self._arrival.last_predicted is not None:
                    tel.gauge(
                        "autoscale_forecast_error",
                        abs(arrival - self._arrival.last_predicted),
                    )
        # Surge interrupt: while the regime-change boost is active the
        # control loop runs every tick instead of waiting out the
        # interval -- each tick of planning delay during a surge is a
        # tick of unplanned tail-dropping at the inbox.  The need
        # credit keeps the hot loop from over-asking.
        if tick % self.policy.control_interval != 0 and not self._arrival.boosted:
            return {}
        if not self._arrival.warmed:
            return {}
        forecast = self._arrival.forecast()
        if forecast is None:
            return {}
        policy = self._overload.policy
        ledger = self._overload.ledger()
        plan = self._planner.plan_inbox(
            tick,
            depth=depth,
            capacity=policy.inbox_capacity,
            drain_per_tick=policy.drain_per_tick,
            arrival=forecast,
            streams=len(self._overload.report()),
            widened=ledger["widen_steps"] - ledger["restore_steps"],
            surging=self._arrival.boosted,
        )
        changes = self._actuate(tick, plan)
        self._record(
            {
                "tick": tick,
                "widen_steps": plan.widen_steps,
                "restore_steps": plan.restore_steps,
                "changes": dict(changes),
                **plan.reason,
            }
        )
        if tel.enabled:
            tel.gauge(
                "autoscale_predicted_depth",
                float(plan.reason.get("predicted_depth", 0.0)),
            )
            if plan.acts:
                tel.emit(
                    "autoscale.plan",
                    widen=plan.widen_steps,
                    restore=plan.restore_steps,
                    **{
                        k: v for k, v in plan.reason.items()
                        if not isinstance(v, dict)
                    },
                )
                tel.count("autoscale_plans_total")
        return changes

    def _actuate(self, tick: int, plan: ResourcePlan) -> dict[str, float]:
        changes: dict[str, float] = {}
        if plan.widen_steps:
            # No act-and-wait hold here: the planner already credits
            # outstanding steps against the need, so a repeated ask
            # means the forecast genuinely grew -- delaying it just
            # hands the work to the reactive backstop (which widens
            # later, drops more, and charges the same ledger).
            changes.update(
                self._overload.plan_widen(tick, plan.widen_steps)
            )
            if self._tel.enabled and changes:
                self._tel.count(
                    "autoscale_widen_planned_total", amount=len(changes)
                )
        elif plan.restore_steps:
            changes.update(
                self._overload.plan_restore(tick, plan.restore_steps)
            )
            if self._tel.enabled and changes:
                self._tel.count(
                    "autoscale_restore_planned_total", amount=len(changes)
                )
        return changes

    def report(self) -> dict[str, object]:
        """Audit summary: forecaster state, plan counts, shed ledger."""
        return {
            "plans": self._plans,
            "arrival": self._arrival.as_dict(),
            "depth": self._depth.as_dict(),
            "ledger": self._overload.ledger(),
        }


class ShardAutoscaler(_TraceMixin):
    """Predictive split/merge/pool-resize planning for the batch engine.

    The engine feeds :meth:`note` one latency sample per shard per tick
    and calls :meth:`control` once per tick; on the control interval it
    gets back a :class:`~repro.autoscale.planner.ResourcePlan` to
    actuate (the engine owns the router surgery and pool handle).
    """

    def __init__(self, policy: AutoscalePolicy, telemetry=None) -> None:
        policy.validate()
        self.policy = policy
        self._planner = QueueingPlanner(policy)
        self._models: dict[str, LoadForecaster] = {}
        self._init_trace(telemetry)

    def forget(self, shard_id: str) -> None:
        """Drop the model of a shard that split or merged away."""
        self._models.pop(shard_id, None)

    def note(self, tick: int, shard_id: str, step_us: float) -> None:
        """Record one shard-step latency sample."""
        model = self._models.get(shard_id)
        if model is None:
            model = LoadForecaster(
                f"shard:{shard_id}", self.policy, q=1.0
            )
            self._models[shard_id] = model
        model.observe(tick, step_us)

    def control(
        self,
        tick: int,
        *,
        budget_us: float,
        rows: dict[str, int],
        signatures: dict[str, object],
        workers: int,
    ) -> ResourcePlan | None:
        """The interval's plan, or None off-interval / before warmup."""
        if tick % self.policy.control_interval != 0:
            return None
        predictions = {
            sid: fc
            for sid, model in self._models.items()
            if sid in rows and model.warmed
            and (fc := model.forecast()) is not None
        }
        if not predictions:
            return None
        plan = self._planner.plan_shards(
            tick,
            budget_us=budget_us,
            predictions=predictions,
            rows=rows,
            signatures=signatures,
            current_workers=workers,
        )
        self._record(
            {
                "tick": tick,
                "splits": list(plan.split_shards),
                "merges": [list(p) for p in plan.merge_pairs],
                "workers": plan.workers,
                **{
                    k: v for k, v in plan.reason.items()
                    if not isinstance(v, dict)
                },
            }
        )
        if self._tel.enabled and plan.acts:
            self._tel.emit(
                "autoscale.plan",
                splits=len(plan.split_shards),
                merges=len(plan.merge_pairs),
                workers=plan.workers,
            )
            self._tel.count("autoscale_plans_total")
        return plan

    def report(self) -> dict[str, object]:
        """Audit summary: per-shard forecaster state + plan count."""
        return {
            "plans": self._plans,
            "shards": {
                sid: model.as_dict()
                for sid, model in sorted(self._models.items())
            },
        }
