"""Kalman load forecasting: the repo's own filters sizing its resources.

This is the loop from "Robust Dynamic CPU Resource Provisioning in
Virtualized Servers" (arXiv:1811.05533) applied to the engine itself:
each load signal -- inbox arrival rate, queue depth, per-tick shard
service cost -- runs through a small :class:`~repro.filters.kalman
.KalmanFilter` (random walk or constant velocity), and the planner acts
on the filter's *h-step prediction interval*, not the last noisy sample.

Two properties matter for control:

* **Surge response.**  A regime change (offered load triples) shows up
  as a large innovation.  When ``|innovation| / sqrt(S)`` crosses
  ``surge_z`` the forecaster multiplies the process noise by
  ``q_boost`` for ``boost_ticks``, so the filter snaps to the new level
  in a couple of observations instead of low-passing the surge away --
  the same Q-boost-on-maneuver idiom the RSSI trackers in SNIPPETS.md
  use, pointed at the engine's own vitals.
* **Honest intervals.**  :meth:`LoadForecaster.forecast` propagates the
  posterior covariance through the same h-step recursion as the state
  (``P_h = F P F' + Q`` applied h times, plus R on the way out), so the
  returned σ is the filter's actual predictive uncertainty, surge boost
  included.  Planning against ``mean + z·σ`` is then a calibrated bet,
  not a vibe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.autoscale.config import AutoscalePolicy
from repro.filters.kalman import KalmanFilter

__all__ = ["Forecast", "LoadForecaster"]

#: Floor on the adapted measurement noise (signal units, squared).
_R_FLOOR = 1e-2
#: EWMA weight for the innovation-driven R estimate.
_R_ALPHA = 0.1


@dataclass(frozen=True)
class Forecast:
    """One h-step-ahead prediction with an honest interval.

    Attributes:
        mean: Predicted signal level ``horizon`` ticks ahead.
        sigma: Predictive standard deviation at that horizon
            (state uncertainty propagated h steps, plus measurement
            noise).
        horizon: Lookahead the prediction was made for, in ticks.
    """

    mean: float
    sigma: float
    horizon: int

    def upper(self, z: float) -> float:
        """One-sided upper bound ``mean + z·σ`` (the planning input)."""
        return self.mean + z * self.sigma

    def lower(self, z: float) -> float:
        """One-sided lower bound ``mean − z·σ``."""
        return self.mean - z * self.sigma


class LoadForecaster:
    """Adaptive scalar load model over one signal.

    Args:
        name: Signal name (carried on telemetry events).
        policy: The :class:`~repro.autoscale.config.AutoscalePolicy`
            supplying model kind, surge threshold and boost schedule.
        q: Base process noise (how fast "normal" may drift).

    Feed :meth:`observe` one point per tick; read :meth:`forecast` for
    the planner.  The measurement noise R is learned online as an EWMA
    of squared innovations (the :mod:`repro.obs.health` idiom), so the
    interval width tracks how noisy the signal actually is.
    """

    def __init__(
        self, name: str, policy: AutoscalePolicy, q: float = 0.05
    ) -> None:
        policy.validate()
        self.name = name
        self._policy = policy
        self._q_base = float(q)
        self._q_scale = 1.0
        self._boost_until: int | None = None
        self._r_hat = _R_FLOOR
        self._flt: KalmanFilter | None = None
        self._seen = 0
        self.surges = 0
        self.last_surge_tick: int | None = None
        self.last_value: float | None = None
        self.last_z: float | None = None
        self.last_predicted: float | None = None

    # Model construction ---------------------------------------------------

    def _matrices(self) -> tuple[np.ndarray, np.ndarray]:
        if self._policy.model == "cv":
            phi = np.array([[1.0, 1.0], [0.0, 1.0]])
            h = np.array([[1.0, 0.0]])
        else:
            phi = np.array([[1.0]])
            h = np.array([[1.0]])
        return phi, h

    def _q_matrix(self) -> np.ndarray:
        q = self._q_base * self._q_scale
        if self._policy.model == "cv":
            # Velocity drives the walk; level noise stays a notch lower
            # so ramps are explained by velocity, not by level jitter.
            return np.array([[0.25 * q, 0.0], [0.0, q]])
        return np.array([[q]])

    def _build(self, z0: float) -> KalmanFilter:
        phi, h = self._matrices()
        x0 = np.zeros(phi.shape[0])
        x0[0] = z0
        return KalmanFilter(
            phi=phi,
            h=h,
            q=lambda _k: self._q_matrix(),
            r=lambda _k: np.array([[max(_R_FLOOR, self._r_hat)]]),
            x0=x0,
            p0=np.eye(phi.shape[0]) * 10.0,
        )

    # Observation ----------------------------------------------------------

    @property
    def warmed(self) -> bool:
        """Whether enough points arrived for forecasts to be trusted."""
        return self._seen >= self._policy.warmup_ticks

    @property
    def boosted(self) -> bool:
        """Whether the surge Q-boost is currently active."""
        return self._q_scale > 1.0

    def observe(self, tick: int, value: float) -> float | None:
        """Consume one signal point; returns the innovation z-score.

        Non-finite points are skipped (returns None).  A z-score beyond
        ``surge_z`` (after warmup) arms the Q boost for ``boost_ticks``
        and counts a surge; repeated large innovations inside the boost
        window extend it.
        """
        if not math.isfinite(value):
            return None
        policy = self._policy
        if self._boost_until is not None and tick >= self._boost_until:
            self._boost_until = None
            self._q_scale = 1.0
        self.last_value = value
        if self._flt is None:
            self._flt = self._build(value)
            self._seen = 1
            return 0.0
        flt = self._flt
        flt.predict()
        predicted = float(flt.predict_measurement()[0])
        s = float(flt.innovation_covariance()[0, 0])
        innovation = value - predicted
        z = innovation / math.sqrt(s) if s > 0 else 0.0
        self.last_predicted = predicted
        self.last_z = z
        if self.warmed and z * z > policy.surge_z**2:
            if not self.boosted:
                self.surges += 1
                self.last_surge_tick = tick
            self._q_scale = policy.q_boost
            self._boost_until = tick + policy.boost_ticks
        if not self.boosted:
            # Surge innovations are model error (the level moved), not
            # measurement noise; feeding them to the R estimate would
            # crush the gain exactly when the filter must re-learn.
            self._r_hat = (
                (1 - _R_ALPHA) * self._r_hat + _R_ALPHA * innovation**2
            )
        flt.update(np.array([value]))
        self._seen += 1
        return z

    # Prediction -----------------------------------------------------------

    def forecast(self, horizon: int | None = None) -> Forecast | None:
        """The h-step-ahead prediction interval (None before any data).

        Propagates both the state and its covariance ``horizon`` steps
        through the current (possibly boosted) model, then projects to
        measurement space and adds the learned R -- the full predictive
        variance, so the interval is honest about surge uncertainty.
        """
        if self._flt is None:
            return None
        h_steps = self._policy.horizon_ticks if horizon is None else horizon
        if h_steps < 0:
            raise ValueError("forecast horizon must be non-negative")
        phi, h = self._matrices()
        q = self._q_matrix()
        x = self._flt.x
        p = self._flt.p
        for _ in range(h_steps):
            x = phi @ x
            p = (phi @ p) @ phi.T + q
        mean = float((h @ x)[0])
        var = float((h @ p @ h.T)[0, 0]) + max(_R_FLOOR, self._r_hat)
        return Forecast(
            mean=mean, sigma=math.sqrt(max(var, 0.0)), horizon=h_steps
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (autoscale trace / report entry)."""
        fc = self.forecast()
        return {
            "name": self.name,
            "seen": self._seen,
            "surges": self.surges,
            "last_surge_tick": self.last_surge_tick,
            "boosted": self.boosted,
            "last_value": self.last_value,
            "last_z": None if self.last_z is None else round(self.last_z, 3),
            "forecast_mean": None if fc is None else round(fc.mean, 4),
            "forecast_sigma": None if fc is None else round(fc.sigma, 4),
        }
