"""Predictive autoscaling: the engine's own filters run the engine.

The subsystem closes ROADMAP item 2: per-signal Kalman load models
(:mod:`~repro.autoscale.forecast`), a DRS-style queueing planner
(:mod:`~repro.autoscale.planner`), engine-side controllers that actuate
plans through the existing overload / shard / pool machinery
(:mod:`~repro.autoscale.controller`), and the seeded surge drill that
proves the loop holds its SLO (:mod:`~repro.autoscale.drill`).
"""

from repro.autoscale.config import AutoscalePolicy
from repro.autoscale.controller import InboxAutoscaler, ShardAutoscaler
from repro.autoscale.forecast import Forecast, LoadForecaster
from repro.autoscale.planner import QueueingPlanner, ResourcePlan

__all__ = [
    "AutoscalePolicy",
    "Forecast",
    "LoadForecaster",
    "QueueingPlanner",
    "ResourcePlan",
    "InboxAutoscaler",
    "ShardAutoscaler",
]
