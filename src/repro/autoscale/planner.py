"""Queueing planner: forecasts + SLO in, resource plan out.

The planning model is DRS ("Dynamic Resource Scheduling for Real-Time
Analytics over Fast Streams", arXiv:1501.03610) shrunk to this engine's
two resource pools:

* **Server inbox (scalar engine).**  The server is one bounded queue
  drained at ``μ = drain_per_tick``.  With predicted arrivals
  ``λ̂`` (the forecaster's upper bound), the depth ``h`` ticks out is
  ``d̂ = max(0, d + (λ̂ − μ)·h)``.  When ``d̂`` crosses the planning
  high watermark the plan asks for δ-widening steps *now* -- shedding
  starts before the queue actually backs up, which is the entire
  advantage over the reactive controller.  When both the current and
  the predicted depth sit under the low watermark the plan asks for
  restore steps.  How many widening steps: enough that, assuming each
  step sheds roughly its share of offered load (``λ̂ / streams`` per
  fully-widened stream), the predicted surplus ``λ̂ − μ`` is covered --
  capped by the per-interval action budget, so one bad forecast cannot
  slam every stream to max widening.

* **Shards and workers (batch engine).**  Each shard is a queue whose
  service time per tick is its forecast step latency.  A shard whose
  predicted latency (upper bound) exceeds ``split_headroom × budget``
  splits; two sibling shards whose *combined* predicted latency stays
  under ``merge_headroom × budget`` merge back (the hysteresis gap
  between the two headrooms prevents flapping).  The worker target is
  the queueing-theory floor ``⌈Σ service / budget⌉``: the fewest
  parallel lanes that keep per-lane work inside the latency budget.

Plans are data (:class:`ResourcePlan`); the engine-side controllers in
:mod:`repro.autoscale.controller` actuate them and own the audit trail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.autoscale.config import AutoscalePolicy
from repro.autoscale.forecast import Forecast

__all__ = ["ResourcePlan", "QueueingPlanner"]


@dataclass(frozen=True)
class ResourcePlan:
    """One control interval's resource decision (audit-ready).

    Attributes:
        tick: Tick the plan was made.
        widen_steps: δ-widening steps to hand the overload controller.
        restore_steps: Restore steps to hand the overload controller.
        split_shards: Shard ids whose predicted latency blows the budget.
        merge_pairs: Sibling shard-id pairs to merge back together.
        workers: Worker-pool target (None = leave unchanged).
        reason: Planner inputs that produced the decision (forecast
            bounds, predicted depth, per-shard predictions) -- this is
            what lands in the autoscale trace.
    """

    tick: int
    widen_steps: int = 0
    restore_steps: int = 0
    split_shards: tuple[str, ...] = ()
    merge_pairs: tuple[tuple[str, str], ...] = ()
    workers: int | None = None
    reason: dict = field(default_factory=dict)

    @property
    def acts(self) -> bool:
        """Whether the plan changes anything at all."""
        return bool(
            self.widen_steps
            or self.restore_steps
            or self.split_shards
            or self.merge_pairs
            or self.workers is not None
        )


class QueueingPlanner:
    """Stateless forecast→plan translation under one policy."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        policy.validate()
        self._policy = policy

    @property
    def policy(self) -> AutoscalePolicy:
        """The installed policy."""
        return self._policy

    # Scalar engine: inbox pressure → δ-widening schedule ------------------

    def plan_inbox(
        self,
        tick: int,
        *,
        depth: int,
        capacity: int,
        drain_per_tick: int,
        arrival: Forecast,
        streams: int,
        widened: int,
        surging: bool = False,
    ) -> ResourcePlan:
        """Plan δ-widening/restores from the arrival-rate forecast.

        Args:
            tick: Current tick.
            depth: Current inbox depth.
            capacity: Inbox hard cap.
            drain_per_tick: Server drain rate μ.
            arrival: Forecast of the per-tick arrival rate λ.
            streams: Registered stream count (shed-share denominator).
            widened: δ-widening steps currently outstanding (widen −
                restore).  Already-applied steps count against the
                need, so the planner asks only for the *remaining*
                shortfall instead of re-widening every interval while
                earlier steps are still taking effect.
            surging: Whether the forecaster's surge detector is active.
                During a confirmed regime change the point forecast
                lags by construction (the filter is still re-learning
                the level), so sizing switches to the upper bound;
                in steady state the mean keeps the planner from
                shedding against its own uncertainty.
        """
        policy = self._policy
        z = policy.confidence_z
        lam_hi = max(0.0, arrival.upper(z))
        lam_lo = max(0.0, arrival.lower(z))
        horizon = max(1, arrival.horizon)
        predicted = max(
            0.0, depth + (lam_hi - drain_per_tick) * horizon
        )
        predicted_lo = max(
            0.0, depth + (lam_lo - drain_per_tick) * horizon
        )
        reason = {
            "depth": depth,
            "arrival_upper": round(lam_hi, 4),
            "arrival_lower": round(lam_lo, 4),
            "predicted_depth": round(predicted, 2),
            "drain": drain_per_tick,
        }
        high = policy.plan_high * capacity
        low = policy.plan_low * capacity
        if predicted >= high:
            # Trigger on the honest upper bound (never miss a surge);
            # size on the point forecast (never shed against mere
            # uncertainty -- the surge boost has already re-learned the
            # level by the time sizing matters).  Steps to cover the
            # expected surplus, assuming one widening step sheds about
            # one stream's share of the offered load.  Outstanding
            # steps are credited: they are already shedding (or about
            # to), and double-counting them is how a planner slams the
            # whole fleet to max widening on one bad interval.
            lam = max(0.0, arrival.mean)
            share = lam / max(1, streams)
            surplus = lam - drain_per_tick
            # Demand has two parts: the rate surplus (λ̂ − μ) and the
            # standing backlog, which must drain within one horizon or
            # the inbox sits pinned above the reactive watermark and
            # the backstop widens forever.  The backlog term shrinks as
            # the queue drains, so the ask is self-limiting.
            backlog = max(0.0, depth - low) / horizon
            demand = surplus + backlog
            need = (
                1 if share <= 0 or demand <= 0
                else math.ceil(demand / share)
            )
            need -= max(0, widened)
            reason["need"] = need
            if need > 0:
                return ResourcePlan(
                    tick,
                    widen_steps=min(policy.widen_per_interval, need),
                    reason=reason,
                )
            return ResourcePlan(tick, reason=reason)
        if widened and depth <= low and predicted_lo <= low:
            return ResourcePlan(
                tick,
                restore_steps=policy.restore_per_interval,
                reason=reason,
            )
        return ResourcePlan(tick, reason=reason)

    # Batch engine: shard latency → split / merge / pool size --------------

    def plan_shards(
        self,
        tick: int,
        *,
        budget_us: float,
        predictions: dict[str, Forecast],
        rows: dict[str, int],
        signatures: dict[str, object],
        current_workers: int,
    ) -> ResourcePlan:
        """Plan splits, merges and the worker target from latency forecasts.

        Args:
            tick: Current tick.
            budget_us: The per-step shard latency budget (the SLO).
            predictions: Per-shard step-latency forecasts, µs.
            rows: Per-shard row counts (a 1-row shard cannot split).
            signatures: Per-shard model signature (only same-signature
                shards may merge).
            current_workers: Current pool size (for the no-op check).
        """
        policy = self._policy
        z = policy.confidence_z
        upper = {
            sid: max(0.0, fc.upper(z)) for sid, fc in predictions.items()
        }
        splits = tuple(
            sid
            for sid, hi in sorted(upper.items())
            if hi > policy.split_headroom * budget_us and rows.get(sid, 0) >= 2
        )
        # Greedy same-signature pairing for merges, smallest load first,
        # skipping anything already queued to split this interval.
        merge_limit = policy.merge_headroom * budget_us
        by_sig: dict[object, list[str]] = {}
        for sid in sorted(upper, key=lambda s: (upper[s], s)):
            if sid in splits:
                continue
            by_sig.setdefault(signatures.get(sid), []).append(sid)
        merges: list[tuple[str, str]] = []
        for group in by_sig.values():
            while len(group) >= 2:
                a, b = group[0], group[1]
                if upper[a] + upper[b] <= merge_limit:
                    merges.append((a, b))
                    group = group[2:]
                else:
                    break
        total = sum(upper.values())
        lanes = max(1, math.ceil(total / budget_us)) if budget_us > 0 else 1
        target = min(policy.max_workers, max(policy.min_workers, lanes))
        return ResourcePlan(
            tick,
            split_shards=splits,
            merge_pairs=tuple(merges),
            workers=None if target == current_workers else target,
            reason={
                "budget_us": budget_us,
                "total_predicted_us": round(total, 1),
                "per_shard_upper_us": {
                    sid: round(v, 1) for sid, v in sorted(upper.items())
                },
            },
        )
