"""Surge drill: seeded load-surge scenario for the inbox autoscaler.

The drill builds a scalar :class:`~repro.dsms.engine.StreamEngine` with a
small bounded inbox, offers it a fleet of random-walk streams, and
mid-run multiplies the walk volatility so the per-tick update rate jumps
by ``load_factor`` (every source's reading starts clearing its δ nearly
every instant, and δ-suppression stops saving traffic).  Without
intervention the inbox saturates and tail-drops; drops trigger gap
detection and retransmissions, which feed the congestion.

Run once with the autoscaler armed and once without (same seed, same
``OverloadPolicy``) and the comparison isolates what prediction buys:

* the **reactive** controller widens one step per cooldown only after
  the high watermark is already breached -- during the lag the inbox
  pins at capacity and sheds by *dropping*, which is unaccounted error
  and retransmit fuel;
* the **predictive** controller sees the arrival-rate forecast cross
  the plan watermark and widens δ *before* the budget blows, so load
  falls while the inbox still has headroom, then restores the moment
  the forecast clears -- every shed tick charged to the exact
  ``(scale - 1) * δ`` account and unwound LIFO.

Everything is deterministic for a given seed: streams, fault-free
transport, tick-indexed control decisions.  ``repro chaos --surge``
and ``benchmarks/test_bench_autoscale.py`` both run through
:func:`run_surge_drill` so the CLI artifact and the committed benchmark
measure the same trajectory.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.autoscale.config import AutoscalePolicy
from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.filters.models import linear_model
from repro.obs import Telemetry
from repro.obs.slo import SLORule
from repro.resilience import OverloadPolicy, ResilienceConfig
from repro.streams.base import stream_from_values

__all__ = ["SurgeDrillResult", "run_surge_drill", "compare_surge_drill"]

#: Gauge-level SLO on inbox fill: firing means the server is one burst
#: away from tail-dropping updates.
INBOX_PRESSURE_RULE = SLORule(
    name="inbox-pressure",
    kind="bound",
    objective=0.85,
    metric="inbox_utilisation",
    short_window=8,
    for_ticks=2,
    clear_ticks=8,
)


@dataclasses.dataclass(frozen=True)
class SurgeDrillResult:
    """Outcome of one surge-drill run (one engine, one seed)."""

    seed: int
    autoscale_enabled: bool
    ticks: int
    surge_start: int
    surge_end: int
    calm_rate: float
    surge_rate: float
    inbox_dropped: int
    peak_depth: int
    shed_error_total: float
    ledger: dict
    settle_ticks: int | None
    slo: dict
    slo_fired_in_surge: bool
    slo_resolved_after_surge: bool
    slo_clean: bool
    autoscale: dict | None
    overload: dict
    traffic: dict

    def as_dict(self) -> dict:
        """JSON-ready view (artifact payload)."""
        return dataclasses.asdict(self)


def _surge_truth(
    seed: int,
    ticks: int,
    sources: int,
    surge_start: int,
    surge_end: int,
    load_factor: float,
    calm_sigma: float,
) -> dict[str, np.ndarray]:
    """Random walks whose volatility jumps by ``load_factor`` mid-run.

    A DKF source transmits when the reading escapes its δ envelope, so
    scaling the innovation standard deviation scales the offered update
    rate almost one-for-one once the walk outruns the filter.
    """
    rng = np.random.default_rng(seed)
    scale = np.ones(ticks)
    scale[surge_start:surge_end] = load_factor
    truth = {}
    for i in range(sources):
        steps = rng.normal(0.0, calm_sigma, size=ticks) * scale
        truth[f"s{i:02d}"] = np.cumsum(steps)
    return truth


def run_surge_drill(
    seed: int = 7,
    *,
    ticks: int = 280,
    sources: int = 24,
    surge_start: int = 80,
    surge_len: int = 80,
    load_factor: float = 3.0,
    autoscale: AutoscalePolicy | None = None,
    overload: OverloadPolicy | None = None,
    telemetry: Telemetry | None = None,
) -> SurgeDrillResult:
    """Run the surge scenario once and audit the shed account.

    Args:
        seed: Drives the truth signals; two runs with the same seed see
            byte-identical offered load.
        ticks: Total drill length (surge must end well before it).
        sources: Stream count; priorities cycle 0/1/2 so the widening
            order (lowest first) and the tie-break (stream id) are both
            exercised.
        surge_start: First tick of the volatility surge.
        surge_len: Surge duration in ticks.
        load_factor: Volatility multiplier during the surge (~ offered
            update-rate multiplier once the walks outrun their filters).
        autoscale: Arm the predictive controller with this policy
            (None = reactive overload control only).
        overload: Inbox bounds; defaults to a deliberately tight inbox
            so the surge actually hurts.
        telemetry: Pass a handle to keep the event stream (the CLI
            attaches a JSONL writer); defaults to a fresh one.
    """
    surge_end = surge_start + surge_len
    if not 0 < surge_start < surge_end < ticks:
        raise ValueError("need 0 < surge_start < surge_start+surge_len < ticks")
    policy = overload or OverloadPolicy(
        inbox_capacity=16,
        drain_per_tick=7,
        high_watermark=0.55,
        low_watermark=0.1,
        widen_factor=2.0,
        max_widen=8.0,
        cooldown_ticks=8,
    )
    tel = telemetry or Telemetry()
    tel.slo.install_defaults()
    tel.slo.add_rule(INBOX_PRESSURE_RULE)

    engine = StreamEngine(
        telemetry=tel,
        resilience=ResilienceConfig(overload=policy),
        autoscale=autoscale,
    )
    truth = _surge_truth(
        seed, ticks, sources, surge_start, surge_end,
        load_factor, calm_sigma=0.3,
    )
    for i, (source_id, values) in enumerate(sorted(truth.items())):
        engine.add_source(
            source_id,
            linear_model(dims=1, dt=1.0),
            stream_from_values(values, name=source_id),
            transport=TransportPolicy(ack_timeout_ticks=4),
            priority=i % 3,
        )
        engine.submit_query(
            ContinuousQuery(source_id, delta=1.0, query_id=f"q-{source_id}")
        )

    inbox = engine.inbox
    controller = engine.overload
    offered_prev = 0
    offered_per_tick: list[int] = []
    peak_depth = 0
    settle_ticks: int | None = None
    for _ in range(ticks):
        engine.step()
        offered = inbox.accepted + inbox.dropped
        offered_per_tick.append(offered - offered_prev)
        offered_prev = offered
        peak_depth = max(peak_depth, inbox.depth)
        tel.gauge("inbox_utilisation", inbox.depth / inbox.capacity)
        if (
            settle_ticks is None
            and engine.ticks > surge_end
            and controller.ledger()["balanced"]
        ):
            settle_ticks = engine.ticks - surge_end

    rates = np.asarray(offered_per_tick, dtype=float)
    # Skip the priming burst (every source transmits at tick 0) when
    # measuring the calm offered rate.
    calm = rates[max(8, surge_start // 4):surge_start]
    surge = rates[surge_start:surge_end]
    ledger = controller.ledger()
    ledger.pop("stack", None)
    alert = tel.slo.alerts[INBOX_PRESSURE_RULE.name]
    fired = alert.fired_between(surge_start, surge_end + 1)
    return SurgeDrillResult(
        seed=seed,
        autoscale_enabled=autoscale is not None,
        ticks=engine.ticks,
        surge_start=surge_start,
        surge_end=surge_end,
        calm_rate=float(calm.mean()),
        surge_rate=float(surge.mean()),
        inbox_dropped=inbox.dropped,
        peak_depth=peak_depth,
        shed_error_total=float(ledger["shed_error_total"]),
        ledger=ledger,
        settle_ticks=settle_ticks,
        slo=tel.slo.report(),
        slo_fired_in_surge=fired,
        slo_resolved_after_surge=alert.resolved_after(surge_start),
        slo_clean=not fired,
        autoscale=(
            {
                **engine.autoscaler.report(),
                "trace": engine.autoscaler.trace(),
            }
            if autoscale is not None
            else None
        ),
        overload=controller.report(),
        traffic=engine.report().to_dict(),
    )


def compare_surge_drill(
    seed: int = 7,
    *,
    ticks: int = 280,
    sources: int = 24,
    surge_start: int = 80,
    surge_len: int = 80,
    load_factor: float = 3.0,
    settle_window: int = 64,
    policy: AutoscalePolicy | None = None,
) -> dict:
    """Run the drill with and without the autoscaler; gate the claims.

    Returns a dict with both :class:`SurgeDrillResult` payloads and a
    ``gates`` section -- each gate is the pass/fail of one acceptance
    claim:

    * ``surge_offered``: the surge really multiplied offered load
      (surge rate >= 2x calm rate -- δ-suppression absorbs part of the
      nominal ``load_factor``).
    * ``slo_held``: with the autoscaler, the inbox-pressure SLO either
      never fired during the surge or resolved within
      ``settle_window`` ticks of the surge ending.
    * ``ledger_balanced``: every planned/reactive widen step was
      restored (shed == restored, nothing left widened).
    * ``shed_error_reduced``: the audited δ-shed error with the
      autoscaler is strictly lower than without it.
    * ``fewer_drops``: the predictive run tail-dropped no more inbox
      messages than the reactive run.
    """
    kwargs = dict(
        ticks=ticks,
        sources=sources,
        surge_start=surge_start,
        surge_len=surge_len,
        load_factor=load_factor,
    )
    enabled = run_surge_drill(
        seed, autoscale=policy or AutoscalePolicy(), **kwargs
    )
    disabled = run_surge_drill(seed, autoscale=None, **kwargs)
    surge_end = surge_start + surge_len
    slo_held = enabled.slo_clean or (
        enabled.slo_resolved_after_surge
        and enabled.settle_ticks is not None
        and enabled.settle_ticks <= settle_window
    )
    gates = {
        "surge_offered": enabled.surge_rate >= 2.0 * enabled.calm_rate,
        "slo_held": slo_held,
        "ledger_balanced": bool(enabled.ledger["balanced"]),
        "shed_error_reduced": (
            enabled.shed_error_total < disabled.shed_error_total
        ),
        "fewer_drops": enabled.inbox_dropped <= disabled.inbox_dropped,
    }
    return {
        "seed": seed,
        "load_factor": load_factor,
        "settle_window": settle_window,
        "enabled": enabled.as_dict(),
        "disabled": disabled.as_dict(),
        "gates": gates,
        "passed": all(gates.values()),
    }
