"""Moving-average smoothing baseline (paper Section 5.3, Figure 10).

The paper contrasts ``KF_c`` smoothing against the "moving average
approach": averaging a sliding window of recent readings.  Its drawbacks,
per the paper, are (a) it needs a window buffer (the KF needs none) and
(b) it offers no fine-grain control over sensitivity -- "even a series of
spikes after a few steady measurements will not alter the moving average
value significantly".

Both a plain window average and an exponentially weighted variant are
provided; Figure 10 compares ``KF_c`` with small ``F`` against the window
average.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MovingAverage", "ExponentialMovingAverage", "moving_average_series"]


class MovingAverage:
    """Sliding-window arithmetic mean over the last ``window`` samples.

    Args:
        window: Window length; the buffer the KF smoother avoids.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError("window must be positive")
        self._window = window
        self._buffer: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    @property
    def window(self) -> int:
        """The configured window length."""
        return self._window

    @property
    def primed(self) -> bool:
        """Whether at least one sample has arrived."""
        return bool(self._buffer)

    @property
    def value(self) -> float:
        """Current average; raises before any sample has arrived."""
        if not self._buffer:
            raise ConfigurationError("moving average has not seen any data")
        return self._sum / len(self._buffer)

    def smooth(self, value: float) -> float:
        """Absorb one sample and return the updated average."""
        value = float(value)
        if len(self._buffer) == self._window:
            self._sum -= self._buffer[0]
        self._buffer.append(value)
        self._sum += value
        return self.value

    def reset(self) -> None:
        """Empty the window; the next sample starts fresh."""
        self._buffer.clear()
        self._sum = 0.0


class ExponentialMovingAverage:
    """Exponentially weighted moving average (no buffer, one parameter).

    Included as the natural memoryless cousin of the window average; the
    smoothing-comparison bench shows where it falls between the window MA
    and ``KF_c``.

    Args:
        alpha: Weight on the newest sample, in ``(0, 1]``.
    """

    def __init__(self, alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._value: float | None = None

    @property
    def alpha(self) -> float:
        """Weight applied to the newest sample."""
        return self._alpha

    @property
    def primed(self) -> bool:
        """Whether at least one sample has arrived."""
        return self._value is not None

    @property
    def value(self) -> float:
        """Current average; raises before any sample has arrived."""
        if self._value is None:
            raise ConfigurationError("EMA has not seen any data")
        return self._value

    def smooth(self, value: float) -> float:
        """Absorb one sample and return the updated average."""
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value = self._alpha * value + (1 - self._alpha) * self._value
        return self._value

    def reset(self) -> None:
        """Forget the average; the next sample re-primes it."""
        self._value = None


def moving_average_series(values: np.ndarray, window: int) -> np.ndarray:
    """Smooth a whole series with :class:`MovingAverage` (Fig. 10 helper)."""
    values = np.asarray(values, dtype=float).reshape(-1)
    ma = MovingAverage(window)
    return np.array([ma.smooth(v) for v in values])
