"""Cached-approximation baseline (paper Section 5, after Olston et al.
[23, 25]).

Each remote source keeps a precision bound ``[L, H]`` of width ``W`` per
measured component.  While readings stay inside the bound nothing is sent;
when a reading ``V`` escapes, it is transmitted and the bound is re-centred:
``H_new = V + W/2``, ``L_new = V - W/2``.  The server caches the last
transmitted value (the bound midpoint).  Per the paper, dynamic bound
growing/shrinking is *not* used here (see
:mod:`repro.baselines.adaptive_bounds` for that extension).

Trigger parity with the DKF: the DKF transmits when the server prediction
errs by more than δ, i.e. the server-side error is allowed to reach δ.
For an apples-to-apples comparison the cached value must be allowed the
same error, so :meth:`CachedValueScheme.from_precision` sets ``W = 2 δ``
(cached midpoint at most δ from the true value).  This choice reproduces
the paper's observation that caching and the constant-model DKF generate
essentially the same update traffic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord

__all__ = ["CachedValueScheme"]


class CachedValueScheme(SuppressionScheme):
    """Static-width cached-approximation scheme.

    Args:
        width: Full bound width ``W`` (per component).  The cached value
            sits at the bound midpoint, so its maximum error is ``W / 2``.
        dims: Number of measured components (bounds are maintained per
            component; an escape on *any* component triggers an update,
            per Section 5.1).
    """

    def __init__(self, width: float, dims: int = 1) -> None:
        if width <= 0:
            raise ConfigurationError("bound width must be positive")
        if dims < 1:
            raise ConfigurationError("dims must be positive")
        self._width = float(width)
        self._dims = dims
        self._cached: np.ndarray | None = None
        self._updates = 0
        self._observed = 0

    @classmethod
    def from_precision(cls, delta: float, dims: int = 1) -> "CachedValueScheme":
        """Scheme whose cached value is accurate to within ``delta``.

        Sets ``W = 2 delta`` so the cached midpoint matches the DKF's
        allowed server error (see module docstring).
        """
        return cls(width=2.0 * float(delta), dims=dims)

    @property
    def name(self) -> str:
        """Display name used in tables and figures."""
        return f"caching[W={self._width:g}]"

    @property
    def width(self) -> float:
        """The full bound width ``W``."""
        return self._width

    @property
    def cached_value(self) -> np.ndarray | None:
        """The value currently cached at the server (copy), if any."""
        return None if self._cached is None else self._cached.copy()

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Current per-component ``(L, H)`` bounds, if primed."""
        if self._cached is None:
            return None
        half = self._width / 2.0
        return self._cached - half, self._cached + half

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted so far."""
        return self._updates

    @property
    def records_observed(self) -> int:
        """Total readings offered to the scheme."""
        return self._observed

    def observe(self, record: StreamRecord) -> SchemeDecision:
        """Transmit iff the reading escapes the bound on any component."""
        value = record.value
        if value.shape != (self._dims,):
            raise ConfigurationError(
                f"record has dim {value.shape[0]}, scheme expects {self._dims}"
            )
        self._observed += 1
        half = self._width / 2.0
        if self._cached is None or bool(
            np.any(np.abs(value - self._cached) > half)
        ):
            self._cached = value.copy()
            self._updates += 1
            return SchemeDecision(
                k=record.k,
                sent=True,
                server_value=value.copy(),
                source_value=value.copy(),
                raw_value=value.copy(),
                payload_floats=self._dims,
            )
        return SchemeDecision(
            k=record.k,
            sent=False,
            server_value=self._cached.copy(),
            source_value=value.copy(),
            raw_value=value.copy(),
        )

    def reset(self) -> None:
        self._cached = None
        self._updates = 0
        self._observed = 0
