"""Comparator schemes from the paper's evaluation: static cached
approximation (Olston et al., the Section 5 baseline), the adaptive-bound
variant the paper cites but disables, and moving-average smoothing."""

from repro.baselines.adaptive_bounds import AdaptiveBoundScheme
from repro.baselines.caching import CachedValueScheme
from repro.baselines.moving_average import (
    ExponentialMovingAverage,
    MovingAverage,
    moving_average_series,
)

__all__ = [
    "AdaptiveBoundScheme",
    "CachedValueScheme",
    "ExponentialMovingAverage",
    "MovingAverage",
    "moving_average_series",
]
