"""Adaptive bound growing/shrinking (Olston et al.'s full algorithm).

The paper's Section 5 comparator deliberately disables this ("we do not
consider dynamic bound growing and shrinking in our results"), but cites it
as the state of the art.  We implement it as an extension so the benchmark
matrix can show where adaptive caching lands between static caching and the
DKF.

The adaptation rule follows the spirit of Olston's adaptive filters: after
every escape (update), the bound width shrinks by a multiplicative factor
(the stream looks volatile, tighten to stay accurate); after a streak of
quiet readings the width grows (the stream looks stable, widen to save
messages), capped by the query precision so correctness is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord

__all__ = ["AdaptiveBoundScheme"]


class AdaptiveBoundScheme(SuppressionScheme):
    """Cached-approximation scheme with dynamic bound width.

    Args:
        max_width: Upper cap on the bound width (ties to the query
            precision: the cached value's error never exceeds
            ``max_width / 2``).
        dims: Number of measured components.
        shrink: Multiplicative factor applied to the width on every
            escape (``0 < shrink < 1``).
        grow: Multiplicative factor applied after a quiet streak
            (``grow > 1``).
        quiet_streak: Number of consecutive in-bound readings that counts
            as a quiet streak.
        min_width_fraction: Floor on the width as a fraction of
            ``max_width`` (prevents the width collapsing to zero and
            transmitting every reading forever).
    """

    def __init__(
        self,
        max_width: float,
        dims: int = 1,
        shrink: float = 0.7,
        grow: float = 1.2,
        quiet_streak: int = 5,
        min_width_fraction: float = 0.05,
    ) -> None:
        if max_width <= 0:
            raise ConfigurationError("max_width must be positive")
        if not 0 < shrink < 1:
            raise ConfigurationError("shrink must be in (0, 1)")
        if grow <= 1:
            raise ConfigurationError("grow must exceed 1")
        if quiet_streak < 1:
            raise ConfigurationError("quiet_streak must be positive")
        if not 0 < min_width_fraction <= 1:
            raise ConfigurationError("min_width_fraction must be in (0, 1]")
        self._max_width = float(max_width)
        self._dims = dims
        self._shrink = shrink
        self._grow = grow
        self._quiet_streak = quiet_streak
        self._min_width = min_width_fraction * self._max_width
        self._width = self._max_width
        self._cached: np.ndarray | None = None
        self._streak = 0
        self._updates = 0
        self._observed = 0

    @classmethod
    def from_precision(cls, delta: float, dims: int = 1, **kwargs) -> "AdaptiveBoundScheme":
        """Scheme whose cached value is accurate to within ``delta``."""
        return cls(max_width=2.0 * float(delta), dims=dims, **kwargs)

    @property
    def name(self) -> str:
        """Display name used in tables and figures."""
        return f"adaptive-caching[Wmax={self._max_width:g}]"

    @property
    def width(self) -> float:
        """Current (adapted) bound width."""
        return self._width

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted so far."""
        return self._updates

    @property
    def records_observed(self) -> int:
        """Total readings offered to the scheme."""
        return self._observed

    def observe(self, record: StreamRecord) -> SchemeDecision:
        value = record.value
        if value.shape != (self._dims,):
            raise ConfigurationError(
                f"record has dim {value.shape[0]}, scheme expects {self._dims}"
            )
        self._observed += 1
        half = self._width / 2.0
        escaped = self._cached is None or bool(
            np.any(np.abs(value - self._cached) > half)
        )
        if escaped:
            priming = self._cached is None
            self._cached = value.copy()
            self._updates += 1
            self._streak = 0
            if not priming:
                # The priming transmission says nothing about volatility;
                # only genuine bound escapes tighten the width.
                self._width = max(self._min_width, self._width * self._shrink)
            return SchemeDecision(
                k=record.k,
                sent=True,
                server_value=value.copy(),
                source_value=value.copy(),
                raw_value=value.copy(),
                payload_floats=self._dims,
            )
        self._streak += 1
        if self._streak >= self._quiet_streak:
            self._width = min(self._max_width, self._width * self._grow)
            self._streak = 0
        return SchemeDecision(
            k=record.k,
            sent=False,
            server_value=self._cached.copy(),
            source_value=value.copy(),
            raw_value=value.copy(),
        )

    def reset(self) -> None:
        self._cached = None
        self._width = self._max_width
        self._streak = 0
        self._updates = 0
        self._observed = 0
