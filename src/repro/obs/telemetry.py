"""The single telemetry handle threaded through the engine.

One :class:`Telemetry` bundles the three observation channels -- event
bus, metrics registry, span timers -- behind the narrow surface the
instrumented components use: ``emit`` (an event), ``count`` / ``observe``
/ ``gauge`` (metrics), ``timers`` (spans) and ``tick`` (the engine keeps
it pointing at the current sampling instant so components never pass
clocks around).

Since PR 7 the live handle also owns the self-monitoring layer: a
:class:`~repro.obs.history.MetricHistory` that samples every instrument
once per tick, a :class:`~repro.obs.health.HealthMonitor` of Kalman
watchers over derived health signals, and an
:class:`~repro.obs.slo.SLOEngine` evaluating burn-rate alerts over the
history windows.  All three ride the clock: ``set_tick`` observes the
tick boundary whenever the engine moves the clock, so instrumented
components never call them directly.  Watchers and SLO rules are empty
by default -- ``telemetry.health.install_defaults()`` /
``telemetry.slo.install_defaults()`` opt in.

:class:`NullTelemetry` is the default everywhere.  Its ``enabled`` flag
is False and every method is a no-op, so instrumented code guards its
event/metric construction with one attribute test and a disabled run
executes the exact same filter/transport arithmetic as the seed --
seeded :class:`~repro.dsms.engine.EngineReport` byte-identity is a
tested invariant, not an aspiration.
"""

from __future__ import annotations

from repro.obs.events import Event, EventBus
from repro.obs.health import HealthMonitor
from repro.obs.history import MetricHistory
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.timing import NULL_TIMERS, NullTimers, SpanTimers

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live telemetry: events, metrics and timers share one handle.

    Args:
        buffer_size: Event-bus ring-buffer capacity.
        history: Time-series store behind the registry; defaults to a
            fresh :class:`~repro.obs.history.MetricHistory` (1024-sample
            rings, sampled every tick).
        time_unit: What one tick of this handle's clock means --
            ``"ticks"`` (simulated instants, the default) or a wall-clock
            unit like ``"ms"`` when an asyncio runtime drives
            ``set_tick`` from real time.  A default-constructed history
            inherits it, so SLO windows and exported snapshots carry the
            right denomination.
    """

    enabled = True

    def __init__(
        self,
        buffer_size: int = 65536,
        history: MetricHistory | None = None,
        time_unit: str = "ticks",
    ) -> None:
        self.bus = EventBus(buffer_size=buffer_size)
        self.metrics = MetricsRegistry()
        self.timers: SpanTimers | NullTimers = SpanTimers()
        self.tick = 0
        self.time_unit = time_unit
        # ``history or ...`` would discard an explicit empty history:
        # MetricHistory defines __len__, so a fresh store is falsy.
        if history is None:
            history = MetricHistory(unit=time_unit)
        self.history = history
        self.health = HealthMonitor(self)
        self.slo = SLOEngine(self)
        self._last_observed: int | None = None

    def set_tick(self, tick: int) -> None:
        """Move the stamping clock (the engine calls this every step).

        Moving the clock closes the previous tick: the history store
        samples every instrument's end-of-tick value, health watchers
        score the new points, and the SLO engine re-evaluates its rules.
        """
        if tick != self.tick and self._last_observed != self.tick:
            self._observe_tick(self.tick)
        self.tick = tick

    def sample_now(self) -> None:
        """Close the current tick explicitly (end-of-run flush).

        ``set_tick`` only observes a tick once the *next* one starts, so
        the final tick of a run would otherwise never reach the history
        store.  Snapshot builders call this before exporting.
        """
        if self._last_observed != self.tick:
            self._observe_tick(self.tick)

    def _observe_tick(self, tick: int) -> None:
        self._last_observed = tick
        dropped = self.bus.total_dropped
        if dropped:
            counter = self.metrics.counter("events_dropped_total")
            if dropped > counter.value:
                counter.inc(dropped - counter.value)
        self.history.sample(tick, self.metrics)
        self.health.observe(tick)
        self.slo.evaluate(tick)

    def emit(
        self,
        name: str,
        source_id: str | None = None,
        trace: str | None = None,
        **fields: object,
    ) -> Event | None:
        """Emit one event stamped with the current tick."""
        return self.bus.emit(
            name, self.tick, source_id=source_id, trace=trace, **fields
        )

    def count(
        self, name: str, source_id: str | None = None, amount: int = 1
    ) -> None:
        """Increment a counter (labelled by source when given)."""
        labels = {"source": source_id} if source_id is not None else None
        self.metrics.counter(name, labels).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        source_id: str | None = None,
        unit: str | None = None,
    ) -> None:
        """Record a histogram sample (labelled by source when given).

        ``unit`` attaches an explicit time-unit label for metrics whose
        name implies a denomination the runtime no longer honours --
        e.g. the wire runtime records ``staleness_at_answer_ticks`` in
        wall-clock milliseconds with ``unit="ms"``.  Tick-mode call
        sites omit it (an absent label means engine ticks), so existing
        seeded snapshots stay byte-identical.
        """
        labels: dict[str, str] | None = None
        if source_id is not None or unit is not None:
            labels = {}
            if source_id is not None:
                labels["source"] = source_id
            if unit is not None:
                labels["unit"] = unit
        self.metrics.histogram(name, labels).observe(value)

    def gauge(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """Set a gauge (labelled by source when given)."""
        labels = {"source": source_id} if source_id is not None else None
        self.metrics.gauge(name, labels).set(value)

    def clear_source(self, source_id: str) -> int:
        """Drop the gauges labelled with a deregistered source.

        Counters and histograms survive (they are lifetime totals), but a
        gauge for a source that no longer exists would keep reporting its
        final value forever -- stale telemetry masquerading as live.
        Returns the number of instruments removed.
        """
        return self.metrics.drop_labeled("source", source_id)


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Instrumented call sites check ``telemetry.enabled`` before building
    event payloads, so the disabled cost is one attribute load and one
    branch; the hot-path timer hooks hold ``None`` and skip even that.
    """

    enabled = False
    bus = None
    metrics = None
    history = None
    health = None
    slo = None
    timers: NullTimers = NULL_TIMERS
    tick = 0
    time_unit = "ticks"

    def set_tick(self, tick: int) -> None:
        """No-op."""
        return None

    def sample_now(self) -> None:
        """No-op."""
        return None

    def emit(
        self,
        name: str,
        source_id: str | None = None,
        trace: str | None = None,
        **fields: object,
    ) -> None:
        """No-op: the event is never built."""
        return None

    def count(
        self, name: str, source_id: str | None = None, amount: int = 1
    ) -> None:
        """No-op."""
        return None

    def observe(
        self,
        name: str,
        value: float,
        source_id: str | None = None,
        unit: str | None = None,
    ) -> None:
        """No-op."""
        return None

    def gauge(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """No-op."""
        return None

    def clear_source(self, source_id: str) -> int:
        """No-op (nothing was ever recorded)."""
        return 0


#: Shared singleton default for every instrumented component.
NULL_TELEMETRY = NullTelemetry()
