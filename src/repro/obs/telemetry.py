"""The single telemetry handle threaded through the engine.

One :class:`Telemetry` bundles the three observation channels -- event
bus, metrics registry, span timers -- behind the narrow surface the
instrumented components use: ``emit`` (an event), ``count`` / ``observe``
/ ``gauge`` (metrics), ``timers`` (spans) and ``tick`` (the engine keeps
it pointing at the current sampling instant so components never pass
clocks around).

:class:`NullTelemetry` is the default everywhere.  Its ``enabled`` flag
is False and every method is a no-op, so instrumented code guards its
event/metric construction with one attribute test and a disabled run
executes the exact same filter/transport arithmetic as the seed --
seeded :class:`~repro.dsms.engine.EngineReport` byte-identity is a
tested invariant, not an aspiration.
"""

from __future__ import annotations

from repro.obs.events import Event, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import NULL_TIMERS, NullTimers, SpanTimers

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live telemetry: events, metrics and timers share one handle.

    Args:
        buffer_size: Event-bus ring-buffer capacity.
    """

    enabled = True

    def __init__(self, buffer_size: int = 65536) -> None:
        self.bus = EventBus(buffer_size=buffer_size)
        self.metrics = MetricsRegistry()
        self.timers: SpanTimers | NullTimers = SpanTimers()
        self.tick = 0

    def set_tick(self, tick: int) -> None:
        """Move the stamping clock (the engine calls this every step)."""
        self.tick = tick

    def emit(
        self,
        name: str,
        source_id: str | None = None,
        trace: str | None = None,
        **fields: object,
    ) -> Event | None:
        """Emit one event stamped with the current tick."""
        return self.bus.emit(
            name, self.tick, source_id=source_id, trace=trace, **fields
        )

    def count(
        self, name: str, source_id: str | None = None, amount: int = 1
    ) -> None:
        """Increment a counter (labelled by source when given)."""
        labels = {"source": source_id} if source_id is not None else None
        self.metrics.counter(name, labels).inc(amount)

    def observe(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """Record a histogram sample (labelled by source when given)."""
        labels = {"source": source_id} if source_id is not None else None
        self.metrics.histogram(name, labels).observe(value)

    def gauge(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """Set a gauge (labelled by source when given)."""
        labels = {"source": source_id} if source_id is not None else None
        self.metrics.gauge(name, labels).set(value)

    def clear_source(self, source_id: str) -> int:
        """Drop the gauges labelled with a deregistered source.

        Counters and histograms survive (they are lifetime totals), but a
        gauge for a source that no longer exists would keep reporting its
        final value forever -- stale telemetry masquerading as live.
        Returns the number of instruments removed.
        """
        return self.metrics.drop_labeled("source", source_id)


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Instrumented call sites check ``telemetry.enabled`` before building
    event payloads, so the disabled cost is one attribute load and one
    branch; the hot-path timer hooks hold ``None`` and skip even that.
    """

    enabled = False
    bus = None
    metrics = None
    timers: NullTimers = NULL_TIMERS
    tick = 0

    def set_tick(self, tick: int) -> None:
        """No-op."""
        return None

    def emit(
        self,
        name: str,
        source_id: str | None = None,
        trace: str | None = None,
        **fields: object,
    ) -> None:
        """No-op: the event is never built."""
        return None

    def count(
        self, name: str, source_id: str | None = None, amount: int = 1
    ) -> None:
        """No-op."""
        return None

    def observe(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """No-op."""
        return None

    def gauge(
        self, name: str, value: float, source_id: str | None = None
    ) -> None:
        """No-op."""
        return None

    def clear_source(self, source_id: str) -> int:
        """No-op (nothing was ever recorded)."""
        return 0


#: Shared singleton default for every instrumented component.
NULL_TELEMETRY = NullTelemetry()
