"""Telemetry subsystem: traced events, metrics, span timers, exporters.

The paper's whole argument is quantitative -- update counts, error-vs-δ
and per-message cost decide whether the DKF beats caching -- yet a frozen
end-of-run :class:`~repro.dsms.engine.EngineReport` cannot say *when*
retransmits fired, *why* a resync was requested or *where* wall-clock
time goes.  This package adds that window without perturbing the system
under observation:

* :mod:`repro.obs.events` -- a structured event bus with monotonic
  tick-stamped events and trace-ID correlation, so one reading can be
  followed from sensor to suppression decision to frame to fabric
  delivery (or loss) to server apply to ack.
* :mod:`repro.obs.metrics` -- a metrics registry of counters, gauges and
  bounded histograms with per-source label support.
* :mod:`repro.obs.timing` -- nestable ``perf_counter`` span timers with
  near-zero overhead when disabled.
* :mod:`repro.obs.telemetry` -- the single :class:`Telemetry` handle the
  engine threads through every component; :class:`NullTelemetry` is the
  default and keeps instrumented code byte-identical to uninstrumented.
* :mod:`repro.obs.exporters` -- JSONL event log, Prometheus-style text
  exposition, and the versioned JSON run-snapshot format behind the
  repo's ``BENCH_*.json`` artifacts (``repro.obs/v2``; v1 files migrate
  on load).
* :mod:`repro.obs.history` -- bounded per-(name,labels) time series
  sampled each tick behind the registry, queryable by window.
* :mod:`repro.obs.health` -- Kalman health watchers: the repo's own
  filter pointed at the system's health series, NIS-scored anomalies.
* :mod:`repro.obs.slo` -- declarative SLO rules with multi-window
  burn-rate alerting and a pending/firing/resolved lifecycle.
* :mod:`repro.obs.trace` -- causal-tree reconstruction of one update's
  journey across federation hops, with per-hop timing.
* :mod:`repro.obs.dashboard` -- replays a snapshot as an ASCII dashboard
  (``python -m repro obs <snapshot>``).
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.events import Event, EventBus, trace_id
from repro.obs.exporters import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_V1,
    JsonlEventWriter,
    build_snapshot,
    load_snapshot,
    migrate_snapshot,
    prometheus_text,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.health import (
    DEFAULT_WATCHERS,
    FEDERATION_WATCHERS,
    WIRE_WATCHERS,
    HealthMonitor,
    HealthWatcher,
    WatcherSpec,
)
from repro.obs.history import MetricHistory, Series
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
)
from repro.obs.slo import (
    DEFAULT_RULES,
    FEDERATION_RULES,
    SLOAlert,
    SLOEngine,
    SLORule,
    wire_rules,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.timing import NULL_TIMERS, NullTimers, SpanStat, SpanTimers
from repro.obs.trace import (
    TraceHop,
    build_trace,
    collect_trace,
    read_jsonl_events,
    render_trace,
    trace_ids,
)

__all__ = [
    "Event",
    "EventBus",
    "trace_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_counts",
    "MetricHistory",
    "Series",
    "WatcherSpec",
    "HealthWatcher",
    "HealthMonitor",
    "DEFAULT_WATCHERS",
    "FEDERATION_WATCHERS",
    "WIRE_WATCHERS",
    "SLORule",
    "SLOAlert",
    "SLOEngine",
    "DEFAULT_RULES",
    "FEDERATION_RULES",
    "wire_rules",
    "TraceHop",
    "collect_trace",
    "trace_ids",
    "build_trace",
    "render_trace",
    "read_jsonl_events",
    "SpanStat",
    "SpanTimers",
    "NullTimers",
    "NULL_TIMERS",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_V1",
    "JsonlEventWriter",
    "prometheus_text",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "migrate_snapshot",
    "validate_snapshot",
    "render_dashboard",
]
