"""Telemetry subsystem: traced events, metrics, span timers, exporters.

The paper's whole argument is quantitative -- update counts, error-vs-δ
and per-message cost decide whether the DKF beats caching -- yet a frozen
end-of-run :class:`~repro.dsms.engine.EngineReport` cannot say *when*
retransmits fired, *why* a resync was requested or *where* wall-clock
time goes.  This package adds that window without perturbing the system
under observation:

* :mod:`repro.obs.events` -- a structured event bus with monotonic
  tick-stamped events and trace-ID correlation, so one reading can be
  followed from sensor to suppression decision to frame to fabric
  delivery (or loss) to server apply to ack.
* :mod:`repro.obs.metrics` -- a metrics registry of counters, gauges and
  bounded histograms with per-source label support.
* :mod:`repro.obs.timing` -- nestable ``perf_counter`` span timers with
  near-zero overhead when disabled.
* :mod:`repro.obs.telemetry` -- the single :class:`Telemetry` handle the
  engine threads through every component; :class:`NullTelemetry` is the
  default and keeps instrumented code byte-identical to uninstrumented.
* :mod:`repro.obs.exporters` -- JSONL event log, Prometheus-style text
  exposition, and the versioned JSON run-snapshot format behind the
  repo's ``BENCH_*.json`` artifacts.
* :mod:`repro.obs.dashboard` -- replays a snapshot as an ASCII dashboard
  (``python -m repro obs <snapshot>``).
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.events import Event, EventBus, trace_id
from repro.obs.exporters import (
    SNAPSHOT_SCHEMA,
    JsonlEventWriter,
    build_snapshot,
    load_snapshot,
    prometheus_text,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.timing import NULL_TIMERS, NullTimers, SpanStat, SpanTimers

__all__ = [
    "Event",
    "EventBus",
    "trace_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanStat",
    "SpanTimers",
    "NullTimers",
    "NULL_TIMERS",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "SNAPSHOT_SCHEMA",
    "JsonlEventWriter",
    "prometheus_text",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "validate_snapshot",
    "render_dashboard",
]
