"""Per-(name,labels) ring-buffer time series sampled behind the registry.

The registry (:mod:`repro.obs.metrics`) holds *current* values; this
module remembers how they got there.  A :class:`MetricHistory` snapshots
every instrument once per engine tick (the :class:`~repro.obs.telemetry.
Telemetry` handle drives it from ``set_tick``), keeping a bounded ring
of ``(tick, value)`` points per series so the self-monitoring layer --
Kalman health watchers, SLO burn rates, the dashboard's trend section --
can ask windowed questions: *what was the loss rate over the last 16
ticks, what is the p99 of staleness over the last minute of simulated
time, when did the inbox depth start climbing?*

Sampling semantics per instrument kind:

* **counters** store the cumulative value; windowed *deltas* and *rates*
  are derived on query, so a counter series is also a rate series.
* **gauges** store the point-in-time value.
* **histograms** store cumulative ``count``/``sum`` plus the cumulative
  bucket-count vector, so windowed means *and* windowed quantiles (via
  :func:`~repro.obs.metrics.quantile_from_counts` on bucket deltas) both
  work without keeping raw samples.

Memory is bounded: ``capacity`` points per series (default 1024), each a
handful of floats -- a histogram series additionally keeps one bucket
tuple per point.  The exported form (``MetricHistory.as_dict``, the
``history`` section of a ``repro.obs/v2`` snapshot) carries the scalar
series only; bucket vectors stay in memory.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Labels,
    MetricsRegistry,
    quantile_from_counts,
)

__all__ = ["MetricHistory", "Series"]


class Series:
    """One instrument's sampled trajectory.

    Attributes:
        name: Metric name.
        labels: Frozen label pairs (registry key).
        kind: ``counter`` / ``gauge`` / ``histogram``.
        ticks: Sample ticks, oldest first.
        values: Scalar per sample -- cumulative value (counter), level
            (gauge) or cumulative sample count (histogram).
    """

    __slots__ = (
        "name", "labels", "kind", "ticks", "values", "sums", "buckets",
        "edges", "minimum", "maximum",
    )

    def __init__(
        self, name: str, labels: Labels, kind: str, capacity: int
    ) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        self.ticks: deque[int] = deque(maxlen=capacity)
        self.values: deque[float] = deque(maxlen=capacity)
        # Histogram extras (None for counters/gauges).
        self.sums: deque[float] | None = None
        self.buckets: deque[tuple[int, ...]] | None = None
        self.edges: tuple[float, ...] | None = None
        self.minimum: float | None = None
        self.maximum: float | None = None
        if kind == "histogram":
            self.sums = deque(maxlen=capacity)
            self.buckets = deque(maxlen=capacity)

    def window(self, width: int, now: int) -> list[tuple[int, float]]:
        """The ``(tick, value)`` points with ``now - width < tick <= now``."""
        lo = now - width
        return [
            (t, v)
            for t, v in zip(self.ticks, self.values)
            if lo < t <= now
        ]

    def value_at_or_before(self, tick: int) -> float | None:
        """The most recent sampled value with ``tick' <= tick``."""
        best = None
        for t, v in zip(self.ticks, self.values):
            if t > tick:
                break
            best = v
        return best

    def as_dict(self) -> dict[str, object]:
        """JSON-ready scalar form (bucket vectors stay in memory)."""
        out: dict[str, object] = {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": self.kind,
            "ticks": list(self.ticks),
            "values": [float(v) for v in self.values],
        }
        if self.sums is not None:
            out["sums"] = [float(s) for s in self.sums]
        return out


class MetricHistory:
    """Bounded time-series store over a :class:`MetricsRegistry`.

    Args:
        capacity: Ring size per series, in samples.
        every: Sample cadence in ticks (1 = every tick).  Coarser
            cadences trade window resolution for memory and per-tick
            cost on very long runs.
        unit: What one tick of the sampling clock *means* -- ``"ticks"``
            for the deterministic simulation (the historical default) or
            a wall-clock unit such as ``"ms"`` under the asyncio wire
            runtime, where the runtime maps real time onto the tick
            counter.  Window widths in SLO rules and health watchers are
            denominated in this unit; exporting it keeps a wall-clock
            snapshot from being misread as simulated ticks.
    """

    def __init__(
        self, capacity: int = 1024, every: int = 1, unit: str = "ticks"
    ) -> None:
        if capacity < 2:
            raise ConfigurationError("history capacity must be at least 2")
        if every < 1:
            raise ConfigurationError("history cadence must be at least 1")
        if not unit:
            raise ConfigurationError("history unit must be a non-empty label")
        self.capacity = capacity
        self.every = every
        self.unit = unit
        self._series: dict[tuple[str, Labels], Series] = {}
        self.samples_taken = 0
        self.last_tick: int | None = None

    # Sampling ---------------------------------------------------------

    def sample(self, tick: int, registry: MetricsRegistry) -> None:
        """Record every instrument's current value, stamped ``tick``."""
        if self.last_tick is not None and tick <= self.last_tick:
            return
        if self.every > 1 and self.samples_taken and (
            tick - self.last_tick < self.every
        ):
            return
        self.last_tick = tick
        self.samples_taken += 1
        for counter in registry.counters():
            series = self._get(counter.name, counter.labels, "counter")
            series.ticks.append(tick)
            series.values.append(float(counter.value))
        for gauge in registry.gauges():
            series = self._get(gauge.name, gauge.labels, "gauge")
            series.ticks.append(tick)
            series.values.append(float(gauge.value))
        for hist in registry.histograms():
            series = self._get(hist.name, hist.labels, "histogram")
            series.ticks.append(tick)
            series.values.append(float(hist.count))
            series.sums.append(float(hist.sum))
            series.buckets.append(tuple(hist.counts))
            series.edges = hist.edges
            if hist.count:
                series.minimum = hist.min
                series.maximum = hist.max

    def _get(self, name: str, labels: Labels, kind: str) -> Series:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = Series(name, labels, kind, self.capacity)
            self._series[key] = series
        return series

    # Lookup -----------------------------------------------------------

    def series(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Series | None:
        """One exact series, or None."""
        frozen: Labels = tuple(
            sorted((str(k), str(v)) for k, v in (labels or {}).items())
        )
        return self._series.get((name, frozen))

    def matching(self, name: str) -> list[Series]:
        """Every series with this metric name, across all label sets."""
        return [s for (n, _), s in self._series.items() if n == name]

    def names(self) -> list[str]:
        """Distinct metric names with history, sorted."""
        return sorted({n for n, _ in self._series})

    def __len__(self) -> int:
        return len(self._series)

    # Windowed queries ---------------------------------------------------

    def delta(self, name: str, width: int, now: int) -> float:
        """Cumulative-value increase over the window, summed across labels.

        For counters this is "events in the last ``width`` ticks"; for
        histograms it is "samples observed in the window".  A series that
        only appeared inside the window contributes its full value.
        """
        total = 0.0
        lo = now - width
        for series in self.matching(name):
            if not series.ticks:
                continue
            end = series.value_at_or_before(now)
            if end is None:
                continue
            start = series.value_at_or_before(lo)
            total += end - (start if start is not None else 0.0)
        return total

    def rate(self, name: str, width: int, now: int) -> float:
        """Per-tick increase over the window (delta / width)."""
        if width < 1:
            raise ConfigurationError("rate window must be at least 1 tick")
        return self.delta(name, width, now) / width

    def gauge_extreme(
        self, name: str, width: int, now: int, mode: str = "max"
    ) -> float | None:
        """Max (or min) of every matching gauge point in the window."""
        points: list[float] = []
        for series in self.matching(name):
            points.extend(v for _, v in series.window(width, now))
        if not points:
            return None
        return max(points) if mode == "max" else min(points)

    def mean_in_window(self, name: str, width: int, now: int) -> float | None:
        """Windowed mean of a histogram's *new* samples (across labels)."""
        lo = now - width
        count = 0.0
        total = 0.0
        for series in self.matching(name):
            if series.sums is None or not series.ticks:
                continue
            c_end = series.value_at_or_before(now)
            if c_end is None:
                continue
            c_start = series.value_at_or_before(lo) or 0.0
            s_end = s_start = None
            for t, s in zip(series.ticks, series.sums):
                if t <= lo:
                    s_start = s
                if t <= now:
                    s_end = s
            count += c_end - c_start
            total += (s_end or 0.0) - (s_start or 0.0)
        if count <= 0:
            return None
        return total / count

    def quantile(
        self, name: str, q: float, width: int, now: int
    ) -> float | None:
        """Windowed quantile of a histogram's new samples (across labels).

        Sums per-series bucket deltas over the window, then interpolates
        -- the same estimator :meth:`Histogram.quantile` uses on lifetime
        counts, applied to just the window's arrivals.
        """
        lo = now - width
        merged: list[int] | None = None
        edges: tuple[float, ...] | None = None
        sample_min: float | None = None
        sample_max: float | None = None
        for series in self.matching(name):
            if series.buckets is None or not series.ticks:
                continue
            end = start = None
            for t, b in zip(series.ticks, series.buckets):
                if t <= lo:
                    start = b
                if t <= now:
                    end = b
            if end is None:
                continue
            if edges is None:
                edges = series.edges
                merged = [0] * len(end)
            elif series.edges != edges or len(end) != len(merged):
                continue  # incompatible bucket layouts never merge
            for i, c in enumerate(end):
                merged[i] += c - (start[i] if start is not None else 0)
            if series.minimum is not None:
                sample_min = (
                    series.minimum
                    if sample_min is None
                    else min(sample_min, series.minimum)
                )
            if series.maximum is not None:
                sample_max = (
                    series.maximum
                    if sample_max is None
                    else max(sample_max, series.maximum)
                )
        if merged is None or edges is None:
            return None
        return quantile_from_counts(
            edges, merged, q, lo=sample_min, hi=sample_max
        )

    # Export -------------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """The snapshot ``history`` section (scalar series only)."""
        return {
            "every": self.every,
            "capacity": self.capacity,
            "unit": self.unit,
            "samples": self.samples_taken,
            "series": [
                series.as_dict()
                for key, series in sorted(self._series.items())
            ],
        }
