"""Declarative SLOs over metric history, with burn-rate alerting.

An :class:`SLORule` states an objective over the metrics the engine
already records -- "at least 97% of offered frames deliver", "p99 answer
staleness stays under 8 ticks", "the advertised consensus error stays
under 2.0" -- and the :class:`SLOEngine` evaluates every rule once per
tick against the :class:`~repro.obs.history.MetricHistory` windows.

Ratio rules use the classic multi-window burn rate: the error rate over
a *short* and a *long* window, each normalised by the error budget
``1 - objective``.  A breach requires **both** windows to burn faster
than ``burn_threshold`` -- the long window filters blips, the short
window makes recovery visible quickly (once the incident stops, the
short window cools first and the alert can resolve without waiting for
the long window to age out).  Quantile and bound rules compare a
windowed statistic directly against the objective.

Alerts live a pending -> firing -> resolved lifecycle on the event bus:

* first breach: ``ok -> pending`` (``slo.pending`` event);
* breached ``for_ticks`` consecutively: ``pending -> firing``
  (``slo.firing`` event, ``slo_alerts_total`` counter);
* clean ``clear_ticks`` consecutively: ``-> resolved`` (``slo.resolved``
  event), then back to ``ok`` for the next incident.

Every transition is recorded with its tick, so a chaos drill can assert
*when* alerts fired relative to the injected faults, not just whether.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = [
    "SLORule",
    "SLOAlert",
    "SLOEngine",
    "DEFAULT_RULES",
    "FEDERATION_RULES",
    "wire_rules",
]


@dataclasses.dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective.

    Attributes:
        name: Rule name (alert events carry it).
        kind: ``ratio`` (good vs bad counters), ``quantile`` (histogram
            quantile bound) or ``bound`` (gauge/histogram level bound).
        objective: Target -- minimum good fraction for ``ratio``, upper
            bound for ``quantile``/``bound``.
        good: Counter name of successes (``ratio``).
        bad: Counter names of failures (``ratio``).
        metric: Histogram (``quantile``) or gauge (``bound``) name.
        q: Quantile for ``quantile`` rules.
        short_window: Fast window, in ticks.
        long_window: Slow window, in ticks (``ratio`` only).
        burn_threshold: Burn-rate multiple that counts as a breach
            (``ratio`` only; 1.0 = burning the budget exactly).
        for_ticks: Consecutive breached ticks before pending -> firing.
        clear_ticks: Consecutive clean ticks before -> resolved.
    """

    name: str
    kind: str
    objective: float
    good: str | None = None
    bad: tuple[str, ...] = ()
    metric: str | None = None
    q: float = 0.99
    short_window: int = 16
    long_window: int = 64
    burn_threshold: float = 2.0
    for_ticks: int = 4
    clear_ticks: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "quantile", "bound"):
            raise ConfigurationError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "ratio" and (self.good is None or not self.bad):
            raise ConfigurationError(
                f"ratio rule {self.name!r} needs good and bad counters"
            )
        if self.kind == "ratio" and not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"ratio objective must be in (0, 1), got {self.objective}"
            )
        if self.kind in ("quantile", "bound") and self.metric is None:
            raise ConfigurationError(
                f"{self.kind} rule {self.name!r} needs a metric"
            )
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ConfigurationError(
                f"rule {self.name!r} needs 1 <= short_window <= long_window"
            )


class SLOAlert:
    """One rule's alert state machine."""

    def __init__(self, rule: SLORule) -> None:
        self.rule = rule
        self.state = "ok"
        self.breach_streak = 0
        self.clear_streak = 0
        self.transitions: list[dict[str, object]] = []
        self.last_breach: dict[str, float] | None = None
        self.last_values: dict[str, float] = {}

    def _transition(self, to: str, tick: int, tel) -> None:
        entry = {"tick": tick, "from": self.state, "to": to}
        if len(self.transitions) < 512:
            self.transitions.append(entry)
        self.state = to if to != "resolved" else "ok"
        event = {
            "pending": "slo.pending",
            "firing": "slo.firing",
            "resolved": "slo.resolved",
        }.get(to)
        if event is not None:
            tel.emit(
                event,
                rule=self.rule.name,
                kind=self.rule.kind,
                objective=self.rule.objective,
                **{k: round(v, 6) for k, v in self.last_values.items()},
            )
            if to == "firing":
                tel.metrics.counter(
                    "slo_alerts_total", {"rule": self.rule.name}
                ).inc()

    def observe(self, breached: bool, tick: int, tel) -> None:
        """Advance the lifecycle one tick."""
        if breached:
            self.breach_streak += 1
            self.clear_streak = 0
            if self.state == "ok":
                self._transition("pending", tick, tel)
            if (
                self.state == "pending"
                and self.breach_streak >= self.rule.for_ticks
            ):
                self._transition("firing", tick, tel)
        else:
            self.breach_streak = 0
            self.clear_streak += 1
            if (
                self.state in ("pending", "firing")
                and self.clear_streak >= self.rule.clear_ticks
            ):
                self._transition("resolved", tick, tel)

    def fired_between(self, start: int, end: int) -> bool:
        """Whether a pending->firing transition landed in [start, end]."""
        return any(
            t["to"] == "firing" and start <= t["tick"] <= end
            for t in self.transitions
        )

    def resolved_after(self, tick: int) -> bool:
        """Whether a firing->resolved transition landed after ``tick``."""
        return any(
            t["to"] == "resolved" and t["from"] == "firing"
            and t["tick"] > tick
            for t in self.transitions
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (the snapshot ``alerts.rules`` entry)."""
        rule = self.rule
        out: dict[str, object] = {
            "name": rule.name,
            "kind": rule.kind,
            "objective": rule.objective,
            "state": self.state,
            "transitions": list(self.transitions),
        }
        if self.last_values:
            out["last"] = {
                k: round(v, 6) for k, v in self.last_values.items()
            }
        return out


#: Rules every instrumented engine benefits from.
DEFAULT_RULES: tuple[SLORule, ...] = (
    SLORule(
        name="delivery-ratio",
        kind="ratio",
        objective=0.95,
        good="fabric_delivered_total",
        bad=("fabric_lost_total", "fabric_corrupted_total"),
        burn_threshold=2.0,
    ),
    # Healthy answers can legitimately trail by up to the source heartbeat
    # cadence (25 ticks) under delta-suppression, so the objective sits just
    # above that cap: a breach means answers are older than any heartbeat
    # round-trip should allow.
    SLORule(
        name="staleness-p99",
        kind="quantile",
        metric="staleness_at_answer_ticks",
        q=0.99,
        objective=30.0,
        short_window=32,
    ),
)

#: Extra rules for federated clusters.
FEDERATION_RULES: tuple[SLORule, ...] = (
    SLORule(
        name="consensus-error-bound",
        kind="bound",
        metric="consensus_error",
        objective=2.0,
        short_window=32,
    ),
)


def wire_rules(
    staleness_objective_ms: float = 2500.0,
    query_p99_objective_ms: float = 250.0,
) -> tuple[SLORule, ...]:
    """The default rule set for the wall-clock wire runtime.

    The tick-mode defaults denominate windows and objectives in engine
    ticks; under :class:`~repro.wire.runtime.AsyncRuntime` the telemetry
    clock *is* wall time in milliseconds (``Telemetry(time_unit="ms")``,
    advanced once per runtime tick), so every window and objective here
    is a millisecond count and the rules evaluate correctly against the
    ms-stamped history.  Delivery is judged on the wire counters: a
    datagram that fails its CRC or resolves to no registered source is
    the wire layer's "bad" bucket (kernel-level drops surface
    separately, as the send/receive residual in the soak summary).
    """
    return (
        SLORule(
            name="wire-delivery-ratio",
            kind="ratio",
            objective=0.95,
            good="wire_frames_decoded_total",
            bad=("wire_frames_corrupt_total", "wire_frames_unknown_total"),
            burn_threshold=2.0,
            short_window=10_000,
            long_window=40_000,
        ),
        SLORule(
            name="wire-staleness-p99",
            kind="quantile",
            metric="staleness_at_answer_ticks",
            q=0.99,
            objective=staleness_objective_ms,
            short_window=15_000,
            long_window=15_000,
        ),
        SLORule(
            name="wire-query-p99",
            kind="quantile",
            metric="wire_query_latency_ms",
            q=0.99,
            objective=query_p99_objective_ms,
            short_window=15_000,
            long_window=15_000,
        ),
    )


class SLOEngine:
    """Evaluates the installed rules against metric history every tick.

    Args:
        telemetry: The owning :class:`~repro.obs.telemetry.Telemetry`
            (history to read, bus and registry to alert on).
    """

    def __init__(self, telemetry) -> None:
        self._tel = telemetry
        self._alerts: dict[str, SLOAlert] = {}

    def add_rule(self, rule: SLORule) -> SLOAlert:
        """Install (or replace) one rule."""
        alert = SLOAlert(rule)
        self._alerts[rule.name] = alert
        return alert

    def install_defaults(self, federation: bool = False) -> None:
        """Install the standard rule set (plus federation extras)."""
        for rule in DEFAULT_RULES:
            self.add_rule(rule)
        if federation:
            for rule in FEDERATION_RULES:
                self.add_rule(rule)

    def install_wire_defaults(
        self,
        staleness_objective_ms: float = 2500.0,
        query_p99_objective_ms: float = 250.0,
    ) -> None:
        """Install the wall-clock wire rule set (objectives in ms)."""
        for rule in wire_rules(
            staleness_objective_ms, query_p99_objective_ms
        ):
            self.add_rule(rule)

    @property
    def alerts(self) -> dict[str, SLOAlert]:
        """The installed alerts (live objects)."""
        return dict(self._alerts)

    # Evaluation -----------------------------------------------------------

    def _burn(self, rule: SLORule, width: int, now: int) -> float:
        history = self._tel.history
        bad = sum(history.delta(name, width, now) for name in rule.bad)
        good = history.delta(rule.good, width, now)
        total = good + bad
        if total <= 0:
            return 0.0
        error_rate = bad / total
        return error_rate / (1.0 - rule.objective)

    def _breached(self, rule: SLORule, now: int, alert: SLOAlert) -> bool:
        history = self._tel.history
        if rule.kind == "ratio":
            burn_short = self._burn(rule, rule.short_window, now)
            burn_long = self._burn(rule, rule.long_window, now)
            alert.last_values = {
                "burn_short": burn_short,
                "burn_long": burn_long,
            }
            return (
                burn_short > rule.burn_threshold
                and burn_long > rule.burn_threshold
            )
        if rule.kind == "quantile":
            value = history.quantile(
                rule.metric, rule.q, rule.short_window, now
            )
            if value is None:
                return False
            alert.last_values = {"value": value}
            return value > rule.objective
        value = history.gauge_extreme(rule.metric, rule.short_window, now)
        if value is None:
            return False
        alert.last_values = {"value": value}
        return value > rule.objective

    def evaluate(self, tick: int) -> None:
        """Score every rule at ``tick`` and advance its alert."""
        if not self._alerts:
            return
        for alert in self._alerts.values():
            breached = self._breached(alert.rule, tick, alert)
            alert.observe(breached, tick, self._tel)

    def report(self) -> dict[str, object]:
        """The snapshot ``alerts`` section."""
        return {
            "rules": [
                self._alerts[name].as_dict()
                for name in sorted(self._alerts)
            ],
        }
