"""Telemetry exporters: JSONL event log, Prometheus text, JSON snapshot.

Three ways out of the process:

* :class:`JsonlEventWriter` -- subscribe it to an event bus and every
  event becomes one JSON line, written as it happens (crash-safe logs).
* :func:`prometheus_text` -- the metrics registry in Prometheus-style
  text exposition, for scraping or eyeballing.
* :func:`build_snapshot` / :func:`write_snapshot` -- the versioned JSON
  run-snapshot (schema ``repro.obs/v2``) that freezes counters, gauges,
  histograms, span timings, event counts, the sampled metric history,
  SLO alert states and health-watcher summaries.  This is the format
  behind the repo's ``BENCH_*.json`` perf artifacts, and what ``python
  -m repro obs <snapshot>`` replays as a dashboard.

Every loader validates before trusting: :func:`validate_snapshot` raises
:class:`~repro.errors.ConfigurationError` on anything malformed, and CI
runs it against the snapshot exported from the test run.
:func:`load_snapshot` migrates ``repro.obs/v1`` files in place (the new
sections are additive), so pre-PR-7 artifacts -- the committed BENCH
baselines included -- keep loading.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO

from repro.errors import ConfigurationError
from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_V1",
    "JsonlEventWriter",
    "prometheus_text",
    "build_snapshot",
    "write_snapshot",
    "load_snapshot",
    "migrate_snapshot",
    "validate_snapshot",
]

#: Version tag carried by every snapshot; bump on breaking layout change.
SNAPSHOT_SCHEMA = "repro.obs/v2"

#: The PR-2 schema (no history/alerts/health); still loadable.
SNAPSHOT_SCHEMA_V1 = "repro.obs/v1"

#: Empty values for the sections v2 added over v1.
_V2_SECTION_DEFAULTS: dict[str, dict] = {
    "history": {"every": 1, "capacity": 0, "samples": 0, "series": []},
    "alerts": {"rules": []},
    "health": {"watchers": []},
}


def _json_default(value: object) -> object:
    """Coerce numpy scalars (and other ``item()``-bearers) for json."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def _finite_or_null(value: object) -> object:
    """Replace non-finite floats with None (strict-JSON friendliness)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class JsonlEventWriter:
    """Stream events to a JSON-lines file as they are emitted.

    Subscribe the instance to a bus (``bus.subscribe(writer)``); each
    event becomes exactly one line.  Usable as a context manager.

    Args:
        path: Output file (truncated on open).
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle: IO[str] | None = self._path.open("w", encoding="utf-8")
        self.lines_written = 0

    def __call__(self, event: Event) -> None:
        """Write one event (the bus-subscriber entry point)."""
        if self._handle is None:
            raise ConfigurationError("event writer already closed")
        self._handle.write(
            json.dumps(event.as_dict(), default=_json_default) + "\n"
        )
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _escape_label_value(value: str) -> str:
    """Escape per the exposition-format spec: ``\\``, ``"`` and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a registry in Prometheus-style text exposition format.

    Counters and gauges become single samples; histograms become the
    conventional ``_bucket`` (cumulative, with ``le`` labels), ``_sum``
    and ``_count`` series.
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in metrics.counters():
        type_line(counter.name, "counter")
        lines.append(
            f"{counter.name}{_label_suffix(dict(counter.labels))} {counter.value}"
        )
    for gauge in metrics.gauges():
        type_line(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_label_suffix(dict(gauge.labels))} {gauge.value:g}"
        )
    for hist in metrics.histograms():
        type_line(hist.name, "histogram")
        labels = dict(hist.labels)
        cumulative = 0
        for edge, bucket in zip(hist.edges, hist.counts):
            cumulative += bucket
            le = {**labels, "le": f"{edge:g}"}
            lines.append(f"{hist.name}_bucket{_label_suffix(le)} {cumulative}")
        le = {**labels, "le": "+Inf"}
        lines.append(f"{hist.name}_bucket{_label_suffix(le)} {hist.count}")
        lines.append(f"{hist.name}_sum{_label_suffix(labels)} {hist.sum:g}")
        lines.append(f"{hist.name}_count{_label_suffix(labels)} {hist.count}")
    return "\n".join(lines) + "\n"


def build_snapshot(telemetry=None, meta: dict | None = None) -> dict:
    """Freeze a telemetry handle (or bare registry) into a snapshot dict.

    Args:
        telemetry: A :class:`~repro.obs.telemetry.Telemetry`, or a bare
            :class:`~repro.obs.metrics.MetricsRegistry` (the benchmark
            exporters have no bus or timers), or None for an empty
            snapshot carrying only ``meta``.
        meta: Free-form run description (name, ticks, seed, ...).
    """
    metrics: MetricsRegistry | None = None
    timers = None
    bus = None
    if isinstance(telemetry, MetricsRegistry):
        metrics = telemetry
    elif telemetry is not None:
        # Close the current tick first -- set_tick only samples a tick
        # once the next one starts, so without this flush the final
        # tick's history/health/SLO state would be missing.
        sample_now = getattr(telemetry, "sample_now", None)
        if sample_now is not None:
            sample_now()
        metrics = telemetry.metrics
        timers = telemetry.timers
        bus = telemetry.bus
    snapshot: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "meta": dict(meta or {}),
        "counters": [],
        "gauges": [],
        "histograms": [],
        "spans": [],
        "events": {"total": 0, "by_name": {}, "dropped": 0},
        "history": dict(_V2_SECTION_DEFAULTS["history"]),
        "alerts": dict(_V2_SECTION_DEFAULTS["alerts"]),
        "health": dict(_V2_SECTION_DEFAULTS["health"]),
    }
    if metrics is not None:
        snapshot["counters"] = [
            {"name": c.name, "labels": dict(c.labels), "value": c.value}
            for c in metrics.counters()
        ]
        snapshot["gauges"] = [
            {"name": g.name, "labels": dict(g.labels), "value": g.value}
            for g in metrics.gauges()
        ]
        snapshot["histograms"] = [
            {
                key: _finite_or_null(value)
                for key, value in h.as_dict().items()
            }
            for h in metrics.histograms()
        ]
    if timers is not None:
        snapshot["spans"] = [s.as_dict() for s in timers.stats()]
    if bus is not None:
        snapshot["events"] = {
            "total": bus.total_emitted,
            "by_name": bus.counts(),
            "dropped": bus.total_dropped,
        }
    history = getattr(telemetry, "history", None)
    if history is not None:
        snapshot["history"] = history.as_dict()
    slo = getattr(telemetry, "slo", None)
    if slo is not None:
        snapshot["alerts"] = slo.report()
    health = getattr(telemetry, "health", None)
    if health is not None:
        snapshot["health"] = health.report()
    return snapshot


def validate_snapshot(snapshot: object) -> dict:
    """Check a snapshot against the ``repro.obs/v2`` schema.

    Returns the snapshot unchanged on success; raises
    :class:`~repro.errors.ConfigurationError` naming the first problem
    otherwise.  This is deliberately strict -- CI fails the build when an
    exporter emits anything this function rejects.
    """

    def fail(reason: str):
        raise ConfigurationError(f"invalid snapshot: {reason}")

    if not isinstance(snapshot, dict):
        fail(f"expected an object, got {type(snapshot).__name__}")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        fail(f"schema must be {SNAPSHOT_SCHEMA!r}, got {snapshot.get('schema')!r}")
    if not isinstance(snapshot.get("meta"), dict):
        fail("meta must be an object")
    for section, value_type in (
        ("counters", (int,)),
        ("gauges", (int, float)),
    ):
        rows = snapshot.get(section)
        if not isinstance(rows, list):
            fail(f"{section} must be a list")
        for row in rows:
            if not isinstance(row, dict):
                fail(f"{section} entries must be objects")
            if not isinstance(row.get("name"), str):
                fail(f"{section} entry missing string name")
            if not isinstance(row.get("labels"), dict):
                fail(f"{section} entry {row.get('name')!r} missing labels")
            if not isinstance(row.get("value"), value_type) or isinstance(
                row.get("value"), bool
            ):
                fail(
                    f"{section} entry {row.get('name')!r} has non-numeric value"
                )
    rows = snapshot.get("histograms")
    if not isinstance(rows, list):
        fail("histograms must be a list")
    for row in rows:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            fail("histogram entries must be objects with a string name")
        edges = row.get("edges")
        counts = row.get("counts")
        if not isinstance(edges, list) or not isinstance(counts, list):
            fail(f"histogram {row['name']!r} needs edges and counts lists")
        if len(counts) != len(edges) + 1:
            fail(
                f"histogram {row['name']!r} needs len(edges)+1 counts, got "
                f"{len(counts)} for {len(edges)} edges"
            )
        if not isinstance(row.get("count"), int):
            fail(f"histogram {row['name']!r} missing integer count")
        if sum(counts) != row["count"]:
            fail(f"histogram {row['name']!r} bucket counts do not sum to count")
    rows = snapshot.get("spans")
    if not isinstance(rows, list):
        fail("spans must be a list")
    for row in rows:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            fail("span entries must be objects with a string name")
        if not isinstance(row.get("count"), int):
            fail(f"span {row['name']!r} missing integer count")
        if not isinstance(row.get("total_seconds"), (int, float)):
            fail(f"span {row['name']!r} missing total_seconds")
    events = snapshot.get("events")
    if not isinstance(events, dict):
        fail("events must be an object")
    if not isinstance(events.get("total"), int):
        fail("events.total must be an integer")
    if not isinstance(events.get("by_name"), dict):
        fail("events.by_name must be an object")
    if not isinstance(events.get("dropped", 0), int):
        fail("events.dropped must be an integer")
    history = snapshot.get("history")
    if not isinstance(history, dict):
        fail("history must be an object")
    if not isinstance(history.get("series"), list):
        fail("history.series must be a list")
    for row in history["series"]:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            fail("history series must be objects with a string name")
        if row.get("kind") not in ("counter", "gauge", "histogram"):
            fail(
                f"history series {row.get('name')!r} has unknown kind "
                f"{row.get('kind')!r}"
            )
        ticks = row.get("ticks")
        values = row.get("values")
        if not isinstance(ticks, list) or not isinstance(values, list):
            fail(f"history series {row['name']!r} needs ticks and values")
        if len(ticks) != len(values):
            fail(
                f"history series {row['name']!r} ticks/values length "
                "mismatch"
            )
        if row["kind"] == "histogram" and len(
            row.get("sums", [])
        ) != len(ticks):
            fail(
                f"history series {row['name']!r} needs one sum per tick"
            )
    alerts = snapshot.get("alerts")
    if not isinstance(alerts, dict) or not isinstance(
        alerts.get("rules"), list
    ):
        fail("alerts must be an object with a rules list")
    for row in alerts["rules"]:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            fail("alert rules must be objects with a string name")
        if row.get("state") not in ("ok", "pending", "firing"):
            fail(
                f"alert {row.get('name')!r} has unknown state "
                f"{row.get('state')!r}"
            )
        if not isinstance(row.get("transitions"), list):
            fail(f"alert {row['name']!r} needs a transitions list")
    health = snapshot.get("health")
    if not isinstance(health, dict) or not isinstance(
        health.get("watchers"), list
    ):
        fail("health must be an object with a watchers list")
    for row in health["watchers"]:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            fail("health watchers must be objects with a string name")
        if not isinstance(row.get("anomalies"), int):
            fail(f"health watcher {row['name']!r} missing anomaly count")
    return snapshot


def migrate_snapshot(snapshot: dict) -> dict:
    """Upgrade a ``repro.obs/v1`` snapshot to v2 (copy; v2 passes through).

    The v2 additions are purely additive -- history, alerts and health
    sections plus the events drop count -- so migration fills them with
    empty values and retags the schema.  Anything that is neither v1 nor
    v2 is returned unchanged for :func:`validate_snapshot` to reject
    with its usual diagnostics.
    """
    if not isinstance(snapshot, dict):
        return snapshot
    if snapshot.get("schema") != SNAPSHOT_SCHEMA_V1:
        return snapshot
    migrated = dict(snapshot)
    migrated["schema"] = SNAPSHOT_SCHEMA
    events = migrated.get("events")
    if isinstance(events, dict) and "dropped" not in events:
        migrated["events"] = {**events, "dropped": 0}
    for section, default in _V2_SECTION_DEFAULTS.items():
        migrated.setdefault(section, json.loads(json.dumps(default)))
    return migrated


def write_snapshot(path: str | Path, snapshot: dict) -> Path:
    """Validate and write a snapshot; returns the written path.

    Writing re-parses the serialised form before committing, so a
    snapshot that would not survive :func:`load_snapshot` never lands on
    disk.
    """
    validate_snapshot(snapshot)
    text = json.dumps(snapshot, indent=2, sort_keys=True, default=_json_default)
    validate_snapshot(json.loads(text))
    path = Path(path)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read, migrate (v1 -> v2) and validate a snapshot file."""
    try:
        snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"snapshot is not valid JSON: {exc}") from None
    return validate_snapshot(migrate_snapshot(snapshot))
