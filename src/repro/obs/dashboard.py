"""ASCII dashboard replay of a telemetry snapshot.

``python -m repro obs <snapshot.json>`` calls :func:`render_dashboard`
on a loaded snapshot: counters and gauges as aligned tables, histograms
as bucket-count sparklines (reusing the figure-harness renderer from
:mod:`repro.metrics.ascii_plot`) with p50/p95/p99 estimates, SLO alert
states with their transition history, health-watcher anomaly summaries,
metric-history trend sparklines, span timings sorted by total cost, and
the event-name census (with a loud warning when the event ring buffer
wrapped).  Text-only, like every figure in this repo.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.ascii_plot import sparkline
from repro.obs.exporters import validate_snapshot

__all__ = ["render_dashboard"]


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _series_name(row: dict) -> str:
    return f"{row['name']}{_fmt_labels(row.get('labels', {}))}"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _table(rows: list[tuple[str, str]], indent: str = "  ") -> list[str]:
    if not rows:
        return [f"{indent}(none)"]
    width = max(len(name) for name, _ in rows)
    return [f"{indent}{name.ljust(width)}  {value}" for name, value in rows]


def _federation_rows(snapshot: dict) -> list[tuple[str, str]]:
    """Aggregate ``fed_*`` series into a compact federation summary.

    Counters are summed across labels (per-stream/per-peer splits stay
    visible in the generic sections); histograms show count/mean/max so
    re-home latency and consensus residual read at a glance.  Empty when
    the snapshot carries no federation telemetry, so single-server
    dashboards are unchanged.
    """
    rows: list[tuple[str, str]] = []
    totals: dict[str, int] = {}
    for row in snapshot["counters"]:
        name = row["name"]
        if name.startswith("fed_"):
            totals[name] = totals.get(name, 0) + int(row["value"])
    for name in sorted(totals):
        rows.append((name, str(totals[name])))
    hists: dict[str, tuple[int, float, float]] = {}
    for row in snapshot["histograms"]:
        name = row["name"]
        if not name.startswith("fed_") or not row["count"]:
            continue
        count, total, peak = hists.get(name, (0, 0.0, float("-inf")))
        hists[name] = (
            count + row["count"],
            total + row["sum"],
            max(peak, row["max"]),
        )
    for name in sorted(hists):
        count, total, peak = hists[name]
        rows.append(
            (name, f"n={count} mean={total / count:.3g} max={peak:.3g}")
        )
    return rows


def render_dashboard(snapshot: dict, width: int = 48) -> str:
    """Render one snapshot as a multi-section ASCII dashboard."""
    validate_snapshot(snapshot)
    lines: list[str] = []

    meta = snapshot["meta"]
    title = str(meta.get("name", "telemetry snapshot"))
    lines.append(f"=== {title} ===")
    meta_rows = [
        (str(k), str(v)) for k, v in sorted(meta.items()) if k != "name"
    ]
    if meta_rows:
        lines.extend(_table(meta_rows))

    lines.append("")
    lines.append("-- counters --")
    lines.extend(
        _table(
            [
                (_series_name(row), str(row["value"]))
                for row in snapshot["counters"]
            ]
        )
    )

    if snapshot["gauges"]:
        lines.append("")
        lines.append("-- gauges --")
        lines.extend(
            _table(
                [
                    (_series_name(row), f"{row['value']:g}")
                    for row in snapshot["gauges"]
                ]
            )
        )

    if snapshot["histograms"]:
        lines.append("")
        lines.append("-- histograms (bucket counts, low -> high) --")
        for row in snapshot["histograms"]:
            spark = sparkline(np.array(row["counts"], dtype=float), width=width)
            if row["count"]:
                stats = (
                    f"n={row['count']}"
                    f" mean={row['sum'] / row['count']:.3g}"
                    f" min={row['min']:.3g} max={row['max']:.3g}"
                )
                quantiles = " ".join(
                    f"{q}={row[q]:.3g}"
                    for q in ("p50", "p95", "p99")
                    if isinstance(row.get(q), (int, float))
                )
                if quantiles:
                    stats = f"{stats} {quantiles}"
            else:
                stats = "n=0"
            lines.append(f"  {_series_name(row)}  {stats}")
            lines.append(f"    |{spark}|")

    federation_rows = _federation_rows(snapshot)
    if federation_rows:
        lines.append("")
        lines.append("-- federation --")
        lines.extend(_table(federation_rows))

    alerts = snapshot.get("alerts", {}).get("rules", [])
    if alerts:
        lines.append("")
        lines.append("-- slo alerts --")
        alert_rows = []
        for rule in alerts:
            state = rule["state"].upper() if rule["state"] != "ok" else "ok"
            fired = sum(
                1 for t in rule["transitions"] if t["to"] == "firing"
            )
            history = " -> ".join(
                f"{t['to']}@{t['tick']}" for t in rule["transitions"][-4:]
            )
            detail = f"[{state}] objective={rule['objective']:g}"
            if fired:
                detail += f" fired x{fired}"
            if history:
                detail += f"  ({history})"
            alert_rows.append((f"{rule['name']} ({rule['kind']})", detail))
        lines.extend(_table(alert_rows))

    watchers = snapshot.get("health", {}).get("watchers", [])
    flagged = [w for w in watchers if w["anomalies"]]
    if watchers:
        lines.append("")
        lines.append(
            f"-- health watchers ({len(watchers)} installed, "
            f"{len(flagged)} flagged) --"
        )
        watcher_rows = []
        for w in watchers:
            if w["anomalies"]:
                detail = (
                    f"{w['anomalies']} anomalies "
                    f"(first @{w['first_anomaly_tick']}, "
                    f"last @{w['last_anomaly_tick']})"
                )
            else:
                detail = "clean"
            watcher_rows.append((f"{w['name']} <- {w['metric']}", detail))
        lines.extend(_table(watcher_rows))

    history_series = snapshot.get("history", {}).get("series", [])
    trend_rows = [
        row
        for row in history_series
        if row["kind"] in ("gauge", "counter") and len(row["values"]) >= 8
    ]
    if trend_rows:
        lines.append("")
        lines.append(
            f"-- history ({len(history_series)} series sampled; "
            "trends, oldest -> newest) --"
        )
        for row in trend_rows[:16]:
            values = np.array(row["values"], dtype=float)
            if row["kind"] == "counter":
                values = np.diff(values, prepend=values[0])
            spark = sparkline(values, width=width)
            lines.append(
                f"  {_series_name(row)}  "
                f"last={row['values'][-1]:g} "
                f"[{row['ticks'][0]}..{row['ticks'][-1]}]"
            )
            lines.append(f"    |{spark}|")
        if len(trend_rows) > 16:
            lines.append(f"  ... and {len(trend_rows) - 16} more series")

    if snapshot["spans"]:
        lines.append("")
        lines.append("-- spans (by total wall-clock) --")
        span_rows = []
        for row in sorted(
            snapshot["spans"], key=lambda r: r["total_seconds"], reverse=True
        ):
            mean = row["total_seconds"] / row["count"] if row["count"] else 0.0
            span_rows.append(
                (
                    row["name"],
                    f"{_fmt_seconds(row['total_seconds'])} total, "
                    f"{row['count']:7d} calls, {_fmt_seconds(mean)} mean",
                )
            )
        lines.extend(_table(span_rows))

    events = snapshot["events"]
    if events["total"]:
        lines.append("")
        dropped = events.get("dropped", 0)
        header = f"-- events ({events['total']} emitted"
        if dropped:
            header += f", {dropped} dropped from the ring buffer"
        lines.append(header + ") --")
        if dropped:
            lines.append(
                "  WARNING: the event buffer wrapped; the buffered window "
                f"is missing the oldest {dropped} events"
            )
        lines.extend(
            _table(
                [
                    (name, str(count))
                    for name, count in sorted(events["by_name"].items())
                ]
            )
        )
    return "\n".join(lines)
