"""Metrics registry: counters, gauges and bounded histograms with labels.

Where the event bus answers *what happened when*, the registry answers
*how much and how is it distributed*: innovation magnitudes, inter-update
gaps, ack round-trips in ticks, staleness at answer time.  Instruments
are identified by ``(name, labels)`` -- the same name with different
``source`` labels yields independent series, which is how per-source
breakdowns work without per-source registries.

Histograms are *bounded*: a fixed bucket-edge vector is chosen at
creation and only ``len(edges) + 1`` counts plus four scalars (count,
sum, min, max) are kept, so memory never grows with the run.  The
default edges suit tick- and magnitude-style quantities (1 .. 4096 in
powers of two).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_EDGES",
    "quantile_from_counts",
]

#: Default histogram bucket upper bounds (powers of two; +inf implied).
DEFAULT_EDGES: tuple[float, ...] = tuple(float(2**i) for i in range(13))

Labels = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def quantile_from_counts(
    edges: tuple[float, ...] | list[float],
    counts: list[int],
    q: float,
    lo: float | None = None,
    hi: float | None = None,
) -> float | None:
    """Estimate the ``q``-quantile of a bucketed sample.

    ``counts`` has one entry per edge plus the +inf overflow bucket,
    exactly the :class:`Histogram` layout.  The estimate interpolates
    linearly within the bucket holding the target rank; ``lo``/``hi``
    (the observed min/max, when known) clamp the first and overflow
    buckets, whose true extent the edges cannot bound.  Returns None for
    an empty sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total <= 0:
        return None
    target = q * total
    cumulative = 0
    for index, bucket in enumerate(counts):
        if bucket == 0:
            continue
        if cumulative + bucket >= target:
            lower = edges[index - 1] if index > 0 else (
                lo if lo is not None else edges[0]
            )
            upper = edges[index] if index < len(edges) else (
                hi if hi is not None else edges[-1]
            )
            lower = float(min(lower, upper))
            fraction = (target - cumulative) / bucket
            estimate = lower + fraction * (float(upper) - lower)
            if lo is not None:
                estimate = max(estimate, float(lo))
            if hi is not None:
                estimate = min(estimate, float(hi))
            return estimate
        cumulative += bucket
    return float(hi) if hi is not None else float(edges[-1])


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: Labels = ()
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move both ways."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self.value += float(delta)


class Histogram:
    """A bounded histogram over fixed bucket edges.

    Args:
        name: Metric name.
        labels: Frozen label pairs.
        edges: Strictly increasing bucket upper bounds; an implicit
            +inf bucket catches everything above the last edge.
    """

    def __init__(
        self, name: str, labels: Labels = (), edges: tuple[float, ...] | None = None
    ) -> None:
        self.name = name
        self.labels = labels
        if edges is None:
            edges = DEFAULT_EDGES
        self.edges = tuple(float(e) for e in edges)
        if not self.edges:
            raise ConfigurationError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ConfigurationError("bucket edges must strictly increase")
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (bucket interpolation; None if empty)."""
        return quantile_from_counts(
            self.edges,
            self.counts,
            q,
            lo=self.min if self.count else None,
            hi=self.max if self.count else None,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form used by the snapshot exporter."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """All instruments of one run, keyed by ``(name, labels)``.

    The accessor methods create on first use, so instrumented code never
    needs registration boilerplate; asking for an existing name with a
    different instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], Counter | Gauge | Histogram] = {}

    def _get(
        self,
        kind: type,
        name: str,
        labels: dict[str, str] | None,
        factory,
    ):
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        """The counter ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels, lambda lb: Counter(name, lb))

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        """The gauge ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels, lambda lb: Gauge(name, lb))

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        edges: tuple[float, ...] | None = None,
    ) -> Histogram:
        """The histogram ``(name, labels)``, created on first use."""
        return self._get(
            Histogram, name, labels, lambda lb: Histogram(name, lb, edges)
        )

    def drop_labeled(
        self,
        label_key: str,
        label_value: str,
        kinds: tuple[type, ...] = (Gauge,),
    ) -> int:
        """Remove instruments carrying ``label_key=label_value``.

        Only instruments of the given ``kinds`` are dropped (gauges by
        default: they are point-in-time readings that turn into stale
        lies once their subject is gone, while counters and histograms
        are lifetime totals that remain true).  Returns the number of
        instruments removed.
        """
        doomed = [
            key
            for key, instrument in self._instruments.items()
            if isinstance(instrument, kinds)
            and (str(label_key), str(label_value)) in key[1]
        ]
        for key in doomed:
            del self._instruments[key]
        return len(doomed)

    def counters(self) -> list[Counter]:
        """All counters, in registration order."""
        return [i for i in self._instruments.values() if isinstance(i, Counter)]

    def gauges(self) -> list[Gauge]:
        """All gauges, in registration order."""
        return [i for i in self._instruments.values() if isinstance(i, Gauge)]

    def histograms(self) -> list[Histogram]:
        """All histograms, in registration order."""
        return [i for i in self._instruments.values() if isinstance(i, Histogram)]

    def __len__(self) -> int:
        return len(self._instruments)
