"""Kalman health watchers: the system watches itself with its own filter.

The paper's argument is that a Kalman filter is a cheap, principled
predictor of a stream's next value; this module points that predictor at
the *system's own health series*.  Each :class:`HealthWatcher` runs one
scalar random-walk :class:`~repro.filters.kalman.KalmanFilter` over a
derived per-tick signal (ack round-trip, server inbox depth, shed error,
consensus residual, answer staleness, fabric loss rate) and scores every
new point by its normalised innovation squared -- the same NIS statistic
the PR-3 divergence watchdog applies to stream filters, applied here to
the machinery around them.

Anomaly rule: after a ``warmup`` of samples, a point whose NIS
``innovation^2 / S`` exceeds ``z_threshold^2`` is anomalous.  The
measurement noise ``R`` is adapted online (an EWMA of squared
innovations with a floor), so a series that is flat in a clean
deterministic run scores zero anomalies by construction -- its
innovations are zero -- while a regime change (a peer dies, a partition
opens) produces an innovation far outside the learned band within a
tick or two of the signal moving.  A ``cooldown`` keeps one fault from
emitting an anomaly every tick: the filter re-learns the new regime
(the spike inflates the EWMA) while the cooldown holds.

The :class:`HealthMonitor` owns the watcher set, derives each signal
from the live :class:`~repro.obs.metrics.MetricsRegistry` once per tick
(driven by ``Telemetry.set_tick``), emits ``health.anomaly`` events and
``health_anomalies_total`` counters, and summarises itself into the
``health`` section of a ``repro.obs/v2`` snapshot.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "WatcherSpec",
    "HealthWatcher",
    "HealthMonitor",
    "DEFAULT_WATCHERS",
    "FEDERATION_WATCHERS",
    "WIRE_WATCHERS",
]


@dataclasses.dataclass(frozen=True)
class WatcherSpec:
    """Declarative description of one health watcher.

    Attributes:
        name: Watcher name (``health.anomaly`` events carry it).
        metric: Registry metric the signal derives from.
        signal: How the scalar per-tick signal is derived, across every
            label set of ``metric``:

            * ``gauge`` -- sum of current gauge values.
            * ``gauge_max`` -- max of current gauge values.
            * ``rate`` -- counter increase since the previous tick.
            * ``hist_mean`` -- mean of the histogram samples observed
              since the previous tick (ticks with no new samples are
              skipped, not treated as zero).
        q: Process noise of the random-walk model -- how fast the
            watcher's idea of "normal" is allowed to drift.
        r_floor: Lower bound on the adapted measurement noise; sets the
            minimum innovation magnitude worth calling anomalous, in the
            signal's own units (squared).
        warmup: Samples consumed before scoring starts.
        z_threshold: Anomaly when ``|innovation| / sqrt(S)`` exceeds it.
        cooldown: Ticks to hold after an anomaly before another can fire.
    """

    name: str
    metric: str
    signal: str = "gauge"
    q: float = 0.05
    r_floor: float = 1.0
    warmup: int = 16
    z_threshold: float = 6.0
    cooldown: int = 8


class HealthWatcher:
    """One adaptive scalar filter + NIS scorer over a derived signal."""

    def __init__(self, spec: WatcherSpec) -> None:
        self.spec = spec
        self._flt = None
        self._r_hat = spec.r_floor
        self._seen = 0
        self._cooldown_until: int | None = None
        # Signal-derivation state (cumulative baselines).
        self._last_total: float | None = None
        self._last_count: float | None = None
        self._last_sum: float | None = None
        # Outcome summary.
        self.anomalies = 0
        self.first_anomaly_tick: int | None = None
        self.last_anomaly_tick: int | None = None
        self.last_value: float | None = None
        self.last_z: float | None = None

    # Filtering ----------------------------------------------------------

    def _build_filter(self, z0: float):
        from repro.filters.kalman import KalmanFilter

        spec = self.spec
        return KalmanFilter(
            phi=np.array([[1.0]]),
            h=np.array([[1.0]]),
            q=np.array([[spec.q]]),
            r=lambda _k: np.array([[max(spec.r_floor, self._r_hat)]]),
            x0=np.array([z0]),
            p0=np.array([[max(spec.r_floor, 1.0) * 10.0]]),
        )

    def score(self, tick: int, value: float) -> dict | None:
        """Consume one signal point; returns anomaly fields or None."""
        if not math.isfinite(value):
            return None
        self.last_value = value
        if self._flt is None:
            self._flt = self._build_filter(value)
        flt = self._flt
        flt.predict()
        predicted = float(flt.predict_measurement()[0])
        s = float(flt.innovation_covariance()[0, 0])
        innovation = value - predicted
        z = innovation / math.sqrt(s) if s > 0 else 0.0
        self.last_z = z
        # Adapt R after scoring: the EWMA of squared innovations is the
        # learned noise band; a spike inflates it, which is exactly the
        # re-learning that lets one regime change fire once, not forever.
        alpha = 0.1
        self._r_hat = (1 - alpha) * self._r_hat + alpha * innovation**2
        flt.update(np.array([value]))
        self._seen += 1
        spec = self.spec
        if self._seen <= spec.warmup:
            return None
        if (
            self._cooldown_until is not None
            and tick < self._cooldown_until
        ):
            return None
        if z * z <= spec.z_threshold**2:
            return None
        self._cooldown_until = tick + spec.cooldown
        self.anomalies += 1
        if self.first_anomaly_tick is None:
            self.first_anomaly_tick = tick
        self.last_anomaly_tick = tick
        return {
            "watcher": spec.name,
            "metric": spec.metric,
            "value": value,
            "predicted": predicted,
            "z": round(z, 3),
            "nis": round(z * z, 3),
        }

    # Signal derivation ----------------------------------------------------

    def derive(self, registry) -> float | None:
        """The current signal point, or None when nothing new arrived."""
        spec = self.spec
        if spec.signal in ("gauge", "gauge_max"):
            values = [
                g.value for g in registry.gauges() if g.name == spec.metric
            ]
            if not values:
                return None
            return max(values) if spec.signal == "gauge_max" else sum(values)
        if spec.signal == "rate":
            total = float(
                sum(
                    c.value
                    for c in registry.counters()
                    if c.name == spec.metric
                )
            )
            last = self._last_total
            self._last_total = total
            if last is None:
                return None
            return total - last
        if spec.signal == "hist_mean":
            count = 0.0
            total = 0.0
            for h in registry.histograms():
                if h.name == spec.metric:
                    count += h.count
                    total += h.sum
            last_count, last_sum = self._last_count, self._last_sum
            self._last_count, self._last_sum = count, total
            if last_count is None or count <= last_count:
                return None
            return (total - last_sum) / (count - last_count)
        raise ValueError(f"unknown watcher signal {spec.signal!r}")

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (the snapshot ``health.watchers`` entry)."""
        return {
            "name": self.spec.name,
            "metric": self.spec.metric,
            "signal": self.spec.signal,
            "anomalies": self.anomalies,
            "first_anomaly_tick": self.first_anomaly_tick,
            "last_anomaly_tick": self.last_anomaly_tick,
        }


#: Watchers every instrumented engine benefits from.
DEFAULT_WATCHERS: tuple[WatcherSpec, ...] = (
    WatcherSpec(
        name="ack_rtt", metric="ack_rtt_ticks", signal="hist_mean",
        q=0.05, r_floor=1.0,
    ),
    WatcherSpec(
        name="inbox_depth", metric="inbox_depth", signal="gauge",
        q=0.05, r_floor=1.0,
    ),
    WatcherSpec(
        name="shed_error", metric="shed_error", signal="gauge",
        q=0.05, r_floor=1.0,
    ),
    WatcherSpec(
        name="staleness", metric="staleness_at_answer_ticks",
        signal="hist_mean", q=0.05, r_floor=1.0,
    ),
    WatcherSpec(
        name="delivery_loss", metric="fabric_lost_total", signal="rate",
        q=0.05, r_floor=0.5,
    ),
)

#: Extra watchers for federated clusters.
FEDERATION_WATCHERS: tuple[WatcherSpec, ...] = (
    WatcherSpec(
        name="consensus_error", metric="fed_consensus_residual",
        signal="hist_mean", q=0.02, r_floor=0.25,
    ),
)

#: Extra watchers for the real-wire runtime (ms-clock telemetry).
#: ``loop_lag`` consumes the StallWatchdog's gauge -- an event-loop
#: stall shows up here as a step anomaly even below the hard ``wire.
#: stall`` budget; ``query_latency`` watches the probe's round trips.
WIRE_WATCHERS: tuple[WatcherSpec, ...] = (
    WatcherSpec(
        name="loop_lag", metric="wire_loop_lag_ms", signal="gauge_max",
        q=0.5, r_floor=25.0,
    ),
    WatcherSpec(
        name="query_latency", metric="wire_query_latency_ms",
        signal="hist_mean", q=0.5, r_floor=25.0,
    ),
)


class HealthMonitor:
    """The watcher set behind one telemetry handle.

    Args:
        telemetry: The owning :class:`~repro.obs.telemetry.Telemetry`;
            anomalies are emitted on its bus and counted in its registry.
    """

    def __init__(self, telemetry) -> None:
        self._tel = telemetry
        self._watchers: dict[str, HealthWatcher] = {}

    def watch(self, spec: WatcherSpec) -> HealthWatcher:
        """Install (or replace) one watcher."""
        watcher = HealthWatcher(spec)
        self._watchers[spec.name] = watcher
        return watcher

    def install_defaults(self, federation: bool = False) -> None:
        """Install the standard watcher set (plus federation extras)."""
        for spec in DEFAULT_WATCHERS:
            self.watch(spec)
        if federation:
            for spec in FEDERATION_WATCHERS:
                self.watch(spec)

    def install_wire_defaults(self) -> None:
        """Install the wire-runtime watcher set (ms-clock signals)."""
        for spec in WIRE_WATCHERS:
            self.watch(spec)

    @property
    def watchers(self) -> dict[str, HealthWatcher]:
        """The installed watchers (live objects)."""
        return dict(self._watchers)

    @property
    def total_anomalies(self) -> int:
        """Anomalies across every watcher."""
        return sum(w.anomalies for w in self._watchers.values())

    def observe(self, tick: int) -> None:
        """Derive every signal and score it (called once per tick)."""
        if not self._watchers:
            return
        tel = self._tel
        registry = tel.metrics
        for watcher in self._watchers.values():
            value = watcher.derive(registry)
            if value is None:
                continue
            anomaly = watcher.score(tick, value)
            if anomaly is not None:
                tel.emit("health.anomaly", **anomaly)
                tel.metrics.counter(
                    "health_anomalies_total",
                    {"watcher": watcher.spec.name},
                ).inc()

    def report(self) -> dict[str, object]:
        """The snapshot ``health`` section."""
        return {
            "watchers": [
                self._watchers[name].as_dict()
                for name in sorted(self._watchers)
            ],
        }
