"""Span timers for the hot paths (``time.perf_counter``-based).

A span is one timed region -- a Kalman predict, a codec encode, a whole
engine tick.  Spans nest freely (the engine-tick span contains dozens of
filter spans); each name accumulates count/total/min/max, bounded memory
regardless of run length.

The overhead contract matters more than the feature set: instrumented
call sites guard with ``if timers is not None`` (or hold a
:class:`NullTimers`), so a run without telemetry pays one attribute load
and one ``is None`` test per hot-path call -- nothing else.  The
acceptance bar is a < 5 % regression on the engine-scale benchmark with
telemetry disabled.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SpanStat", "SpanTimers", "NullTimers", "NULL_TIMERS"]


@dataclass
class SpanStat:
    """Accumulated wall-clock totals for one span name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def record(self, elapsed: float) -> None:
        """Fold one span duration into the totals."""
        self.count += 1
        self.total_seconds += elapsed
        if elapsed < self.min_seconds:
            self.min_seconds = elapsed
        if elapsed > self.max_seconds:
            self.max_seconds = elapsed

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form used by the snapshot exporter."""
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else None,
            "max_seconds": self.max_seconds,
        }


class _Span:
    """Context manager timing one region (returned by ``span``)."""

    __slots__ = ("_timers", "_name")

    def __init__(self, timers: "SpanTimers", name: str) -> None:
        self._timers = timers
        self._name = name

    def __enter__(self) -> "_Span":
        self._timers.start(self._name)
        return self

    def __exit__(self, *exc_info) -> None:
        self._timers.stop(self._name)


class SpanTimers:
    """Nestable named span timers with per-name accumulation.

    Use either the context-manager form::

        with timers.span("engine.step"):
            ...

    or, on the hottest paths where a ``with`` block costs too much, the
    paired form::

        timers.start("kalman.predict")
        try:
            ...
        finally:
            timers.stop("kalman.predict")
    """

    enabled = True

    def __init__(self) -> None:
        self._stats: dict[str, SpanStat] = {}
        self._stack: list[tuple[str, float]] = []

    def span(self, name: str) -> _Span:
        """A context manager timing the enclosed region as ``name``."""
        return _Span(self, name)

    def start(self, name: str) -> None:
        """Open a span; must be closed by a matching :meth:`stop`."""
        self._stack.append((name, time.perf_counter()))

    def stop(self, name: str) -> None:
        """Close the innermost open span, which must be ``name``."""
        if not self._stack or self._stack[-1][0] != name:
            open_name = self._stack[-1][0] if self._stack else None
            raise ConfigurationError(
                f"span nesting violation: stopping {name!r} while "
                f"{open_name!r} is innermost"
            )
        elapsed = time.perf_counter() - self._stack.pop()[1]
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = SpanStat(name)
        stat.record(elapsed)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def stats(self) -> list[SpanStat]:
        """Accumulated stats, most expensive first."""
        return sorted(
            self._stats.values(), key=lambda s: s.total_seconds, reverse=True
        )

    def get(self, name: str) -> SpanStat | None:
        """The accumulated stat for one span name, if any."""
        return self._stats.get(name)


class NullTimers:
    """Disabled timers: every operation is a no-op.

    ``span`` returns a shared do-nothing context manager, so code written
    against the ``with`` form needs no enabled-check at all; hot paths
    that cannot afford even that should hold ``None`` instead and guard.
    """

    enabled = False

    class _NullSpan:
        __slots__ = ()

        def __enter__(self) -> "NullTimers._NullSpan":
            return self

        def __exit__(self, *exc_info) -> None:
            return None

    _SPAN = _NullSpan()

    def span(self, name: str) -> "NullTimers._NullSpan":
        """Return the shared do-nothing span."""
        return self._SPAN

    def start(self, name: str) -> None:
        """No-op."""
        return None

    def stop(self, name: str) -> None:
        """No-op."""
        return None

    @property
    def depth(self) -> int:
        """Always 0: nothing is ever open."""
        return 0

    def stats(self) -> list[SpanStat]:
        """Always empty: nothing was ever recorded."""
        return []

    def get(self, name: str) -> SpanStat | None:
        """Always None: nothing was ever recorded."""
        return None


#: Shared singleton for the disabled case.
NULL_TIMERS = NullTimers()
