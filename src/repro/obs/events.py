"""Structured event bus with tick stamps and trace-ID correlation.

Every interesting transition in the pipeline -- a reading taken, an
update suppressed, a frame lost, a resync cut, an ack applied -- becomes
one :class:`Event`.  Events carry two clocks: the engine's *tick* (the
simulated sampling instant, shared by every component) and a monotonic
per-bus sequence number that totally orders events within a tick.

Correlation uses trace IDs: every wire message is identified by
``"<source_id>/<seq>"`` (see :func:`trace_id`), and every event about
that message -- its creation, its delivery or loss, the retransmission
that recovers it, the ack that settles it -- carries the same ID, so a
single reading's journey is one ``grep`` over the JSONL log.  A
retransmission gets a *new* trace ID (it is a new frame on the wire) and
lists the IDs it supersedes in its ``recovers`` field.

The bus keeps a bounded ring buffer (for snapshots and tests) plus
per-name counts that never truncate; subscribers receive every event as
it is emitted (the JSONL exporter is just a subscriber).
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Event", "EventBus", "trace_id"]


def trace_id(source_id: str, seq: int) -> str:
    """The canonical trace ID of wire message ``seq`` from ``source_id``."""
    return f"{source_id}/{seq}"


@dataclass(frozen=True)
class Event:
    """One observed transition.

    Attributes:
        seq: Monotonic bus-wide sequence number (total order).
        tick: Engine tick the event happened at.
        name: Dotted event name (``source.update``, ``fabric.lost``, ...;
            the taxonomy lives in docs/OBSERVABILITY.md).
        source_id: Originating source, when the event is per-source.
        trace_id: Wire-message correlation ID, when the event concerns a
            specific frame.
        fields: Free-form scalar payload (JSON-serialisable values only).
    """

    seq: int
    tick: int
    name: str
    source_id: str | None = None
    trace_id: str | None = None
    fields: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-ready form (the JSONL exporter's line payload)."""
        out: dict[str, object] = {
            "seq": self.seq,
            "tick": self.tick,
            "name": self.name,
        }
        if self.source_id is not None:
            out["source_id"] = self.source_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.fields:
            out.update(self.fields)
        return out


class EventBus:
    """Collect and fan out :class:`Event` records.

    Args:
        buffer_size: Ring-buffer capacity; older events are discarded
            once it fills (counts are never discarded).
    """

    def __init__(self, buffer_size: int = 65536) -> None:
        if buffer_size < 1:
            raise ConfigurationError("buffer_size must be at least 1")
        self._buffer: deque[Event] = deque(maxlen=buffer_size)
        self._subscribers: list[Callable[[Event], None]] = []
        self._counts: _Counter[str] = _Counter()
        self._seq = 0
        self._dropped = 0

    @property
    def total_emitted(self) -> int:
        """Events emitted over the bus's lifetime (including evicted)."""
        return self._seq

    @property
    def total_dropped(self) -> int:
        """Events evicted from the ring buffer (wrapped, not lost counts).

        Subscribers still saw every one of these, and per-name counts
        keep them; only the buffered copy behind :meth:`events` (and the
        snapshot's event census) is gone.  Non-zero means the buffer
        wrapped and buffered-event consumers saw a truncated window.
        """
        return self._dropped

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked synchronously for every event."""
        self._subscribers.append(callback)

    def emit(
        self,
        name: str,
        tick: int,
        source_id: str | None = None,
        trace: str | None = None,
        **fields: object,
    ) -> Event:
        """Create, buffer and fan out one event; returns it."""
        event = Event(
            seq=self._seq,
            tick=tick,
            name=name,
            source_id=source_id,
            trace_id=trace,
            fields=fields,
        )
        self._seq += 1
        self._counts[name] += 1
        if len(self._buffer) == self._buffer.maxlen:
            self._dropped += 1
        self._buffer.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def events(self, name: str | None = None) -> list[Event]:
        """Buffered events, optionally filtered by name (oldest first)."""
        if name is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.name == name]

    def counts(self) -> dict[str, int]:
        """Lifetime emission counts per event name."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop buffered events and counts (subscribers are kept)."""
        self._buffer.clear()
        self._counts.clear()
        self._dropped = 0
