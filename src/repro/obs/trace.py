"""Causal-tree reconstruction from trace-correlated events.

Every wire message already carries a trace ID (``"<source_id>/<seq>"``,
:func:`~repro.obs.events.trace_id`), and PR 7 extends the correlation
across federation hops: the ingress peer, every replica forward and
apply, consensus fusion and failover re-home all emit events carrying
either the update's own trace or a synthetic federation trace
(``consensus/<round>/<stream>``, ``rehome/<stream>/<epoch>``).  This
module turns a bag of events back into the update's journey:

    source s3 emits seq 41
      -> fabric delivers to home p1 (+1 tick)
      -> p1 applies, forwards to replica p2
      -> p2 applies the replica frame (+1 tick)
      -> ack returns to s3 (+2 ticks)

The functions work on any event iterable -- a live bus's buffered
events, or :func:`read_jsonl_events` over an exported event log -- so a
trace can be reconstructed post-mortem from CI artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.events import Event

__all__ = [
    "TraceHop",
    "collect_trace",
    "trace_ids",
    "build_trace",
    "render_trace",
    "read_jsonl_events",
]

#: Canonical causal order of hop kinds sharing one tick: a frame is
#: emitted before the fabric carries it, carried before the ingress
#: routes it, routed before replicas see it, applied before acked.
_STAGE_ORDER = {
    "source.update": 0,
    "source.retransmit": 0,
    "source.suppressed": 0,
    "fabric.lost": 1,
    "fabric.corrupted": 1,
    "fabric.delivered": 1,
    "federation.ingress": 2,
    "server.apply": 3,
    "server.resync_applied": 3,
    "federation.replica_forward": 4,
    "federation.replica_apply": 5,
    "federation.consensus_fuse": 6,
    "federation.failover": 6,
    "federation.rehome_complete": 7,
    "fabric.ack_delivered": 8,
    "source.ack": 9,
}


class TraceHop:
    """One event on a trace, with timing relative to the hop before it.

    Attributes:
        event: The underlying event.
        dt: Ticks since the previous hop on the same trace (0 for the
            root hop).
    """

    __slots__ = ("event", "dt")

    def __init__(self, event: Event, dt: int) -> None:
        self.event = event
        self.dt = dt

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        out = self.event.as_dict()
        out["dt_ticks"] = self.dt
        return out


def _as_event(raw: Event | dict) -> Event:
    if isinstance(raw, Event):
        return raw
    fields = {
        k: v
        for k, v in raw.items()
        if k not in ("seq", "tick", "name", "source_id", "trace_id")
    }
    return Event(
        seq=int(raw["seq"]),
        tick=int(raw["tick"]),
        name=str(raw["name"]),
        source_id=raw.get("source_id"),
        trace_id=raw.get("trace_id"),
        fields=fields,
    )


def _sort_key(event: Event) -> tuple[int, int, int]:
    return (event.tick, _STAGE_ORDER.get(event.name, 5), event.seq)


def collect_trace(events, trace: str) -> list[Event]:
    """Every event carrying ``trace``, in causal order."""
    matched = [
        _as_event(e)
        for e in events
        if (e.trace_id if isinstance(e, Event) else e.get("trace_id"))
        == trace
    ]
    return sorted(matched, key=_sort_key)


def trace_ids(events) -> list[str]:
    """Distinct trace IDs present, ordered by first appearance."""
    seen: dict[str, None] = {}
    for e in events:
        tid = e.trace_id if isinstance(e, Event) else e.get("trace_id")
        if tid is not None and tid not in seen:
            seen[tid] = None
    return list(seen)


def build_trace(events, trace: str) -> list[TraceHop]:
    """The trace's hops with per-hop tick deltas (empty if unknown)."""
    ordered = collect_trace(events, trace)
    hops: list[TraceHop] = []
    previous: int | None = None
    for event in ordered:
        dt = 0 if previous is None else event.tick - previous
        hops.append(TraceHop(event, dt))
        previous = event.tick
    return hops


def _hop_detail(event: Event) -> str:
    skip = ("recovers",)
    parts = []
    for key, value in event.fields.items():
        if key in skip:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_trace(events, trace: str) -> str:
    """One trace as an indented ASCII causal tree with hop timing."""
    hops = build_trace(events, trace)
    if not hops:
        return f"trace {trace}: no events"
    lines = [f"trace {trace} ({len(hops)} hops)"]
    for index, hop in enumerate(hops):
        event = hop.event
        timing = f"+{hop.dt}" if index else " @"
        arrow = "└─" if index == len(hops) - 1 else "├─"
        detail = _hop_detail(event)
        subject = f" [{event.source_id}]" if event.source_id else ""
        lines.append(
            f"  {arrow} tick {event.tick:>5} ({timing:>3}t) "
            f"{event.name}{subject}"
            + (f"  {detail}" if detail else "")
        )
    return "\n".join(lines)


def read_jsonl_events(path: str | Path) -> list[dict]:
    """Parse a :class:`~repro.obs.exporters.JsonlEventWriter` log."""
    out: list[dict] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not valid JSON ({exc})"
            ) from None
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"{path}:{lineno}: event lines must be objects"
            )
        out.append(record)
    return out
