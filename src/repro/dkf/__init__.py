"""The Dual Kalman Filter core (paper Section 3.1): source-side mirror
filter, server-side prediction filter, the update-suppression protocol
between them, and end-to-end session drivers."""

from repro.dkf.adaptive_sampling import AdaptiveSamplingSession
from repro.dkf.bank_session import ModelBankSession
from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    CRC_BYTES,
    AckMessage,
    Channel,
    ChannelStats,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
    build_source_index,
    decode_message,
    encode_message,
    periodic_loss,
    random_loss,
)
from repro.dkf.server import DKFServer, ServerSourceState
from repro.dkf.session import DKFSession
from repro.dkf.source import DKFSource, SourceStep
from repro.dkf.stepper import SourceStepper

__all__ = [
    "AckMessage",
    "AdaptiveSamplingSession",
    "CRC_BYTES",
    "Channel",
    "ChannelStats",
    "DKFConfig",
    "DKFServer",
    "DKFSession",
    "DKFSource",
    "HeartbeatMessage",
    "ModelBankSession",
    "ResyncMessage",
    "ServerSourceState",
    "SourceStep",
    "SourceStepper",
    "TransportPolicy",
    "UpdateMessage",
    "build_source_index",
    "decode_message",
    "encode_message",
    "periodic_loss",
    "random_loss",
]
