"""The Dual Kalman Filter core (paper Section 3.1): source-side mirror
filter, server-side prediction filter, the update-suppression protocol
between them, and end-to-end session drivers."""

from repro.dkf.adaptive_sampling import AdaptiveSamplingSession
from repro.dkf.bank_session import ModelBankSession
from repro.dkf.config import DKFConfig
from repro.dkf.protocol import (
    Channel,
    ChannelStats,
    ResyncMessage,
    UpdateMessage,
    periodic_loss,
    random_loss,
)
from repro.dkf.server import DKFServer, ServerSourceState
from repro.dkf.session import DKFSession
from repro.dkf.source import DKFSource, SourceStep

__all__ = [
    "AdaptiveSamplingSession",
    "Channel",
    "ChannelStats",
    "DKFConfig",
    "DKFServer",
    "DKFSession",
    "DKFSource",
    "ModelBankSession",
    "ResyncMessage",
    "ServerSourceState",
    "SourceStep",
    "UpdateMessage",
    "periodic_loss",
    "random_loss",
]
