"""Adaptive sampling driven by the innovation sequence (paper Section 3.1
advantage 5 and Section 6 future-work item 5).

The plain DKF reads the sensor at every sampling instant even if nothing is
transmitted.  On energy-starved nodes the *reading* itself can be worth
skipping when the stream is quiet.  :class:`AdaptiveSamplingSession` wraps a
DKF pair with an :class:`~repro.filters.innovation.AdaptiveSamplingController`:
small innovations stretch the sampling interval (skip instants entirely),
large innovations snap it back to every instant.

At skipped instants both filters still advance their prediction step (the
mirror property requires only that both sides perform the same operations),
so the server keeps answering queries from the extrapolated state; the
precision guarantee becomes *best effort* at skipped instants, which is the
trade-off the controller's thresholds manage.
"""

from __future__ import annotations

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.innovation import AdaptiveSamplingController
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord

__all__ = ["AdaptiveSamplingSession"]


class AdaptiveSamplingSession(SuppressionScheme):
    """DKF session that skips sensor readings when the stream is quiet.

    Args:
        config: The DKF configuration.
        controller: Sampling controller; a default is built from the
            config's δ when omitted.
        max_interval: Convenience cap for the default controller.
    """

    def __init__(
        self,
        config: DKFConfig,
        controller: AdaptiveSamplingController | None = None,
        max_interval: int = 16,
    ) -> None:
        self._config = config
        self._session = DKFSession(config)
        self._controller = controller or AdaptiveSamplingController(
            delta=config.min_delta, max_interval=max_interval
        )
        self._next_sample_k: int | None = None
        self._samples_taken = 0
        self._instants_seen = 0

    @property
    def name(self) -> str:
        """Display name (config name plus the sampling marker)."""
        return f"{self._config.name}+adaptive-sampling"

    @property
    def controller(self) -> AdaptiveSamplingController:
        """The live sampling-interval controller."""
        return self._controller

    @property
    def samples_taken(self) -> int:
        """Sensor readings actually performed (energy accounting)."""
        return self._samples_taken

    @property
    def instants_seen(self) -> int:
        """Sampling instants offered (sampled or skipped)."""
        return self._instants_seen

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted by the wrapped session."""
        return self._session.updates_sent

    def observe(self, record: StreamRecord) -> SchemeDecision:
        """Process one sampling instant, possibly without reading at all."""
        self._instants_seen += 1
        if self._next_sample_k is None:
            self._next_sample_k = record.k  # First instant always samples.

        if record.k < self._next_sample_k:
            # Skip the reading entirely: advance both filters' predictions
            # so the pair stays in lock-step, and answer from extrapolation.
            self._session.server.tick("s0", record.k)
            source = self._session.source
            if source.primed:
                source.mirror.predict()
                server_value = self._session.server.value("s0")
            else:  # pragma: no cover - first instant always samples
                server_value = record.value.copy()
            return SchemeDecision(
                k=record.k,
                sent=False,
                server_value=server_value,
                source_value=record.value.copy(),
                raw_value=record.value.copy(),
            )

        decision = self._session.observe(record)
        self._samples_taken += 1
        if decision.prediction_error is not None:
            # Feed the controller the *pre-correction* prediction error --
            # the innovation magnitude.  (The post-decision error is zero
            # on every update step and would make a volatile stream look
            # quiet.)
            interval = self._controller.observe(decision.prediction_error)
        else:
            interval = self._controller.interval  # priming step
        self._next_sample_k = record.k + interval
        return decision

    def reset(self) -> None:
        self._session.reset()
        self._controller.reset()
        self._next_sample_k = None
        self._samples_taken = 0
        self._instants_seen = 0
