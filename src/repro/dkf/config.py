"""Configuration for a DKF installation (paper Section 3.1, Table 2).

A continuous query ``q_j`` arrives with a precision constraint ``Delta_j``
on a source ``s_i``; per the paper's simplification the source precision
width is ``delta_i = Delta_j``.  The user may also pass the optional
smoothing factor ``F_i`` that controls ``KF_c``.  A :class:`DKFConfig`
bundles those query-time parameters with the state-space model that both
filters run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.filters.models import StateSpaceModel

__all__ = ["DKFConfig", "TransportPolicy"]


@dataclass(frozen=True)
class TransportPolicy:
    """Fault-tolerance knobs for one source's transport state machine.

    These are deliberately separate from :class:`DKFConfig`: the DKF
    parameters are agreed between the two filter endpoints, while the
    transport policy only shapes *when* the source retransmits and how the
    server judges liveness -- re-tuning it never requires reinstalling the
    filters.

    Attributes:
        ack_timeout_ticks: Ticks the source waits for an ack before its
            first retransmission.  Must exceed the link round-trip
            (data latency + ack latency) or every message retransmits.
        backoff_factor: Multiplier applied to the timeout after each
            failed retransmission (exponential backoff).
        max_backoff_ticks: Ceiling on the backed-off timeout, so a source
            never goes fully silent between retries.
        heartbeat_interval_ticks: Silence (no transmission) after which
            the source emits a header-only heartbeat so the server can
            tell suppression from death.
        suspect_after_ticks: Server-side silence deadline; with no message
            (update, resync or heartbeat) for this many ticks the source
            is marked suspect and its query answers degraded.
    """

    ack_timeout_ticks: int = 8
    backoff_factor: float = 2.0
    max_backoff_ticks: int = 64
    heartbeat_interval_ticks: int = 25
    suspect_after_ticks: int = 60

    def __post_init__(self) -> None:
        if self.ack_timeout_ticks < 1:
            raise ConfigurationError("ack_timeout_ticks must be at least 1")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1")
        if self.max_backoff_ticks < self.ack_timeout_ticks:
            raise ConfigurationError(
                "max_backoff_ticks must be at least ack_timeout_ticks"
            )
        if self.heartbeat_interval_ticks < 1:
            raise ConfigurationError(
                "heartbeat_interval_ticks must be at least 1"
            )
        if self.suspect_after_ticks < 1:
            raise ConfigurationError("suspect_after_ticks must be at least 1")

    def retry_timeout(self, attempt: int) -> int:
        """The ack deadline (in ticks) for retransmission ``attempt``.

        Attempt 0 is the original transmission; each further attempt
        multiplies the base timeout by ``backoff_factor``, capped at
        ``max_backoff_ticks``.
        """
        timeout = self.ack_timeout_ticks * self.backoff_factor**attempt
        return max(1, min(int(timeout), self.max_backoff_ticks))


@dataclass(frozen=True)
class DKFConfig:
    """Parameters installed on both ends of a DKF pair.

    Attributes:
        model: State-space model shared by ``KF_s`` and ``KF_m``.
        delta: Precision width δ.  The source transmits when the server's
            prediction would err by more than δ on any measured component.
            A scalar applies one width to every component; a tuple gives
            each measured attribute its own width (Section 6 future-work
            item 4: "multiple queries with multiple attributes" -- e.g. a
            position query tight on X, loose on Y).
        smoothing_f: Optional smoothing factor ``F`` for the source-side
            smoothing filter ``KF_c``.  None disables smoothing (Examples
            1 and 2); Example 3 sets it.
        smoothing_r: Measurement variance of the smoothing filter; the
            ratio ``F / smoothing_r`` sets the effective bandwidth.
        p0_scale: Scale of the initial estimate covariance.
        check_mirror: When True, every transmitted message carries a state
            digest and the server verifies it, raising
            :class:`~repro.errors.MirrorDesyncError` on mismatch.  Costs a
            few bytes per message; invaluable in tests.
        outlier_gate_factor: Optional glitch-gate threshold, as a multiple
            of δ (Section 3.1 advantage 5: "the innovation sequence helps
            in detecting outliers").  When a reading's prediction error
            exceeds ``factor * δ`` on some component, the source treats it
            as a sensor glitch: nothing is transmitted and neither filter
            updates, so the pair stays in lock-step without spending a
            message on a spike.  Genuine trend changes produce moderate
            errors (just past δ) and still transmit immediately; only
            far-out readings are gated.  The precision guarantee is
            deliberately waived at gated instants.
        outlier_gate_limit: Consecutive gated readings after which the
            gate yields and transmits anyway -- a sustained "outlier" is
            really a regime change, and the bound must be restored.
    """

    model: StateSpaceModel
    delta: float | tuple[float, ...]
    smoothing_f: float | None = None
    smoothing_r: float = 1.0
    p0_scale: float = 1.0
    check_mirror: bool = False
    outlier_gate_factor: float | None = None
    outlier_gate_limit: int = 3
    label: str = field(default="")

    def __post_init__(self) -> None:
        if isinstance(self.delta, (list, tuple, np.ndarray)):
            widths = tuple(float(d) for d in self.delta)
            if not widths:
                raise ConfigurationError("delta tuple must not be empty")
            if any(d <= 0 for d in widths):
                raise ConfigurationError(
                    f"all precision widths must be positive, got {widths}"
                )
            if len(widths) != self.model.measurement_dim:
                raise DimensionError(
                    f"delta tuple has {len(widths)} widths but the model "
                    f"measures {self.model.measurement_dim} attributes"
                )
            object.__setattr__(self, "delta", widths)
        elif self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.outlier_gate_factor is not None and self.outlier_gate_factor <= 1:
            raise ConfigurationError(
                "outlier_gate_factor must exceed 1 (a gate at or below the "
                "precision width would gate every escaping reading)"
            )
        if self.outlier_gate_limit < 1:
            raise ConfigurationError("outlier_gate_limit must be at least 1")
        if self.smoothing_f is not None and self.smoothing_f < 0:
            raise ConfigurationError("smoothing factor F must be non-negative")
        if self.smoothing_r <= 0:
            raise ConfigurationError("smoothing_r must be positive")
        if self.p0_scale <= 0:
            raise ConfigurationError("p0_scale must be positive")

    @property
    def smoothed(self) -> bool:
        """Whether a smoothing filter ``KF_c`` is in the loop."""
        return self.smoothing_f is not None

    @property
    def min_delta(self) -> float:
        """Tightest per-component width (scalar summary for controllers)."""
        if isinstance(self.delta, tuple):
            return min(self.delta)
        return float(self.delta)

    def delta_vector(self) -> np.ndarray:
        """Per-component precision widths, shape ``(measurement_dim,)``."""
        if isinstance(self.delta, tuple):
            return np.array(self.delta, dtype=float)
        return np.full(self.model.measurement_dim, float(self.delta))

    @property
    def name(self) -> str:
        """Display name: explicit label, else derived from the model."""
        if self.label:
            return self.label
        suffix = f"+F={self.smoothing_f:g}" if self.smoothed else ""
        return f"dkf[{self.model.name}{suffix}]"

    def with_delta(self, delta: float | tuple[float, ...]) -> "DKFConfig":
        """Copy of this config at a different precision width (sweeps)."""
        return dataclasses.replace(self, delta=delta)

    def with_smoothing(self, f: float | None) -> "DKFConfig":
        """Copy of this config at a different smoothing factor (sweeps)."""
        return dataclasses.replace(self, smoothing_f=f)
