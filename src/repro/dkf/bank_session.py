"""DKF with online model selection: a mirrored *model bank* on each end.

Example 2 exposes the paper's soft spot: the sinusoidal model wins, but
"such stream characteristics can only be deduced after the stream has
been analyzed by the system".  Section 6 proposes "updating the state
transition matrices online as the streaming data trend changes".  This
module delivers that inside the protocol: instead of one filter, both
endpoints run an identical :class:`~repro.filters.model_bank.ModelBank`.

Every candidate filter advances every instant; transmitted measurements
score the candidates by innovation likelihood; the *posterior-weighted
mixture* is the prediction the suppression rule tests.  Because the bank's
arithmetic is deterministic, the source-side bank mirrors the server-side
bank exactly -- the same lock-step property as the single-filter DKF, at
``len(models)`` times the filter cost.

The result adapts by itself: on a stream that switches regimes (constant →
ramp → sinusoid), the bank re-weights toward whichever candidate currently
explains the data, without anyone re-installing filters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, MirrorDesyncError
from repro.filters.model_bank import ModelBank
from repro.filters.models import StateSpaceModel
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord

__all__ = ["ModelBankSession"]


class ModelBankSession(SuppressionScheme):
    """In-process DKF pair whose endpoints are mirrored model banks.

    Args:
        models: Candidate state-space models (shared measurement
            dimension; see :class:`ModelBank`).
        delta: Precision width δ (scalar; applied per component).
        forgetting: Bank score forgetting factor in ``(0, 1]`` -- below 1
            the bank can re-decide when the regime changes.
        verify_mirror: Assert bank lock-step after every instant.
        label: Display name override.
    """

    def __init__(
        self,
        models: list[StateSpaceModel],
        delta: float,
        forgetting: float = 0.95,
        verify_mirror: bool = True,
        label: str = "",
    ) -> None:
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        self._models = list(models)
        self._delta = float(delta)
        self._forgetting = forgetting
        self._verify = verify_mirror
        self._label = label
        self._build()

    def _build(self) -> None:
        self._source_bank = ModelBank(self._models, forgetting=self._forgetting)
        self._server_bank = ModelBank(self._models, forgetting=self._forgetting)
        self._updates_sent = 0
        self._samples_seen = 0

    @property
    def name(self) -> str:
        """Display name used in tables and figures."""
        if self._label:
            return self._label
        return f"dkf-bank[{len(self._models)} models]"

    @property
    def delta(self) -> float:
        """The installed precision width."""
        return self._delta

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted so far."""
        return self._updates_sent

    @property
    def samples_seen(self) -> int:
        """Sensor readings processed so far."""
        return self._samples_seen

    @property
    def source_bank(self) -> ModelBank:
        """The sensor-side bank (live object)."""
        return self._source_bank

    @property
    def server_bank(self) -> ModelBank:
        """The server-side bank (live object)."""
        return self._server_bank

    def _check_mirror(self) -> None:
        if self._source_bank.state_digest() != self._server_bank.state_digest():
            raise MirrorDesyncError("model banks diverged")

    def observe(self, record: StreamRecord) -> SchemeDecision:
        """One sampling instant through the mirrored bank pair."""
        value = record.value
        self._samples_seen += 1

        if not self._source_bank.primed:
            self._source_bank.prime(value)
            self._server_bank.prime(value)
            self._updates_sent += 1
            if self._verify:
                self._check_mirror()
            return SchemeDecision(
                k=record.k,
                sent=True,
                server_value=value.copy(),
                source_value=value.copy(),
                raw_value=value.copy(),
                payload_floats=value.shape[0],
            )

        # The mixture prediction after each candidate's predict step:
        # probe on a copy (ModelBank.step both predicts and corrects, so
        # the decision must be taken on a lookahead).
        probe = self._source_bank.copy()
        probe.step(None)
        prediction = probe.predict_measurement()
        abs_errors = np.abs(prediction - value)
        error = float(np.max(abs_errors))

        if error > self._delta:
            # Transmit: both banks absorb (and score on) the measurement.
            self._source_bank.step(value)
            self._server_bank.step(value)
            self._updates_sent += 1
            sent = True
            server_value = value.copy()
            payload = value.shape[0]
        else:
            # Coast: both banks advance their predictions only.
            self._source_bank.step(None)
            self._server_bank.step(None)
            sent = False
            server_value = prediction
            payload = 0
        if self._verify:
            self._check_mirror()
        return SchemeDecision(
            k=record.k,
            sent=sent,
            server_value=server_value,
            source_value=value.copy(),
            raw_value=value.copy(),
            payload_floats=payload,
            prediction_error=error,
        )

    def reset(self) -> None:
        self._build()

    def posteriors(self):
        """Current model posteriors at the server (reporting aid)."""
        return self._server_bank.posteriors()
