"""Sans-IO per-instant step function for one DKF source.

The seeded :class:`~repro.dsms.engine.StreamEngine` interleaves a
source's reading, transmission bookkeeping and transport maintenance
inline in its tick loop.  The wall-clock wire runtime needs the same
dance -- sample, register the cut message with the pending-ack buffer,
poll for timeout retransmissions and heartbeats -- but driven from an
asyncio task that owns real sockets instead of a simulated fabric.

:class:`SourceStepper` extracts that per-instant sequence into a pure
state machine: :meth:`step` takes a clock and a reading and returns the
protocol messages to put on whatever wire the caller owns; :meth:`on_ack`
feeds acknowledgements back in.  No I/O, no clocks of its own -- the tick
engine and the asyncio runtime drive the identical protocol logic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.dkf.source import DKFSource
from repro.streams.base import StreamRecord

__all__ = ["SourceStepper"]


class SourceStepper:
    """Drives one :class:`~repro.dkf.source.DKFSource` without owning I/O.

    Args:
        source: The source-side protocol endpoint (mirror filter plus
            transport state machine).
        reading_fn: Optional reading generator ``(k) -> value array``;
            when given, :meth:`step` may be called without a value.
    """

    def __init__(
        self,
        source: DKFSource,
        reading_fn: Callable[[int], np.ndarray] | None = None,
    ) -> None:
        self._source = source
        self._reading_fn = reading_fn

    @property
    def source(self) -> DKFSource:
        """The wrapped source endpoint (live object)."""
        return self._source

    def step(
        self,
        k: int,
        value: np.ndarray | None = None,
        now: int | None = None,
    ) -> list[UpdateMessage | ResyncMessage | HeartbeatMessage]:
        """Run one sampling instant; returns the messages to transmit.

        Mirrors the engine's per-source tick exactly: sample the reading
        (suppression decision), register any cut update with the
        pending-ack buffer, then run transport maintenance (timeout
        resyncs, heartbeats).  ``now`` defaults to ``k`` -- the wire
        runtime passes its own monotonic tick so retransmission deadlines
        ride the wall clock.
        """
        if now is None:
            now = k
        if value is None:
            if self._reading_fn is None:
                raise ValueError("step needs a value or a reading_fn")
            value = self._reading_fn(k)
        record = StreamRecord(k=k, timestamp=float(k), value=value)
        step = self._source.sample(record)
        out: list[UpdateMessage | ResyncMessage | HeartbeatMessage] = []
        if step.message is not None:
            self._source.note_sent(step.message, now)
            out.append(step.message)
        out.extend(self._source.poll_transport(now))
        return out

    def poll(
        self, now: int
    ) -> list[ResyncMessage | HeartbeatMessage]:
        """Transport maintenance only (no reading this instant)."""
        return self._source.poll_transport(now)

    def on_ack(self, ack: AckMessage, now: int) -> None:
        """Feed a received acknowledgement into the pending-ack buffer."""
        self._source.on_ack(ack, now)
