"""Wire protocol between a DKF source and the central server.

Messages are tiny by design -- the whole point of the architecture is that
*most sampling instants send nothing*.  Four message types exist:

* :class:`UpdateMessage` -- a measurement that escaped the precision bound,
  with a sequence number (loss detection) and an optional state digest
  (mirror verification).
* :class:`ResyncMessage` -- a full filter-state snapshot, sent when the
  source learns a previous update was lost and the mirrors have diverged.
* :class:`AckMessage` -- server-to-source cumulative acknowledgement; the
  only way a source ever learns whether an update survived the link.  May
  carry a resync request when the server detected a sequence gap.
* :class:`HeartbeatMessage` -- a header-only liveness beacon the source
  emits during long suppression silences, so the server can distinguish
  "within delta" from "possibly dead".

Every encoded message carries a CRC-32 trailer; receivers reject corrupt
frames (:class:`~repro.errors.CorruptMessageError`) instead of risking a
silently wrong decode.

:class:`Channel` simulates the network link: it counts messages and bytes,
and can inject loss for failure testing.  Sizes follow a simple fixed-width
encoding (8-byte floats, 4-byte ints, small header) so the energy model can
convert traffic to joules.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, CorruptMessageError

__all__ = [
    "UpdateMessage",
    "ResyncMessage",
    "AckMessage",
    "HeartbeatMessage",
    "Channel",
    "ChannelStats",
]

#: Bytes per float in the simple wire encoding.
FLOAT_BYTES = 8
#: Bytes per integer field (sequence number, time index, source id hash).
INT_BYTES = 4
#: Fixed per-message header bytes (type tag + source id + seq + k).
HEADER_BYTES = 1 + 3 * INT_BYTES
#: Bytes of the optional state digest carried by verified messages.
DIGEST_BYTES = 8
#: Bytes of the CRC-32 integrity trailer appended to every message.
CRC_BYTES = 4


@dataclass(frozen=True)
class UpdateMessage:
    """A transmitted measurement (source -> server).

    Attributes:
        source_id: Originating source.
        seq: Per-source sequence number (gaps reveal lost messages).
        k: Sampling instant the measurement belongs to.
        value: The (possibly smoothed) measurement vector.
        digest: Optional mirror-state digest for desync detection.
    """

    source_id: str
    seq: int
    k: int
    value: np.ndarray
    digest: bytes | None = None

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        size = HEADER_BYTES + self.value.shape[0] * FLOAT_BYTES + CRC_BYTES
        if self.digest is not None:
            size += DIGEST_BYTES
        return size


@dataclass(frozen=True)
class ResyncMessage:
    """A full filter-state snapshot (source -> server) after message loss.

    Attributes:
        source_id: Originating source.
        seq: Sequence number (shares the update counter).
        k: Sampling instant of the snapshot.
        x: Mirror filter state vector.
        p: Mirror filter covariance.
        value: The current (possibly smoothed) measurement, so the server
            can also refresh its cached answer.
    """

    source_id: str
    seq: int
    k: int
    x: np.ndarray
    p: np.ndarray
    value: np.ndarray

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        n = self.x.shape[0]
        # State vector + upper triangle of the symmetric covariance.
        cov_floats = n * (n + 1) // 2
        return (
            HEADER_BYTES
            + (n + cov_floats + self.value.shape[0]) * FLOAT_BYTES
            + CRC_BYTES
        )


@dataclass(frozen=True)
class AckMessage:
    """A cumulative acknowledgement (server -> source).

    Attributes:
        source_id: The source whose traffic is being acknowledged.
        seq: The server's *next expected* sequence number; every sequence
            number strictly below it is acknowledged, so the source drops
            all pending-ack entries ``< seq``.
        k: Server-side tick the ack was generated at (diagnostics).
        resync_requested: True when the server detected a sequence gap and
            needs a full state snapshot to heal.
    """

    source_id: str
    seq: int
    k: int
    resync_requested: bool = False

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        return HEADER_BYTES + 1 + CRC_BYTES


@dataclass(frozen=True)
class HeartbeatMessage:
    """A header-only liveness beacon (source -> server).

    Sent when the suppression protocol has kept the source silent for a
    configurable interval, so the server can tell a healthy-but-quiet
    source from a dead one.  Carries no payload and needs no ack -- the
    next heartbeat supersedes a lost one.

    Attributes:
        source_id: Originating source.
        seq: The source's next unsent sequence number (diagnostics only;
            heartbeats do not consume sequence numbers).
        k: Sampling instant the beacon was emitted at.
    """

    source_id: str
    seq: int
    k: int

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        return HEADER_BYTES + CRC_BYTES


@dataclass
class ChannelStats:
    """Running traffic totals for one channel."""

    messages_offered: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    bytes_delivered: int = 0
    resyncs: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (logging/serialisation)."""
        return {
            "messages_offered": self.messages_offered,
            "messages_delivered": self.messages_delivered,
            "messages_lost": self.messages_lost,
            "bytes_delivered": self.bytes_delivered,
            "resyncs": self.resyncs,
        }


class Channel:
    """Simulated source-to-server link with loss injection and accounting.

    Args:
        loss_fn: Optional predicate ``(message_index) -> bool`` returning
            True when that message should be dropped.  Retransmissions
            (resyncs) are never dropped -- they model the acked recovery
            path.
        deliver: Callback invoked with each delivered message.
    """

    def __init__(
        self,
        deliver: Callable[[UpdateMessage | ResyncMessage], None],
        loss_fn: Callable[[int], bool] | None = None,
    ) -> None:
        self._deliver = deliver
        self._loss_fn = loss_fn
        self._stats = ChannelStats()

    @property
    def stats(self) -> ChannelStats:
        """Running traffic totals for this channel."""
        return self._stats

    def send(self, message: UpdateMessage) -> bool:
        """Offer an update message; returns True when it was delivered."""
        self._stats.messages_offered += 1
        index = self._stats.messages_offered - 1
        if self._loss_fn is not None and self._loss_fn(index):
            self._stats.messages_lost += 1
            return False
        self._stats.messages_delivered += 1
        self._stats.bytes_delivered += message.size_bytes
        self._deliver(message)
        return True

    def send_resync(self, message: ResyncMessage) -> None:
        """Deliver a resync snapshot (modelled as reliably retransmitted)."""
        self._stats.messages_offered += 1
        self._stats.messages_delivered += 1
        self._stats.resyncs += 1
        self._stats.bytes_delivered += message.size_bytes
        self._deliver(message)


def periodic_loss(period: int) -> Callable[[int], bool]:
    """Loss function dropping every ``period``-th message (testing aid)."""
    if period < 1:
        raise ConfigurationError("period must be positive")
    return lambda index: (index + 1) % period == 0


def random_loss(rate: float, seed: int = 0) -> Callable[[int], bool]:
    """Loss function dropping messages i.i.d. with probability ``rate``.

    The decision for message ``index`` is derived deterministically from
    ``(seed, index)`` -- never from call order -- so replays and repeated
    queries of the same index always agree (required for deterministic
    fault schedules and retransmission simulations).
    """
    if not 0 <= rate < 1:
        raise ConfigurationError("rate must be in [0, 1)")

    def drop(index: int) -> bool:
        return bool(np.random.default_rng((seed, index)).random() < rate)

    return drop


__all__ += ["periodic_loss", "random_loss", "FLOAT_BYTES", "HEADER_BYTES"]


# ----------------------------------------------------------------------
# Binary codec
# ----------------------------------------------------------------------
#
# The fixed-width encoding the size accounting assumes, made real: a
# 1-byte type tag, a 4-byte source-id hash, 4-byte seq and k, then the
# payload floats (and, for resyncs, the state vector and the upper
# triangle of the covariance), closed by a 4-byte CRC-32 of everything
# before it.  Mirrors can run on microcontrollers, so the format is
# deliberately trivial: network byte order, no varints, no framing beyond
# the leading tag and the trailing checksum.

_TAG_UPDATE = 0x01
_TAG_UPDATE_DIGEST = 0x02
_TAG_RESYNC = 0x03
_TAG_ACK = 0x04
_TAG_HEARTBEAT = 0x05

# Optional telemetry span timers around encode/decode (+ CRC).  The codec
# is module-level functions, so the hook is module-level too: the engine
# installs its Telemetry's timers here when observation is on, and the
# default (None) costs one global load and one branch per call.
_CODEC_TIMERS = None


def instrument_codec(timers) -> None:
    """Install (or with None, remove) span timers around the codec.

    Encode spans appear as ``codec.encode``, decode (including the CRC
    check) as ``codec.decode``.  Last caller wins -- the codec is shared
    by every fabric in the process.
    """
    global _CODEC_TIMERS
    _CODEC_TIMERS = timers


__all__ += ["instrument_codec"]

WireMessage = UpdateMessage | ResyncMessage | AckMessage | HeartbeatMessage


def _source_hash(source_id: str) -> int:
    """Stable 32-bit hash of the source id carried in the header."""
    return zlib.crc32(source_id.encode("utf-8")) & 0xFFFFFFFF


def build_source_index(source_ids) -> dict[int, str]:
    """Precompute the header-hash -> source-id table for :func:`decode_message`.

    Resolving the header hash against a plain id list is a linear scan --
    fine for a handful of sources, fatal for a 100k-source wire server
    decoding thousands of frames per second.  Receivers that decode in a
    loop should build this index once per registration change and pass it
    as ``decode_message``'s ``source_ids`` argument for O(1) resolution.

    Raises:
        ConfigurationError: When two registered ids collide on the same
            32-bit hash (the header could not name either unambiguously).
    """
    index: dict[int, str] = {}
    for source_id in source_ids:
        key = _source_hash(source_id)
        other = index.get(key)
        if other is not None and other != source_id:
            raise ConfigurationError(
                f"source ids {other!r} and {source_id!r} collide on "
                f"header hash {key:#x}"
            )
        index[key] = source_id
    return index


__all__ += ["build_source_index"]


def _seal(frame: bytes) -> bytes:
    """Append the CRC-32 trailer to an encoded frame."""
    return frame + struct.pack("!I", zlib.crc32(frame) & 0xFFFFFFFF)


def encode_message(message: WireMessage) -> bytes:
    """Serialise a protocol message to its fixed-width wire form.

    The encoded length equals ``message.size_bytes`` exactly -- the size
    accounting and the codec cannot drift apart (a test pins this).  The
    final 4 bytes are a CRC-32 of the preceding frame; receivers verify it
    before trusting any field.

    Note the header carries a *hash* of the source id, not the string; the
    receiver resolves it against its registration table
    (:func:`decode_message` therefore needs the candidate id list).
    """
    timers = _CODEC_TIMERS
    if timers is None:
        return _encode(message)
    timers.start("codec.encode")
    try:
        return _encode(message)
    finally:
        timers.stop("codec.encode")


def _encode(message: WireMessage) -> bytes:
    if isinstance(message, ResyncMessage):
        n = message.x.shape[0]
        m = message.value.shape[0]
        triangle = message.p[np.triu_indices(n)]
        return _seal(
            struct.pack(
                f"!BIII{n}d{triangle.shape[0]}d{m}d",
                _TAG_RESYNC,
                _source_hash(message.source_id),
                message.seq,
                message.k,
                *message.x,
                *triangle,
                *message.value,
            )
        )
    if isinstance(message, AckMessage):
        return _seal(
            struct.pack(
                "!BIIIB",
                _TAG_ACK,
                _source_hash(message.source_id),
                message.seq,
                message.k,
                1 if message.resync_requested else 0,
            )
        )
    if isinstance(message, HeartbeatMessage):
        return _seal(
            struct.pack(
                "!BIII",
                _TAG_HEARTBEAT,
                _source_hash(message.source_id),
                message.seq,
                message.k,
            )
        )
    m = message.value.shape[0]
    if message.digest is not None:
        return _seal(
            struct.pack(
                f"!BIII{m}d8s",
                _TAG_UPDATE_DIGEST,
                _source_hash(message.source_id),
                message.seq,
                message.k,
                *message.value,
                message.digest,
            )
        )
    return _seal(
        struct.pack(
            f"!BIII{m}d",
            _TAG_UPDATE,
            _source_hash(message.source_id),
            message.seq,
            message.k,
            *message.value,
        )
    )


def decode_message(
    data: bytes,
    source_ids: list[str] | dict[int, str],
    state_dim: int | None = None,
) -> WireMessage:
    """Deserialise a wire message, verifying its CRC-32 trailer first.

    Args:
        data: The encoded bytes.
        source_ids: Registered source ids; the header's hash is resolved
            against them (collision-free for realistic deployments; a
            genuine collision raises).  Either a plain id list (linear
            scan, fine at test scale) or a prebuilt hash index from
            :func:`build_source_index` (O(1), required at wire scale).
        state_dim: Required to decode resync messages (the covariance
            triangle's size depends on it).

    Raises:
        CorruptMessageError: When the CRC trailer does not match the body
            (the frame was corrupted in flight; discard it).
        ConfigurationError: On unknown tags, unresolvable source hashes,
            or a resync without ``state_dim``.
    """
    timers = _CODEC_TIMERS
    if timers is None:
        return _decode(data, source_ids, state_dim)
    timers.start("codec.decode")
    try:
        return _decode(data, source_ids, state_dim)
    finally:
        timers.stop("codec.decode")


def _decode(
    data: bytes,
    source_ids: list[str] | dict[int, str],
    state_dim: int | None = None,
) -> WireMessage:
    if len(data) < 13 + CRC_BYTES:
        raise ConfigurationError("message shorter than the fixed header")
    frame, trailer = data[:-CRC_BYTES], data[-CRC_BYTES:]
    (crc,) = struct.unpack("!I", trailer)
    if crc != (zlib.crc32(frame) & 0xFFFFFFFF):
        raise CorruptMessageError(
            f"CRC mismatch: trailer {crc:#010x}, "
            f"computed {zlib.crc32(frame) & 0xFFFFFFFF:#010x}"
        )
    tag, source_hash, seq, k = struct.unpack("!BIII", frame[:13])

    if isinstance(source_ids, dict):
        source_id = source_ids.get(source_hash)
        if source_id is None:
            raise ConfigurationError(
                f"source hash {source_hash:#x} resolves to 0 ids"
            )
    else:
        matches = [s for s in source_ids if _source_hash(s) == source_hash]
        if len(matches) != 1:
            raise ConfigurationError(
                f"source hash {source_hash:#x} resolves to {len(matches)} ids"
            )
        source_id = matches[0]
    body = frame[13:]

    if tag == _TAG_UPDATE:
        values = np.array(struct.unpack(f"!{len(body) // 8}d", body))
        return UpdateMessage(source_id=source_id, seq=seq, k=k, value=values)
    if tag == _TAG_UPDATE_DIGEST:
        m = (len(body) - 8) // 8
        parts = struct.unpack(f"!{m}d8s", body)
        return UpdateMessage(
            source_id=source_id,
            seq=seq,
            k=k,
            value=np.array(parts[:m]),
            digest=parts[m],
        )
    if tag == _TAG_RESYNC:
        if state_dim is None:
            raise ConfigurationError("decoding a resync requires state_dim")
        n = state_dim
        tri = n * (n + 1) // 2
        total = len(body) // 8
        m = total - n - tri
        if m < 1:
            raise ConfigurationError("resync body too short for state_dim")
        parts = struct.unpack(f"!{total}d", body)
        x = np.array(parts[:n])
        p = np.zeros((n, n))
        p[np.triu_indices(n)] = parts[n : n + tri]
        p = p + np.triu(p, 1).T  # Restore symmetry from the triangle.
        value = np.array(parts[n + tri :])
        return ResyncMessage(
            source_id=source_id, seq=seq, k=k, x=x, p=p, value=value
        )
    if tag == _TAG_ACK:
        (flags,) = struct.unpack("!B", body)
        return AckMessage(
            source_id=source_id,
            seq=seq,
            k=k,
            resync_requested=bool(flags & 1),
        )
    if tag == _TAG_HEARTBEAT:
        if body:
            raise ConfigurationError("heartbeat carries no payload")
        return HeartbeatMessage(source_id=source_id, seq=seq, k=k)
    raise ConfigurationError(f"unknown message tag {tag:#x}")


__all__ += ["encode_message", "decode_message", "CRC_BYTES"]
