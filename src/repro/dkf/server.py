"""Central-server side of the DKF protocol (``KF_s`` per source).

The server runs one Kalman filter per registered source (Section 3.1: "at
the main server we have as many filters running as the number of remote
sources").  Every sampling instant the filter advances one prediction step;
when an update message arrives the filter is corrected with the transmitted
value.  Queries are answered from the filter's current estimate -- the
*dynamic procedure cache* the paper contrasts with static value caching.

Two delivery disciplines are supported:

* **strict** (default): any sequence gap or digest mismatch raises
  :class:`~repro.errors.MirrorDesyncError`.  This is the right mode for
  in-process sessions and tests, where a gap is a bug.
* **tolerant** (``strict=False``): gaps and duplicate retransmits are
  *expected* consequences of a lossy link.  The server records them,
  refuses to apply the unsafe correction, and requests a resync through
  its ack outbox instead of raising into the delivery loop.

With ``emit_acks=True`` the server queues a cumulative
:class:`~repro.dkf.protocol.AckMessage` for every applied update/resync
(and for ignored duplicates, so the sender can settle its pending buffer);
the transport layer drains the outbox with :meth:`DKFServer.take_outbox`.
The server also tracks per-source liveness: every received message
(including heartbeats) refreshes a last-contact clock, and a source silent
past its policy's ``suspect_after_ticks`` is marked suspect so query
answers can degrade honestly instead of serving stale estimates as fresh.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.errors import (
    DuplicateSourceError,
    MirrorDesyncError,
    UnknownSourceError,
)
from repro.filters.kalman import KalmanFilter
from repro.obs.events import trace_id
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["DKFServer", "ServerSourceState"]


@dataclass
class ServerSourceState:
    """Per-source state held by the server.

    Attributes:
        config: The installed DKF configuration.
        transport: Liveness policy (silence deadline) for this source.
        filter: ``KF_s`` (None until the priming update arrives).
        answer: The server's current best value for the source.
        expected_seq: Next sequence number expected from the source.
        k: Last sampling instant the filter advanced to.
        updates_received: Number of update messages applied.
        resyncs_received: Number of resync snapshots applied.
        heartbeats_received: Liveness beacons received.
        gaps_detected: Sequence gaps observed (tolerant mode only).
        duplicates_ignored: Stale retransmits discarded.
        rejected_nonfinite: Messages refused because their payload
            carried NaN/Inf values (never applied to the filter).
        last_contact: Server clock at the last received message.
        desynced: True between a detected gap/digest mismatch and the
            healing resync.
        last_nis: Normalised innovation squared of the last applied
            update (health tracking only; None otherwise).
        nis_window: Sliding window of recent NIS values feeding the
            divergence watchdog (None unless health tracking is on).
    """

    config: DKFConfig
    transport: TransportPolicy = field(default_factory=TransportPolicy)
    filter: KalmanFilter | None = None
    answer: np.ndarray | None = None
    expected_seq: int = 0
    k: int = -1
    updates_received: int = 0
    resyncs_received: int = 0
    heartbeats_received: int = 0
    gaps_detected: int = 0
    duplicates_ignored: int = 0
    rejected_nonfinite: int = 0
    last_contact: int = 0
    desynced: bool = field(default=False)
    last_nis: float | None = None
    nis_window: deque[float] | None = None


class DKFServer:
    """Central server holding one ``KF_s`` per registered source.

    Args:
        strict: When True (default) sequence gaps and digest mismatches
            raise :class:`~repro.errors.MirrorDesyncError`; when False
            they are tolerated and a resync is requested via the ack
            outbox.
        emit_acks: When True, every received update/resync (and ignored
            duplicate) queues a cumulative ack in the outbox for the
            transport layer to deliver back to the source.
        telemetry: Optional :class:`~repro.obs.telemetry.Telemetry`; the
            default no-op handle leaves apply/ack behaviour untouched.
        track_health: When True, every applied update additionally
            records its normalised innovation squared (NIS) in a bounded
            per-source window for the divergence watchdog.  Off by
            default so unwatched servers pay nothing.
        nis_window: Sliding-window length for the NIS health signal.
    """

    def __init__(
        self,
        strict: bool = True,
        emit_acks: bool = False,
        telemetry=None,
        track_health: bool = False,
        nis_window: int = 16,
    ) -> None:
        self._sources: dict[str, ServerSourceState] = {}
        self._strict = strict
        self._emit_acks = emit_acks
        self._tel = telemetry or NULL_TELEMETRY
        self._outbox: list[AckMessage] = []
        self._clock = 0
        self._track_health = track_health
        self._nis_window = nis_window

    def register(
        self,
        source_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
    ) -> None:
        """Install a DKF for a new source (done when a query arrives)."""
        if source_id in self._sources:
            raise DuplicateSourceError(f"source {source_id!r} already registered")
        self._sources[source_id] = ServerSourceState(
            config=config,
            transport=transport or TransportPolicy(),
            last_contact=self._clock,
            nis_window=(
                deque(maxlen=self._nis_window) if self._track_health else None
            ),
        )

    def deregister(self, source_id: str) -> None:
        """Tear down the filter for a source whose queries ended.

        Every trace of the source is purged: its filter state, any of
        its acks still queued in the outbox (a late-delivered ack for a
        dead stream would confuse a reused source id), and its telemetry
        gauges (a point-in-time gauge for a gone stream is stale
        telemetry; lifetime counters and histograms are kept -- they
        remain true).
        """
        self._state(source_id)
        del self._sources[source_id]
        self._outbox = [a for a in self._outbox if a.source_id != source_id]
        if self._tel.enabled:
            self._tel.clear_source(source_id)

    def _state(self, source_id: str) -> ServerSourceState:
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(f"source {source_id!r} not registered") from None

    @property
    def source_ids(self) -> list[str]:
        """Identifiers of all registered sources."""
        return list(self._sources)

    @property
    def clock(self) -> int:
        """The server's wall clock (engine ticks); drives liveness."""
        return self._clock

    def advance_clock(self, tick: int) -> None:
        """Move the liveness clock forward (monotonic; called per tick)."""
        if tick > self._clock:
            self._clock = tick

    def is_primed(self, source_id: str) -> bool:
        """Whether the priming update for ``source_id`` has arrived."""
        return self._state(source_id).filter is not None

    def tick(self, source_id: str, k: int) -> np.ndarray | None:
        """Advance the source's filter one prediction step for instant ``k``.

        Returns the new predicted value (the server's answer if no update
        arrives for this instant), or None when the source is not yet
        primed.
        """
        state = self._state(source_id)
        state.k = k
        if state.filter is None:
            return None
        state.filter.predict()
        state.answer = state.filter.predict_measurement()
        return state.answer.copy()

    def receive(
        self, message: UpdateMessage | ResyncMessage | HeartbeatMessage
    ) -> np.ndarray | None:
        """Apply an incoming message; returns the refreshed answer.

        Heartbeats only refresh the liveness clock and return the current
        answer (None before priming).  In tolerant mode an out-of-sequence
        update is *not* applied; the return value is then the unchanged
        answer.
        """
        if isinstance(message, HeartbeatMessage):
            return self._receive_heartbeat(message)
        if isinstance(message, ResyncMessage):
            return self._receive_resync(message)
        return self._receive_update(message)

    def _touch(self, state: ServerSourceState) -> None:
        state.last_contact = self._clock

    def _enqueue_ack(
        self, state: ServerSourceState, source_id: str, resync_requested: bool = False
    ) -> None:
        if not self._emit_acks:
            return
        self._outbox.append(
            AckMessage(
                source_id=source_id,
                seq=state.expected_seq,
                k=self._clock,
                resync_requested=resync_requested,
            )
        )

    def _receive_heartbeat(self, message: HeartbeatMessage) -> np.ndarray | None:
        state = self._state(message.source_id)
        self._touch(state)
        state.heartbeats_received += 1
        if self._tel.enabled:
            self._tel.emit(
                "server.heartbeat", source_id=message.source_id, k=message.k
            )
        return None if state.answer is None else state.answer.copy()

    def _reject_nonfinite(
        self, state: ServerSourceState, message: UpdateMessage | ResyncMessage
    ) -> np.ndarray | None:
        """Refuse a message whose payload carries NaN/Inf.

        The frame is treated as if it never arrived -- ``expected_seq``
        does not advance -- and the ack carries a resync request so the
        (sane) mirror state overwrites whatever the sender thought it
        was reporting.  No non-finite value ever reaches the filter or
        the cached answer.
        """
        state.rejected_nonfinite += 1
        if self._tel.enabled:
            self._tel.emit(
                "server.rejected",
                source_id=message.source_id,
                trace=trace_id(message.source_id, message.seq),
                k=message.k,
            )
            self._tel.count("server_rejected_total", message.source_id)
        self._enqueue_ack(state, message.source_id, resync_requested=True)
        return None if state.answer is None else state.answer.copy()

    def _observe_nis(
        self, state: ServerSourceState, value: np.ndarray
    ) -> None:
        """Record the normalised innovation squared of an incoming update.

        Computed against the *pre-correction* filter (the textbook NIS:
        ``y^T S^-1 y`` with ``y = z - H x^-``), whose expectation under a
        healthy filter is the measurement dimension.  A runaway NIS is
        the watchdog's earliest divergence signal.
        """
        if not self._track_health or state.filter is None:
            return
        innovation = value - state.filter.predict_measurement()
        s = state.filter.innovation_covariance()
        try:
            nis = float(innovation @ np.linalg.solve(s, innovation))
        except np.linalg.LinAlgError:
            nis = float("inf")
        state.last_nis = nis
        state.nis_window.append(nis)

    def _receive_update(self, message: UpdateMessage) -> np.ndarray | None:
        state = self._state(message.source_id)
        self._touch(state)
        if not bool(np.all(np.isfinite(message.value))):
            return self._reject_nonfinite(state, message)
        if message.seq < state.expected_seq:
            if self._strict:
                raise MirrorDesyncError(
                    f"source {message.source_id!r}: expected seq "
                    f"{state.expected_seq}, got stale seq {message.seq}"
                )
            # A stale retransmit that crossed with its ack: ignore, but
            # re-ack so the sender can settle its pending buffer.
            state.duplicates_ignored += 1
            if self._tel.enabled:
                self._tel.emit(
                    "server.duplicate",
                    source_id=message.source_id,
                    trace=trace_id(message.source_id, message.seq),
                    expected_seq=state.expected_seq,
                )
                self._tel.count("server_duplicates_total", message.source_id)
            self._enqueue_ack(state, message.source_id)
            return None if state.answer is None else state.answer.copy()
        if message.seq > state.expected_seq:
            # A gap: an earlier update is missing, so applying this
            # correction would desync the filters.  Record the gap and ask
            # for a full snapshot instead of raising into delivery.
            state.desynced = True
            state.gaps_detected += 1
            if self._strict:
                raise MirrorDesyncError(
                    f"source {message.source_id!r}: expected seq "
                    f"{state.expected_seq}, got {message.seq} -- an update "
                    "was lost and no resync arrived"
                )
            if self._tel.enabled:
                self._tel.emit(
                    "server.gap",
                    source_id=message.source_id,
                    trace=trace_id(message.source_id, message.seq),
                    expected_seq=state.expected_seq,
                    got_seq=message.seq,
                )
                self._tel.count("server_gaps_total", message.source_id)
            self._enqueue_ack(state, message.source_id, resync_requested=True)
            return None if state.answer is None else state.answer.copy()
        state.expected_seq = message.seq + 1
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
            if self._tel.enabled:
                state.filter.instrument(self._tel.timers)
        else:
            self._observe_nis(state, message.value)
            state.filter.update(message.value)
        # The server now holds the true (possibly smoothed) reading, which
        # is a strictly better answer for this instant than the blended
        # posterior; the filter keeps the posterior for future prediction.
        state.answer = message.value.copy()
        state.updates_received += 1
        state.k = message.k
        if self._tel.enabled:
            self._tel.emit(
                "server.apply",
                source_id=message.source_id,
                trace=trace_id(message.source_id, message.seq),
                k=message.k,
            )
            self._tel.count("server_applies_total", message.source_id)
        if message.digest is not None:
            local = state.filter.state_digest()[1][:8]
            if local != message.digest:
                state.desynced = True
                if self._strict:
                    raise MirrorDesyncError(
                        f"source {message.source_id!r}: state digest mismatch "
                        f"at k={message.k}"
                    )
                if self._tel.enabled:
                    self._tel.emit(
                        "server.desync",
                        source_id=message.source_id,
                        trace=trace_id(message.source_id, message.seq),
                        k=message.k,
                    )
                self._enqueue_ack(state, message.source_id, resync_requested=True)
                return state.answer.copy()
        self._enqueue_ack(state, message.source_id)
        return state.answer.copy()

    def _receive_resync(self, message: ResyncMessage) -> np.ndarray | None:
        state = self._state(message.source_id)
        self._touch(state)
        if not bool(
            np.all(np.isfinite(message.x))
            and np.all(np.isfinite(message.p))
            and np.all(np.isfinite(message.value))
        ):
            return self._reject_nonfinite(state, message)
        healed = state.desynced
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
            if self._tel.enabled:
                state.filter.instrument(self._tel.timers)
        state.filter.set_state(message.x, message.p)
        state.answer = message.value.copy()
        state.expected_seq = message.seq + 1
        state.resyncs_received += 1
        state.desynced = False
        state.k = message.k
        if state.nis_window is not None:
            # The snapshot replaced the filter state wholesale; stale NIS
            # samples would describe a filter that no longer exists.
            state.nis_window.clear()
            state.last_nis = None
        if self._tel.enabled:
            self._tel.emit(
                "server.resync_applied",
                source_id=message.source_id,
                trace=trace_id(message.source_id, message.seq),
                k=message.k,
                healed_desync=healed,
            )
            self._tel.count("server_resyncs_total", message.source_id)
        self._enqueue_ack(state, message.source_id)
        return state.answer.copy()

    def take_outbox(self) -> list[AckMessage]:
        """Drain and return the queued acks (transport layer hook)."""
        out, self._outbox = self._outbox, []
        return out

    def liveness(self, source_id: str) -> dict[str, int | bool]:
        """Liveness verdict for one source.

        Returns a dict with ``staleness_ticks`` (server-clock ticks since
        the last received message of any kind), ``suspect`` (True once the
        silence exceeds the source's ``suspect_after_ticks`` deadline) and
        ``last_contact``.
        """
        state = self._state(source_id)
        staleness = max(0, self._clock - state.last_contact)
        return {
            "staleness_ticks": staleness,
            "suspect": staleness > state.transport.suspect_after_ticks,
            "last_contact": state.last_contact,
        }

    def confidence(self, source_id: str) -> float:
        """Answer confidence in ``(0, 1]`` from the coasting covariance.

        While a source is silent the filter coasts on predictions and its
        a-priori covariance inflates; this maps the predicted-measurement
        standard deviation onto ``delta / (delta + sigma)`` so a freshly
        corrected filter scores near 1 and a long-coasting one decays
        toward 0.  Returns 0.0 before priming.
        """
        state = self._state(source_id)
        if state.filter is None:
            return 0.0
        innovation_cov = state.filter.innovation_covariance()
        sigma = float(np.sqrt(max(np.max(np.diag(innovation_cov)), 0.0)))
        delta = state.config.min_delta
        return delta / (delta + sigma)

    def value(self, source_id: str) -> np.ndarray:
        """The server's current best value for a source (query answer)."""
        state = self._state(source_id)
        if state.answer is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.answer.copy()

    def forecast(self, source_id: str, steps: int) -> np.ndarray:
        """Extrapolate a source's value ``steps`` instants ahead.

        This is the capability static caching fundamentally lacks: the
        server can answer questions about the *future* of the stream from
        the cached procedure alone.
        """
        state = self._state(source_id)
        if state.filter is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.filter.forecast(steps)

    def predict_k(self, source_id: str, steps: int) -> np.ndarray:
        """Measurement prediction ``steps`` instants ahead (endpoint only).

        The cheap form of :meth:`forecast` for δ checks: constant-model
        filters jump straight to ``H phi^steps x`` through the memoised
        power cache instead of looping the whole horizon.
        """
        state = self._state(source_id)
        if state.filter is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.filter.predict_k(steps)

    def stats(self, source_id: str) -> dict[str, int | bool]:
        """Per-source protocol counters (for the engine's reporting)."""
        state = self._state(source_id)
        return {
            "updates_received": state.updates_received,
            "resyncs_received": state.resyncs_received,
            "heartbeats_received": state.heartbeats_received,
            "gaps_detected": state.gaps_detected,
            "duplicates_ignored": state.duplicates_ignored,
            "rejected_nonfinite": state.rejected_nonfinite,
            "desynced": state.desynced,
            "last_k": state.k,
            "last_contact": state.last_contact,
            "expected_seq": state.expected_seq,
        }

    # Health and recovery hooks -------------------------------------------

    def health_view(self, source_id: str) -> dict[str, object]:
        """Raw material for a watchdog health check (live references).

        Returns ``x``/``p`` (copies; None before priming), the NIS
        window as a list, and ``staleness_ticks``.
        """
        state = self._state(source_id)
        return {
            "x": None if state.filter is None else state.filter.x,
            "p": None if state.filter is None else state.filter.p,
            "nis_window": list(state.nis_window or ()),
            "staleness_ticks": max(0, self._clock - state.last_contact),
        }

    def filter_clock(self, source_id: str) -> int:
        """The source filter's discrete clock (-1 before priming).

        Recovery compares this against the mirror's clock to decide how
        many catch-up prediction steps a restored filter needs.
        """
        state = self._state(source_id)
        return -1 if state.filter is None else state.filter.k

    def reprime(self, source_id: str) -> None:
        """Re-prime a suspect filter: fresh covariance, sane state.

        The watchdog's second escalation rung.  When the state vector is
        still finite the covariance is reset to the configured ``P0``
        (the estimate survives, but its confidence restarts from scratch
        so the next updates dominate).  A non-finite state is rebuilt
        from the last finite answer (or zeros) -- the subsequent forced
        resync then overwrites it with the mirror's truth.
        """
        state = self._state(source_id)
        if state.filter is None:
            return
        model = state.config.model
        p0 = np.eye(model.state_dim) * state.config.p0_scale
        x = state.filter.x
        if bool(np.all(np.isfinite(x))):
            state.filter.set_state(x, p0)
        else:
            if state.answer is not None and bool(
                np.all(np.isfinite(state.answer))
            ):
                z0 = np.asarray(state.answer, dtype=float)
            else:
                z0 = np.zeros(model.measurement_dim)
            clock = state.filter.k
            state.filter = model.build_filter(
                z0, p0_scale=state.config.p0_scale
            )
            state.filter.set_clock(clock)
            if self._tel.enabled:
                state.filter.instrument(self._tel.timers)
            if state.answer is None or not bool(
                np.all(np.isfinite(state.answer))
            ):
                state.answer = state.filter.predict_measurement()
        if state.nis_window is not None:
            state.nis_window.clear()
            state.last_nis = None

    def export_source_state(self, source_id: str) -> dict[str, object]:
        """Checkpoint-friendly snapshot of one source's full state.

        Everything :meth:`import_source_state` needs to rebuild the
        ``ServerSourceState`` bit-for-bit: protocol counters, sequence
        expectations, the cached answer, and the filter's ``(x, P, k)``.
        JSON-serialisable (ndarrays become nested lists).
        """
        state = self._state(source_id)
        return {
            "expected_seq": state.expected_seq,
            "k": state.k,
            "last_contact": state.last_contact,
            "updates_received": state.updates_received,
            "resyncs_received": state.resyncs_received,
            "heartbeats_received": state.heartbeats_received,
            "gaps_detected": state.gaps_detected,
            "duplicates_ignored": state.duplicates_ignored,
            "rejected_nonfinite": state.rejected_nonfinite,
            "desynced": bool(state.desynced),
            "answer": (
                None if state.answer is None else state.answer.tolist()
            ),
            "filter": (
                None
                if state.filter is None
                else {
                    "x": state.filter.x.tolist(),
                    "p": state.filter.p.tolist(),
                    "k": state.filter.k,
                }
            ),
        }

    def import_source_state(
        self, source_id: str, data: dict[str, object]
    ) -> None:
        """Restore a source's state from :meth:`export_source_state` output.

        The source must already be registered (recovery re-registers
        from the engine's configs first); this overwrites the fresh
        state with the checkpointed one, rebuilding the filter at its
        checkpointed clock so time-varying models resume exactly.
        """
        state = self._state(source_id)
        try:
            state.expected_seq = int(data["expected_seq"])
            state.k = int(data["k"])
            state.last_contact = int(data["last_contact"])
            state.updates_received = int(data["updates_received"])
            state.resyncs_received = int(data["resyncs_received"])
            state.heartbeats_received = int(data["heartbeats_received"])
            state.gaps_detected = int(data["gaps_detected"])
            state.duplicates_ignored = int(data["duplicates_ignored"])
            state.rejected_nonfinite = int(data.get("rejected_nonfinite", 0))
            state.desynced = bool(data["desynced"])
            answer = data["answer"]
            state.answer = (
                None if answer is None else np.asarray(answer, dtype=float)
            )
            filter_state = data["filter"]
        except (KeyError, TypeError, ValueError) as exc:
            raise MirrorDesyncError(
                f"malformed checkpoint state for source {source_id!r}: {exc}"
            ) from None
        if filter_state is None:
            state.filter = None
            return
        model = state.config.model
        flt = model.build_filter(
            np.zeros(model.measurement_dim), p0_scale=state.config.p0_scale
        )
        flt.set_state(
            np.asarray(filter_state["x"], dtype=float),
            np.asarray(filter_state["p"], dtype=float),
        )
        flt.set_clock(int(filter_state["k"]))
        if self._tel.enabled:
            flt.instrument(self._tel.timers)
        state.filter = flt
