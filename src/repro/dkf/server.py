"""Central-server side of the DKF protocol (``KF_s`` per source).

The server runs one Kalman filter per registered source (Section 3.1: "at
the main server we have as many filters running as the number of remote
sources").  Every sampling instant the filter advances one prediction step;
when an update message arrives the filter is corrected with the transmitted
value.  Queries are answered from the filter's current estimate -- the
*dynamic procedure cache* the paper contrasts with static value caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import ResyncMessage, UpdateMessage
from repro.errors import (
    DuplicateSourceError,
    MirrorDesyncError,
    UnknownSourceError,
)
from repro.filters.kalman import KalmanFilter

__all__ = ["DKFServer", "ServerSourceState"]


@dataclass
class ServerSourceState:
    """Per-source state held by the server.

    Attributes:
        config: The installed DKF configuration.
        filter: ``KF_s`` (None until the priming update arrives).
        answer: The server's current best value for the source.
        expected_seq: Next sequence number expected from the source.
        k: Last sampling instant the filter advanced to.
        updates_received: Number of update messages applied.
        resyncs_received: Number of resync snapshots applied.
    """

    config: DKFConfig
    filter: KalmanFilter | None = None
    answer: np.ndarray | None = None
    expected_seq: int = 0
    k: int = -1
    updates_received: int = 0
    resyncs_received: int = 0
    desynced: bool = field(default=False)


class DKFServer:
    """Central server holding one ``KF_s`` per registered source."""

    def __init__(self) -> None:
        self._sources: dict[str, ServerSourceState] = {}

    def register(self, source_id: str, config: DKFConfig) -> None:
        """Install a DKF for a new source (done when a query arrives)."""
        if source_id in self._sources:
            raise DuplicateSourceError(f"source {source_id!r} already registered")
        self._sources[source_id] = ServerSourceState(config=config)

    def deregister(self, source_id: str) -> None:
        """Tear down the filter for a source whose queries ended."""
        self._state(source_id)
        del self._sources[source_id]

    def _state(self, source_id: str) -> ServerSourceState:
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(f"source {source_id!r} not registered") from None

    @property
    def source_ids(self) -> list[str]:
        """Identifiers of all registered sources."""
        return list(self._sources)

    def is_primed(self, source_id: str) -> bool:
        """Whether the priming update for ``source_id`` has arrived."""
        return self._state(source_id).filter is not None

    def tick(self, source_id: str, k: int) -> np.ndarray | None:
        """Advance the source's filter one prediction step for instant ``k``.

        Returns the new predicted value (the server's answer if no update
        arrives for this instant), or None when the source is not yet
        primed.
        """
        state = self._state(source_id)
        state.k = k
        if state.filter is None:
            return None
        state.filter.predict()
        state.answer = state.filter.predict_measurement()
        return state.answer.copy()

    def receive(self, message: UpdateMessage | ResyncMessage) -> np.ndarray:
        """Apply an incoming message and return the refreshed answer."""
        if isinstance(message, ResyncMessage):
            return self._receive_resync(message)
        return self._receive_update(message)

    def _receive_update(self, message: UpdateMessage) -> np.ndarray:
        state = self._state(message.source_id)
        if message.seq != state.expected_seq:
            state.desynced = True
            raise MirrorDesyncError(
                f"source {message.source_id!r}: expected seq "
                f"{state.expected_seq}, got {message.seq} -- an update was "
                "lost and no resync arrived"
            )
        state.expected_seq = message.seq + 1
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
        else:
            state.filter.update(message.value)
        # The server now holds the true (possibly smoothed) reading, which
        # is a strictly better answer for this instant than the blended
        # posterior; the filter keeps the posterior for future prediction.
        state.answer = message.value.copy()
        state.updates_received += 1
        state.k = message.k
        if message.digest is not None:
            local = state.filter.state_digest()[1][:8]
            if local != message.digest:
                state.desynced = True
                raise MirrorDesyncError(
                    f"source {message.source_id!r}: state digest mismatch at "
                    f"k={message.k}"
                )
        return state.answer.copy()

    def _receive_resync(self, message: ResyncMessage) -> np.ndarray:
        state = self._state(message.source_id)
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
        state.filter.set_state(message.x, message.p)
        state.answer = message.value.copy()
        state.expected_seq = message.seq + 1
        state.resyncs_received += 1
        state.desynced = False
        state.k = message.k
        return state.answer.copy()

    def value(self, source_id: str) -> np.ndarray:
        """The server's current best value for a source (query answer)."""
        state = self._state(source_id)
        if state.answer is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.answer.copy()

    def forecast(self, source_id: str, steps: int) -> np.ndarray:
        """Extrapolate a source's value ``steps`` instants ahead.

        This is the capability static caching fundamentally lacks: the
        server can answer questions about the *future* of the stream from
        the cached procedure alone.
        """
        state = self._state(source_id)
        if state.filter is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.filter.forecast(steps)

    def stats(self, source_id: str) -> dict[str, int | bool]:
        """Per-source protocol counters (for the engine's reporting)."""
        state = self._state(source_id)
        return {
            "updates_received": state.updates_received,
            "resyncs_received": state.resyncs_received,
            "desynced": state.desynced,
            "last_k": state.k,
        }
