"""Central-server side of the DKF protocol (``KF_s`` per source).

The server runs one Kalman filter per registered source (Section 3.1: "at
the main server we have as many filters running as the number of remote
sources").  Every sampling instant the filter advances one prediction step;
when an update message arrives the filter is corrected with the transmitted
value.  Queries are answered from the filter's current estimate -- the
*dynamic procedure cache* the paper contrasts with static value caching.

Two delivery disciplines are supported:

* **strict** (default): any sequence gap or digest mismatch raises
  :class:`~repro.errors.MirrorDesyncError`.  This is the right mode for
  in-process sessions and tests, where a gap is a bug.
* **tolerant** (``strict=False``): gaps and duplicate retransmits are
  *expected* consequences of a lossy link.  The server records them,
  refuses to apply the unsafe correction, and requests a resync through
  its ack outbox instead of raising into the delivery loop.

With ``emit_acks=True`` the server queues a cumulative
:class:`~repro.dkf.protocol.AckMessage` for every applied update/resync
(and for ignored duplicates, so the sender can settle its pending buffer);
the transport layer drains the outbox with :meth:`DKFServer.take_outbox`.
The server also tracks per-source liveness: every received message
(including heartbeats) refreshes a last-contact clock, and a source silent
past its policy's ``suspect_after_ticks`` is marked suspect so query
answers can degrade honestly instead of serving stale estimates as fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.errors import (
    DuplicateSourceError,
    MirrorDesyncError,
    UnknownSourceError,
)
from repro.filters.kalman import KalmanFilter
from repro.obs.events import trace_id
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["DKFServer", "ServerSourceState"]


@dataclass
class ServerSourceState:
    """Per-source state held by the server.

    Attributes:
        config: The installed DKF configuration.
        transport: Liveness policy (silence deadline) for this source.
        filter: ``KF_s`` (None until the priming update arrives).
        answer: The server's current best value for the source.
        expected_seq: Next sequence number expected from the source.
        k: Last sampling instant the filter advanced to.
        updates_received: Number of update messages applied.
        resyncs_received: Number of resync snapshots applied.
        heartbeats_received: Liveness beacons received.
        gaps_detected: Sequence gaps observed (tolerant mode only).
        duplicates_ignored: Stale retransmits discarded.
        last_contact: Server clock at the last received message.
        desynced: True between a detected gap/digest mismatch and the
            healing resync.
    """

    config: DKFConfig
    transport: TransportPolicy = field(default_factory=TransportPolicy)
    filter: KalmanFilter | None = None
    answer: np.ndarray | None = None
    expected_seq: int = 0
    k: int = -1
    updates_received: int = 0
    resyncs_received: int = 0
    heartbeats_received: int = 0
    gaps_detected: int = 0
    duplicates_ignored: int = 0
    last_contact: int = 0
    desynced: bool = field(default=False)


class DKFServer:
    """Central server holding one ``KF_s`` per registered source.

    Args:
        strict: When True (default) sequence gaps and digest mismatches
            raise :class:`~repro.errors.MirrorDesyncError`; when False
            they are tolerated and a resync is requested via the ack
            outbox.
        emit_acks: When True, every received update/resync (and ignored
            duplicate) queues a cumulative ack in the outbox for the
            transport layer to deliver back to the source.
        telemetry: Optional :class:`~repro.obs.telemetry.Telemetry`; the
            default no-op handle leaves apply/ack behaviour untouched.
    """

    def __init__(
        self, strict: bool = True, emit_acks: bool = False, telemetry=None
    ) -> None:
        self._sources: dict[str, ServerSourceState] = {}
        self._strict = strict
        self._emit_acks = emit_acks
        self._tel = telemetry or NULL_TELEMETRY
        self._outbox: list[AckMessage] = []
        self._clock = 0

    def register(
        self,
        source_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
    ) -> None:
        """Install a DKF for a new source (done when a query arrives)."""
        if source_id in self._sources:
            raise DuplicateSourceError(f"source {source_id!r} already registered")
        self._sources[source_id] = ServerSourceState(
            config=config,
            transport=transport or TransportPolicy(),
            last_contact=self._clock,
        )

    def deregister(self, source_id: str) -> None:
        """Tear down the filter for a source whose queries ended."""
        self._state(source_id)
        del self._sources[source_id]
        self._outbox = [a for a in self._outbox if a.source_id != source_id]

    def _state(self, source_id: str) -> ServerSourceState:
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(f"source {source_id!r} not registered") from None

    @property
    def source_ids(self) -> list[str]:
        """Identifiers of all registered sources."""
        return list(self._sources)

    @property
    def clock(self) -> int:
        """The server's wall clock (engine ticks); drives liveness."""
        return self._clock

    def advance_clock(self, tick: int) -> None:
        """Move the liveness clock forward (monotonic; called per tick)."""
        if tick > self._clock:
            self._clock = tick

    def is_primed(self, source_id: str) -> bool:
        """Whether the priming update for ``source_id`` has arrived."""
        return self._state(source_id).filter is not None

    def tick(self, source_id: str, k: int) -> np.ndarray | None:
        """Advance the source's filter one prediction step for instant ``k``.

        Returns the new predicted value (the server's answer if no update
        arrives for this instant), or None when the source is not yet
        primed.
        """
        state = self._state(source_id)
        state.k = k
        if state.filter is None:
            return None
        state.filter.predict()
        state.answer = state.filter.predict_measurement()
        return state.answer.copy()

    def receive(
        self, message: UpdateMessage | ResyncMessage | HeartbeatMessage
    ) -> np.ndarray | None:
        """Apply an incoming message; returns the refreshed answer.

        Heartbeats only refresh the liveness clock and return the current
        answer (None before priming).  In tolerant mode an out-of-sequence
        update is *not* applied; the return value is then the unchanged
        answer.
        """
        if isinstance(message, HeartbeatMessage):
            return self._receive_heartbeat(message)
        if isinstance(message, ResyncMessage):
            return self._receive_resync(message)
        return self._receive_update(message)

    def _touch(self, state: ServerSourceState) -> None:
        state.last_contact = self._clock

    def _enqueue_ack(
        self, state: ServerSourceState, source_id: str, resync_requested: bool = False
    ) -> None:
        if not self._emit_acks:
            return
        self._outbox.append(
            AckMessage(
                source_id=source_id,
                seq=state.expected_seq,
                k=self._clock,
                resync_requested=resync_requested,
            )
        )

    def _receive_heartbeat(self, message: HeartbeatMessage) -> np.ndarray | None:
        state = self._state(message.source_id)
        self._touch(state)
        state.heartbeats_received += 1
        if self._tel.enabled:
            self._tel.emit(
                "server.heartbeat", source_id=message.source_id, k=message.k
            )
        return None if state.answer is None else state.answer.copy()

    def _receive_update(self, message: UpdateMessage) -> np.ndarray | None:
        state = self._state(message.source_id)
        self._touch(state)
        if message.seq < state.expected_seq:
            if self._strict:
                raise MirrorDesyncError(
                    f"source {message.source_id!r}: expected seq "
                    f"{state.expected_seq}, got stale seq {message.seq}"
                )
            # A stale retransmit that crossed with its ack: ignore, but
            # re-ack so the sender can settle its pending buffer.
            state.duplicates_ignored += 1
            if self._tel.enabled:
                self._tel.emit(
                    "server.duplicate",
                    source_id=message.source_id,
                    trace=trace_id(message.source_id, message.seq),
                    expected_seq=state.expected_seq,
                )
                self._tel.count("server_duplicates_total", message.source_id)
            self._enqueue_ack(state, message.source_id)
            return None if state.answer is None else state.answer.copy()
        if message.seq > state.expected_seq:
            # A gap: an earlier update is missing, so applying this
            # correction would desync the filters.  Record the gap and ask
            # for a full snapshot instead of raising into delivery.
            state.desynced = True
            state.gaps_detected += 1
            if self._strict:
                raise MirrorDesyncError(
                    f"source {message.source_id!r}: expected seq "
                    f"{state.expected_seq}, got {message.seq} -- an update "
                    "was lost and no resync arrived"
                )
            if self._tel.enabled:
                self._tel.emit(
                    "server.gap",
                    source_id=message.source_id,
                    trace=trace_id(message.source_id, message.seq),
                    expected_seq=state.expected_seq,
                    got_seq=message.seq,
                )
                self._tel.count("server_gaps_total", message.source_id)
            self._enqueue_ack(state, message.source_id, resync_requested=True)
            return None if state.answer is None else state.answer.copy()
        state.expected_seq = message.seq + 1
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
            if self._tel.enabled:
                state.filter.instrument(self._tel.timers)
        else:
            state.filter.update(message.value)
        # The server now holds the true (possibly smoothed) reading, which
        # is a strictly better answer for this instant than the blended
        # posterior; the filter keeps the posterior for future prediction.
        state.answer = message.value.copy()
        state.updates_received += 1
        state.k = message.k
        if self._tel.enabled:
            self._tel.emit(
                "server.apply",
                source_id=message.source_id,
                trace=trace_id(message.source_id, message.seq),
                k=message.k,
            )
            self._tel.count("server_applies_total", message.source_id)
        if message.digest is not None:
            local = state.filter.state_digest()[1][:8]
            if local != message.digest:
                state.desynced = True
                if self._strict:
                    raise MirrorDesyncError(
                        f"source {message.source_id!r}: state digest mismatch "
                        f"at k={message.k}"
                    )
                if self._tel.enabled:
                    self._tel.emit(
                        "server.desync",
                        source_id=message.source_id,
                        trace=trace_id(message.source_id, message.seq),
                        k=message.k,
                    )
                self._enqueue_ack(state, message.source_id, resync_requested=True)
                return state.answer.copy()
        self._enqueue_ack(state, message.source_id)
        return state.answer.copy()

    def _receive_resync(self, message: ResyncMessage) -> np.ndarray:
        state = self._state(message.source_id)
        self._touch(state)
        healed = state.desynced
        if state.filter is None:
            state.filter = state.config.model.build_filter(
                message.value, p0_scale=state.config.p0_scale
            )
            if self._tel.enabled:
                state.filter.instrument(self._tel.timers)
        state.filter.set_state(message.x, message.p)
        state.answer = message.value.copy()
        state.expected_seq = message.seq + 1
        state.resyncs_received += 1
        state.desynced = False
        state.k = message.k
        if self._tel.enabled:
            self._tel.emit(
                "server.resync_applied",
                source_id=message.source_id,
                trace=trace_id(message.source_id, message.seq),
                k=message.k,
                healed_desync=healed,
            )
            self._tel.count("server_resyncs_total", message.source_id)
        self._enqueue_ack(state, message.source_id)
        return state.answer.copy()

    def take_outbox(self) -> list[AckMessage]:
        """Drain and return the queued acks (transport layer hook)."""
        out, self._outbox = self._outbox, []
        return out

    def liveness(self, source_id: str) -> dict[str, int | bool]:
        """Liveness verdict for one source.

        Returns a dict with ``staleness_ticks`` (server-clock ticks since
        the last received message of any kind), ``suspect`` (True once the
        silence exceeds the source's ``suspect_after_ticks`` deadline) and
        ``last_contact``.
        """
        state = self._state(source_id)
        staleness = max(0, self._clock - state.last_contact)
        return {
            "staleness_ticks": staleness,
            "suspect": staleness > state.transport.suspect_after_ticks,
            "last_contact": state.last_contact,
        }

    def confidence(self, source_id: str) -> float:
        """Answer confidence in ``(0, 1]`` from the coasting covariance.

        While a source is silent the filter coasts on predictions and its
        a-priori covariance inflates; this maps the predicted-measurement
        standard deviation onto ``delta / (delta + sigma)`` so a freshly
        corrected filter scores near 1 and a long-coasting one decays
        toward 0.  Returns 0.0 before priming.
        """
        state = self._state(source_id)
        if state.filter is None:
            return 0.0
        innovation_cov = state.filter.innovation_covariance()
        sigma = float(np.sqrt(max(np.max(np.diag(innovation_cov)), 0.0)))
        delta = state.config.min_delta
        return delta / (delta + sigma)

    def value(self, source_id: str) -> np.ndarray:
        """The server's current best value for a source (query answer)."""
        state = self._state(source_id)
        if state.answer is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.answer.copy()

    def forecast(self, source_id: str, steps: int) -> np.ndarray:
        """Extrapolate a source's value ``steps`` instants ahead.

        This is the capability static caching fundamentally lacks: the
        server can answer questions about the *future* of the stream from
        the cached procedure alone.
        """
        state = self._state(source_id)
        if state.filter is None:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return state.filter.forecast(steps)

    def stats(self, source_id: str) -> dict[str, int | bool]:
        """Per-source protocol counters (for the engine's reporting)."""
        state = self._state(source_id)
        return {
            "updates_received": state.updates_received,
            "resyncs_received": state.resyncs_received,
            "heartbeats_received": state.heartbeats_received,
            "gaps_detected": state.gaps_detected,
            "duplicates_ignored": state.duplicates_ignored,
            "desynced": state.desynced,
            "last_k": state.k,
            "last_contact": state.last_contact,
        }
