"""Remote-source side of the DKF protocol (``KF_m`` and optional ``KF_c``).

The source runs a *mirror* of the server's filter.  Because the filter
arithmetic is deterministic and both sides apply exactly the same predict /
correct operations, the mirror tells the source what the server will
predict at every instant *without any communication* -- "this does not
require any extra memory except for the usual matrices of the KF"
(Section 1.1).  The source transmits only when that prediction errs by more
than δ on some measured component.

The source also owns the sender half of the fault-tolerant transport: a
pending-ack buffer with timeout-driven, exponentially backed-off
retransmission (a retransmission is always a full
:class:`~repro.dkf.protocol.ResyncMessage`, because the mirror has moved on
since the lost update was cut), plus heartbeat emission during long
suppression silences.  The source never learns of a loss synchronously --
only a missing ack reveals it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.errors import ConfigurationError, DimensionError
from repro.filters.kalman import KalmanFilter
from repro.filters.smoothing import VectorSmoother
from repro.obs.events import trace_id
from repro.obs.telemetry import NULL_TELEMETRY
from repro.streams.base import StreamRecord

__all__ = ["DKFSource", "SourceStep"]


@dataclass(frozen=True)
class SourceStep:
    """What happened at the source during one sampling instant.

    Attributes:
        k: Sampling instant.
        raw_value: The raw sensor reading.
        value: The value the protocol operated on (smoothed when ``KF_c``
            is configured, else the raw reading).
        prediction: The mirror's prediction of the server value, or None
            on the priming step.
        error: Max per-component absolute prediction error, or None on
            the priming step.
        message: The update message produced, or None when suppressed.
        gated: True when the reading escaped δ but was classified as a
            sensor glitch by the innovation gate and deliberately not
            transmitted.
        rejected: True when the reading was non-finite (NaN/inf sensor
            fault) and discarded before touching either filter; the mirror
            still advanced its prediction so lock-step is preserved.
    """

    k: int
    raw_value: np.ndarray
    value: np.ndarray
    prediction: np.ndarray | None
    error: float | None
    message: UpdateMessage | None
    gated: bool = False
    rejected: bool = False


class DKFSource:
    """Sensor-side half of a DKF pair.

    Args:
        source_id: Identifier shared with the server registration.
        config: The DKF configuration (model, δ, optional ``F``).

    Args (continued):
        transport: Retransmission/heartbeat policy.  Defaults to
            :class:`~repro.dkf.config.TransportPolicy`'s defaults.
        telemetry: Optional :class:`~repro.obs.telemetry.Telemetry`; the
            default no-op handle keeps every decision byte-identical to
            an unobserved source.

    Call :meth:`sample` once per sampling instant with the sensor reading.
    If the returned step carries a message, hand it to the link and tell
    the transport via :meth:`note_sent`; each tick, call
    :meth:`poll_transport` and send whatever it returns (timeout
    retransmissions and heartbeats).  Deliver incoming acks to
    :meth:`on_ack`.  The source only ever learns of a loss through a
    missing ack.
    """

    def __init__(
        self,
        source_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
        telemetry=None,
    ) -> None:
        self._source_id = source_id
        self._config = config
        self._transport = transport or TransportPolicy()
        self._tel = telemetry or NULL_TELEMETRY
        self._mirror: KalmanFilter | None = None
        self._smoother = (
            VectorSmoother(
                f=config.smoothing_f,
                dims=config.model.measurement_dim,
                r=config.smoothing_r,
            )
            if config.smoothed
            else None
        )
        self._seq = 0
        self._k = -1
        self._updates_sent = 0
        self._samples_seen = 0
        self._consecutive_gated = 0
        self._readings_gated = 0
        self._readings_rejected = 0
        self._last_value: np.ndarray | None = None
        self._last_update_k: int | None = None
        # Transport state: seq -> (ack deadline, retransmit attempt, sent
        # tick).  The sent tick exists purely for ack-RTT telemetry.
        self._pending: dict[int, tuple[int, int, int]] = {}
        self._resync_requested = False
        # Seqs a server-requested resync supersedes: the cumulative ack
        # that carried the request sweeps the pending buffer (including
        # the frame the server never saw), so they are stashed here for
        # the retransmit event's ``recovers`` field.
        self._resync_gap_seqs: list[int] = []
        self._last_send_tick = 0
        self._retransmits = 0
        self._heartbeats_sent = 0
        # Overload-shedding hook: a scale > 1 widens the effective δ so
        # the source transmits less under server pressure.  1.0 keeps the
        # arithmetic byte-identical to an unscaled source.
        self._delta_scale = 1.0

    @property
    def source_id(self) -> str:
        """Identifier shared with the server registration."""
        return self._source_id

    @property
    def config(self) -> DKFConfig:
        """The installed configuration."""
        return self._config

    @property
    def primed(self) -> bool:
        """Whether the first (always transmitted) reading has been taken."""
        return self._mirror is not None

    @property
    def mirror(self) -> KalmanFilter:
        """The mirror filter ``KF_m`` (live object; tests inspect it)."""
        if self._mirror is None:
            raise DimensionError("source not primed yet")
        return self._mirror

    @property
    def next_seq(self) -> int:
        """Sequence number the next transmitted message will carry.

        The recovery path compares this against the server's expected
        sequence to decide whether a post-restore resync is needed.
        """
        return self._seq

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted so far."""
        return self._updates_sent

    @property
    def samples_seen(self) -> int:
        """Sensor readings processed so far."""
        return self._samples_seen

    @property
    def readings_gated(self) -> int:
        """Readings classified as glitches by the innovation gate."""
        return self._readings_gated

    @property
    def readings_rejected(self) -> int:
        """Non-finite readings discarded before touching the filters."""
        return self._readings_rejected

    @property
    def transport(self) -> TransportPolicy:
        """The installed retransmission/heartbeat policy."""
        return self._transport

    @property
    def pending_acks(self) -> int:
        """Transmitted messages still awaiting an acknowledgement."""
        return len(self._pending)

    @property
    def retransmits(self) -> int:
        """Resync retransmissions triggered (timeouts + server requests)."""
        return self._retransmits

    @property
    def heartbeats_sent(self) -> int:
        """Liveness beacons emitted during suppression silences."""
        return self._heartbeats_sent

    @property
    def delta_scale(self) -> float:
        """Current overload widening factor on the effective δ (>= 1)."""
        return self._delta_scale

    @property
    def effective_min_delta(self) -> float:
        """Tightest per-component width after overload widening."""
        return self._config.min_delta * self._delta_scale

    def set_delta_scale(self, scale: float) -> None:
        """Widen (or restore) the effective δ by ``scale``.

        The supervisor's overload controller calls this to shed load:
        with a wider δ the suppression test passes more often and the
        source transmits less.  The mirror/server lock-step is untouched
        -- δ only gates the *transmission decision*, never the filter
        arithmetic -- so scaling up and back down is always safe.
        """
        if scale < 1.0:
            raise ConfigurationError(
                f"delta scale must be at least 1, got {scale}"
            )
        self._delta_scale = float(scale)

    def _effective_delta_vector(self) -> np.ndarray:
        """Per-component widths after overload widening."""
        widths = self._config.delta_vector()
        if self._delta_scale != 1.0:
            widths = widths * self._delta_scale
        return widths

    def _smooth(self, value: np.ndarray) -> np.ndarray:
        """Run the reading through ``KF_c`` when smoothing is configured.

        Scalar streams use the paper's single smoothing filter; vector
        streams smooth each measured component independently.
        """
        if self._smoother is None:
            return value
        return self._smoother.smooth(value)

    def _next_message(self, k: int, value: np.ndarray) -> UpdateMessage:
        digest = None
        if self._config.check_mirror and self._mirror is not None:
            digest = self._mirror.state_digest()[1][:8]
        message = UpdateMessage(
            source_id=self._source_id,
            seq=self._seq,
            k=k,
            value=value.copy(),
            digest=digest,
        )
        self._seq += 1
        self._updates_sent += 1
        return message

    def sample(self, record: StreamRecord) -> SourceStep:
        """Process one sensor reading; decide whether to transmit.

        The first reading always transmits (it primes both filters).  On
        later readings the mirror advances one prediction step; if its
        measurement prediction errs by more than δ on any component the
        reading is transmitted and the mirror corrected -- exactly the
        operations the server will apply on receipt, keeping the pair in
        lock-step.
        """
        raw = record.value
        self._samples_seen += 1
        self._k = record.k

        if not bool(np.all(np.isfinite(raw))):
            # Sensor fault (NaN/inf): discard the reading before it can
            # poison the smoother or the filters.  The mirror still
            # advances one prediction step so it stays in lock-step with
            # the server, which predicts every instant regardless.
            self._readings_rejected += 1
            prediction = None
            if self._mirror is not None:
                self._mirror.predict()
                prediction = self._mirror.predict_measurement()
            if self._tel.enabled:
                self._tel.emit(
                    "source.rejected", source_id=self._source_id, k=record.k
                )
                self._tel.count("readings_rejected_total", self._source_id)
            return SourceStep(
                k=record.k,
                raw_value=raw.copy(),
                value=raw.copy(),
                prediction=prediction,
                error=None,
                message=None,
                rejected=True,
            )

        value = self._smooth(raw)
        self._last_value = value.copy()

        if self._mirror is None:
            self._mirror = self._config.model.build_filter(
                value, p0_scale=self._config.p0_scale
            )
            message = self._next_message(record.k, value)
            if self._tel.enabled:
                self._mirror.instrument(self._tel.timers)
                self._last_update_k = record.k
                self._tel.emit(
                    "source.update",
                    source_id=self._source_id,
                    trace=trace_id(self._source_id, message.seq),
                    k=record.k,
                    priming=True,
                )
                self._tel.count("updates_sent_total", self._source_id)
            return SourceStep(
                k=record.k,
                raw_value=raw.copy(),
                value=value.copy(),
                prediction=None,
                error=None,
                message=message,
            )

        self._mirror.predict()
        prediction = self._mirror.predict_measurement()
        abs_errors = np.abs(prediction - value)
        error = float(np.max(abs_errors))
        gated = False
        if bool(np.any(abs_errors > self._effective_delta_vector())):
            if self._should_gate(value, prediction):
                # Glitch: skip both the transmission and the correction,
                # so the mirror and the server coast identically.
                gated = True
                message = None
            else:
                # The server's prediction is out of tolerance: transmit,
                # and apply the same correction the server will apply.
                self._mirror.update(value)
                message = self._next_message(record.k, value)
        else:
            self._consecutive_gated = 0
            message = None
        if self._tel.enabled:
            self._observe_decision(record.k, error, message, gated)
        return SourceStep(
            k=record.k,
            raw_value=raw.copy(),
            value=value.copy(),
            prediction=prediction,
            error=error,
            message=message,
            gated=gated,
        )

    def _observe_decision(
        self,
        k: int,
        error: float,
        message: UpdateMessage | None,
        gated: bool,
    ) -> None:
        """Record the suppression decision (telemetry-enabled runs only)."""
        tel = self._tel
        tel.observe("innovation_abs", error, self._source_id)
        if message is not None:
            if self._last_update_k is not None:
                tel.observe(
                    "inter_update_gap_ticks",
                    k - self._last_update_k - 1,
                    self._source_id,
                )
            self._last_update_k = k
            tel.emit(
                "source.update",
                source_id=self._source_id,
                trace=trace_id(self._source_id, message.seq),
                k=k,
                error=error,
            )
            tel.count("updates_sent_total", self._source_id)
        elif gated:
            tel.emit(
                "source.gated", source_id=self._source_id, k=k, error=error
            )
            tel.count("readings_gated_total", self._source_id)
        else:
            tel.emit(
                "source.suppressed", source_id=self._source_id, k=k, error=error
            )
            tel.count("readings_suppressed_total", self._source_id)

    def _should_gate(self, value: np.ndarray, prediction: np.ndarray) -> bool:
        """Glitch gate: classify an escaping reading as a sensor glitch.

        Applies only when the config enables gating.  A reading is gated
        when its prediction error exceeds ``factor * delta`` on some
        component -- far outside what a genuine trend change produces in
        one step -- unless the consecutive-gate limit is reached (a
        sustained outlier is a regime change and must be transmitted).
        """
        factor = self._config.outlier_gate_factor
        if factor is None:
            self._consecutive_gated = 0
            return False
        if self._consecutive_gated >= self._config.outlier_gate_limit:
            self._consecutive_gated = 0
            return False
        abs_errors = np.abs(value - prediction)
        if bool(np.any(abs_errors > factor * self._effective_delta_vector())):
            self._consecutive_gated += 1
            self._readings_gated += 1
            return True
        self._consecutive_gated = 0
        return False

    def resync_message(self, k: int, value: np.ndarray) -> ResyncMessage:
        """Snapshot of the mirror state for loss recovery.

        Sent (reliably) when the source learns an update was lost, so the
        server can overwrite ``KF_s`` with the mirror's exact state.
        """
        mirror = self.mirror
        message = ResyncMessage(
            source_id=self._source_id,
            seq=self._seq,
            k=k,
            x=mirror.x,
            p=mirror.p,
            value=np.asarray(value, dtype=float).copy(),
        )
        self._seq += 1
        return message

    # Transport state machine ---------------------------------------------

    def note_sent(self, message: UpdateMessage | ResyncMessage, now: int) -> None:
        """Record a transmitted message in the pending-ack buffer.

        Call this immediately after offering ``message`` to the link.  The
        entry stays pending until an ack covering its sequence number
        arrives (:meth:`on_ack`) or its deadline expires, at which point
        :meth:`poll_transport` cuts a resync retransmission.
        """
        self._pending[message.seq] = (
            now + self._transport.retry_timeout(0),
            0,
            now,
        )
        self._last_send_tick = now

    def on_ack(self, ack: AckMessage, now: int) -> None:
        """Apply a cumulative acknowledgement from the server.

        Every pending entry with a sequence number below ``ack.seq`` (the
        server's next expected seq) is settled.  A ``resync_requested``
        flag schedules an immediate snapshot on the next
        :meth:`poll_transport`.
        """
        if self._tel.enabled:
            settled = [
                (seq, entry[2])
                for seq, entry in self._pending.items()
                if seq < ack.seq
            ]
            for seq, sent_tick in settled:
                self._tel.observe(
                    "ack_rtt_ticks", max(0, now - sent_tick), self._source_id
                )
            self._tel.emit(
                "source.ack",
                source_id=self._source_id,
                ack_seq=ack.seq,
                settled=[trace_id(self._source_id, seq) for seq, _ in settled],
                resync_requested=ack.resync_requested,
            )
        if ack.resync_requested and self._tel.enabled:
            self._resync_gap_seqs.extend(
                seq for seq in self._pending if seq < ack.seq
            )
        self._pending = {
            seq: entry for seq, entry in self._pending.items() if seq >= ack.seq
        }
        if ack.resync_requested:
            self._resync_requested = True

    def request_resync(self) -> None:
        """Schedule an immediate mirror-state snapshot.

        The next :meth:`poll_transport` cuts a
        :class:`~repro.dkf.protocol.ResyncMessage` regardless of pending
        timeouts.  The server-side divergence watchdog and the engine's
        recovery path use this to overwrite a suspect ``KF_s`` with the
        mirror's exact state.
        """
        self._resync_requested = True

    def poll_transport(
        self, now: int
    ) -> list[ResyncMessage | HeartbeatMessage]:
        """Run one tick of the transport state machine.

        Returns the messages the caller must offer to the link this tick:

        * a :class:`~repro.dkf.protocol.ResyncMessage` when the oldest
          pending-ack entry timed out (exponential backoff grows the next
          deadline) or the server explicitly requested one -- the snapshot
          supersedes every older pending message, so the buffer collapses
          to the single resync entry;
        * a :class:`~repro.dkf.protocol.HeartbeatMessage` when nothing is
          pending and the source has been silent past the heartbeat
          interval.
        """
        if self._mirror is None or self._last_value is None:
            return []
        retry_attempt = None
        timed_out = False
        if self._pending:
            oldest_deadline = min(d for d, _, _ in self._pending.values())
            if oldest_deadline <= now:
                timed_out = True
                retry_attempt = 1 + max(
                    attempt for _, attempt, _ in self._pending.values()
                )
        if self._resync_requested and retry_attempt is None:
            retry_attempt = 0
        if retry_attempt is not None:
            recovers = sorted({*self._resync_gap_seqs, *self._pending})
            self._resync_gap_seqs = []
            message = self.resync_message(self._k, self._last_value)
            self._pending.clear()
            self._pending[message.seq] = (
                now + self._transport.retry_timeout(retry_attempt),
                retry_attempt,
                now,
            )
            self._resync_requested = False
            self._retransmits += 1
            self._last_send_tick = now
            if self._tel.enabled:
                self._tel.emit(
                    "source.retransmit",
                    source_id=self._source_id,
                    trace=trace_id(self._source_id, message.seq),
                    k=self._k,
                    attempt=retry_attempt,
                    reason="timeout" if timed_out else "resync_requested",
                    recovers=[
                        trace_id(self._source_id, seq) for seq in recovers
                    ],
                )
                self._tel.count("retransmits_total", self._source_id)
            return [message]
        if (
            not self._pending
            and now - self._last_send_tick
            >= self._transport.heartbeat_interval_ticks
        ):
            heartbeat = HeartbeatMessage(
                source_id=self._source_id, seq=self._seq, k=self._k
            )
            self._last_send_tick = now
            self._heartbeats_sent += 1
            if self._tel.enabled:
                self._tel.emit(
                    "source.heartbeat", source_id=self._source_id, k=self._k
                )
                self._tel.count("heartbeats_total", self._source_id)
            return [heartbeat]
        return []

    def reset(self, now: int = 0) -> None:
        """Forget all filter and transport state.

        The next sample re-primes the pair.  After a crash/restart the
        caller should prime the server with a resync snapshot (not a plain
        update), because the server's expected sequence number survives
        the source's death -- see ``StreamEngine``'s restart handling.
        """
        self._mirror = None
        if self._smoother is not None:
            self._smoother.reset()
        self._seq = 0
        self._k = -1
        self._updates_sent = 0
        self._samples_seen = 0
        self._consecutive_gated = 0
        self._readings_gated = 0
        self._readings_rejected = 0
        self._last_value = None
        self._last_update_k = None
        self._pending = {}
        self._resync_requested = False
        self._resync_gap_seqs = []
        self._last_send_tick = now
        self._retransmits = 0
        self._heartbeats_sent = 0
