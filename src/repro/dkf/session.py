"""End-to-end DKF session: source, channel and server wired together.

:class:`DKFSession` drives one source/server pair over a stream, instant by
instant, implementing the common
:class:`~repro.scheme.SuppressionScheme` interface so the metrics layer can
score the DKF exactly as it scores the baselines.  It also owns the loss
recovery path: when the channel drops an update, the source immediately
follows with a (reliable) resync snapshot, modelling ack-based
retransmission.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import Channel
from repro.dkf.server import DKFServer
from repro.dkf.source import DKFSource
from repro.errors import MirrorDesyncError, StaleSessionError
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord

__all__ = ["DKFSession"]


class DKFSession(SuppressionScheme):
    """One DKF pair run in-process over a stream.

    Args:
        config: Model, precision width δ, optional smoothing factor.
        source_id: Source identifier (defaults to ``"s0"``).
        loss_fn: Optional channel loss predicate ``(message_index) -> bool``
            for failure-injection experiments; dropped updates trigger the
            resync path.
        verify_mirror: When True (default), after every instant the session
            asserts that ``KF_m`` and ``KF_s`` hold bit-identical state --
            the invariant the whole architecture rests on.  Disable only
            in throughput benchmarks.
    """

    def __init__(
        self,
        config: DKFConfig,
        source_id: str = "s0",
        loss_fn: Callable[[int], bool] | None = None,
        verify_mirror: bool = True,
    ) -> None:
        self._config = config
        self._source_id = source_id
        self._loss_fn = loss_fn
        self._verify_mirror = verify_mirror
        self._build()

    def _build(self) -> None:
        self._source = DKFSource(self._source_id, self._config)
        self._server = DKFServer()
        self._server.register(self._source_id, self._config)
        self._channel = Channel(deliver=self._server.receive, loss_fn=self._loss_fn)
        self._closed = False

    @property
    def name(self) -> str:
        """Display name (delegates to the config)."""
        return self._config.name

    @property
    def config(self) -> DKFConfig:
        """The installed configuration."""
        return self._config

    @property
    def source(self) -> DKFSource:
        """The sensor-side endpoint (live object)."""
        return self._source

    @property
    def server(self) -> DKFServer:
        """The server-side endpoint (live object)."""
        return self._server

    @property
    def channel(self) -> Channel:
        """The simulated link between the endpoints."""
        return self._channel

    def _check_mirror(self) -> None:
        """Assert the two filters are in lock-step (bit-identical state)."""
        if not self._source.primed or not self._server.is_primed(self._source_id):
            return
        src_k, src_state = self._source.mirror.state_digest()
        state = self._server._state(self._source_id)  # noqa: SLF001 - test hook
        srv_k, srv_state = state.filter.state_digest()
        if src_k != srv_k or src_state != srv_state:
            raise MirrorDesyncError(
                f"mirror desync at source k={src_k}, server k={srv_k}"
            )

    def observe(self, record: StreamRecord) -> SchemeDecision:
        """Run one sampling instant through source, channel and server."""
        if self._closed:
            raise StaleSessionError(
                "session is closed; reset() re-opens it with fresh filters"
            )
        # Server side first: advance the prediction for this instant.  The
        # mirror performs the identical predict inside source.sample(), so
        # ordering does not matter for lock-step -- only that both happen.
        self._server.tick(self._source_id, record.k)
        step = self._source.sample(record)

        sent = step.message is not None
        payload = 0
        if step.message is not None:
            payload = step.message.value.shape[0]
            delivered = self._channel.send(step.message)
            if not delivered:
                # Ack timeout: the source learns of the loss and pushes a
                # full state snapshot over the reliable path.
                resync = self._source.resync_message(record.k, step.value)
                self._channel.send_resync(resync)
        if self._verify_mirror:
            self._check_mirror()

        if self._server.is_primed(self._source_id):
            server_value = self._server.value(self._source_id)
        else:  # pragma: no cover - only reachable with pathological loss_fn
            server_value = step.value.copy()
        return SchemeDecision(
            k=record.k,
            sent=sent,
            server_value=server_value,
            source_value=step.value,
            raw_value=step.raw_value,
            payload_floats=payload,
            prediction_error=step.error,
        )

    def reset(self) -> None:
        """Tear down and rebuild both ends (fresh filters, zeroed stats)."""
        self._build()

    def close(self) -> None:
        """End the session: further observations raise
        :class:`~repro.errors.StaleSessionError`.

        The engine closes a source's session when its last query retires;
        accidental use of a retired pair then fails loudly instead of
        silently answering from stale filters.  ``reset()`` re-opens.
        """
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether close() has ended this session."""
        return self._closed

    # Convenience accessors used by benches and examples -----------------

    @property
    def updates_sent(self) -> int:
        """Update messages transmitted so far."""
        return self._source.updates_sent

    @property
    def samples_seen(self) -> int:
        """Sensor readings processed so far."""
        return self._source.samples_seen

    def forecast(self, steps: int) -> np.ndarray:
        """Server-side multi-step forecast of the stream."""
        return self._server.forecast(self._source_id, steps)
