"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.  Subclasses are organised by
subsystem: filter algebra, the DKF protocol, stream handling, and the DSMS
engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class FilterError(ReproError):
    """Base class for errors raised by the filtering subsystem."""


class DimensionError(FilterError):
    """A matrix or vector has a shape incompatible with the filter model.

    Raised eagerly at construction or update time so that shape bugs surface
    at the call site instead of deep inside a numpy broadcast.
    """


class NotPositiveDefiniteError(FilterError):
    """A covariance matrix is not symmetric positive semi-definite."""


class DivergenceError(FilterError):
    """The filter state has become non-finite (NaN or infinity).

    This typically indicates a mis-specified model (e.g. an unstable state
    transition matrix with no measurements) or corrupted input data.
    """


class NonFiniteMeasurementError(DivergenceError):
    """A measurement handed to the filter contains NaN or infinity.

    Raised by :meth:`repro.filters.kalman.KalmanFilter.update` *before*
    the correction touches any filter state, so a faulty sensor reading
    (e.g. the ``nan`` mode of :class:`repro.dsms.faults.SensorFault`) can
    never poison the estimate.  Subclasses :class:`DivergenceError` so
    existing handlers keep working; new code should catch this type to
    distinguish "bad input, filter still sane" from "filter already
    diverged".
    """


class ProtocolError(ReproError):
    """Base class for violations of the dual-filter (DKF) protocol."""


class MirrorDesyncError(ProtocolError):
    """The server and mirror filters no longer agree.

    The DKF protocol relies on ``KF_s`` and ``KF_m`` evolving in lock-step;
    a desync means a message was lost or applied out of order.  The protocol
    layer raises this when a consistency check (sequence numbers or state
    digests) fails.
    """


class CorruptMessageError(ProtocolError):
    """An encoded message failed its CRC-32 integrity check.

    Raised by :func:`repro.dkf.protocol.decode_message` when the trailer
    CRC does not match the message body -- the receiver must discard the
    message (it is indistinguishable from a loss) rather than risk applying
    a silently wrong decode.
    """


class StaleSessionError(ProtocolError):
    """An operation was attempted on a session that has already finished."""


class StreamError(ReproError):
    """Base class for errors in stream generation and replay."""


class StreamExhaustedError(StreamError):
    """A stream was read past its final record."""


class QueryError(ReproError):
    """Base class for errors in continuous-query handling."""


class UnknownSourceError(QueryError):
    """A query referenced a source id that is not registered."""


class DuplicateSourceError(QueryError):
    """A source id was registered twice with conflicting definitions."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid (e.g. negative δ)."""


class ResilienceError(ReproError):
    """Base class for errors in the crash-recovery subsystem."""


class CheckpointError(ResilienceError):
    """A checkpoint or WAL file is missing, torn, or fails validation.

    Raised by :class:`repro.resilience.checkpoint.CheckpointStore` when a
    snapshot's CRC-32 trailer does not match its body, the schema marker
    is unknown, or a restore is attempted with no checkpoint on disk.
    Torn *WAL tails* do not raise -- replay simply stops at the first
    bad record, because a torn tail is the expected shape of a crash.
    """
