"""Sensor-node energy model (paper Section 1).

The paper's motivation for filtering at the source is energy: "the ratio of
energy spent in sending one bit over networks to that spent in executing
one instruction is between 220 to 2,900 on various architectures"
[Pereira et al.; Raghunathan et al.].  This module turns a scheme's traffic
and compute accounting into joule estimates so benchmarks can report the
energy win alongside the bandwidth win.

Default constants are loosely calibrated to the mica-mote-era hardware the
paper cites: ~1 uJ per transmitted bit and a per-bit/per-instruction ratio
inside the paper's 220-2,900 range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["EnergyModel", "EnergyReport", "KF_FLOPS_PER_STEP"]


def KF_FLOPS_PER_STEP(state_dim: int, measurement_dim: int) -> int:
    """Rough instruction count of one KF predict+correct cycle.

    Matrix products dominate: prediction is ``O(n^3)`` (covariance) and
    correction ``O(n^2 m + m^3)``.  Constants folded to 4 to cover the
    multiply-accumulate pairs and copies; exactness is irrelevant -- the
    point is relative magnitude against radio costs.
    """
    n, m = state_dim, measurement_dim
    return 4 * (n**3 + n * n * m + n * m * m + m**3)


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals for one scheme run on one node.

    Attributes:
        transmit_joules: Radio energy for all transmitted bytes.
        compute_joules: CPU energy for all filter cycles.
        total_joules: Sum of the two.
        bytes_sent: Transmitted payload bytes.
        instructions: Estimated executed instructions.
    """

    transmit_joules: float
    compute_joules: float
    bytes_sent: int
    instructions: int

    @property
    def total_joules(self) -> float:
        """Radio plus CPU energy."""
        return self.transmit_joules + self.compute_joules

    @property
    def radio_share(self) -> float:
        """Fraction of total energy spent on the radio."""
        total = self.total_joules
        return self.transmit_joules / total if total > 0 else 0.0


class EnergyModel:
    """Convert traffic and compute accounting into joules.

    Args:
        joules_per_bit: Radio cost of one transmitted bit.
        bit_to_instruction_ratio: Energy ratio between sending one bit and
            executing one instruction; the paper cites 220-2,900.

    The per-instruction cost is derived as
    ``joules_per_bit / bit_to_instruction_ratio``.
    """

    def __init__(
        self,
        joules_per_bit: float = 1e-6,
        bit_to_instruction_ratio: float = 1000.0,
    ) -> None:
        if joules_per_bit <= 0:
            raise ConfigurationError("joules_per_bit must be positive")
        if bit_to_instruction_ratio <= 0:
            raise ConfigurationError("bit_to_instruction_ratio must be positive")
        self._joules_per_bit = joules_per_bit
        self._joules_per_instruction = joules_per_bit / bit_to_instruction_ratio

    @property
    def joules_per_bit(self) -> float:
        """Radio cost of one transmitted bit."""
        return self._joules_per_bit

    @property
    def joules_per_instruction(self) -> float:
        """CPU cost of one executed instruction."""
        return self._joules_per_instruction

    def report(
        self,
        bytes_sent: int,
        filter_steps: int,
        state_dim: int,
        measurement_dim: int,
        smoothing_steps: int = 0,
    ) -> EnergyReport:
        """Energy totals for a node that transmitted ``bytes_sent`` and ran
        ``filter_steps`` mirror-filter cycles (plus optional scalar
        smoothing cycles).

        Args:
            bytes_sent: Total transmitted bytes (updates + resyncs).
            filter_steps: Mirror filter cycles executed.
            state_dim: Mirror filter state dimension.
            measurement_dim: Mirror filter measurement dimension.
            smoothing_steps: Scalar ``KF_c`` cycles executed.
        """
        if bytes_sent < 0 or filter_steps < 0 or smoothing_steps < 0:
            raise ConfigurationError("counts must be non-negative")
        instructions = filter_steps * KF_FLOPS_PER_STEP(state_dim, measurement_dim)
        instructions += smoothing_steps * KF_FLOPS_PER_STEP(1, 1)
        return EnergyReport(
            transmit_joules=bytes_sent * 8 * self._joules_per_bit,
            compute_joules=instructions * self._joules_per_instruction,
            bytes_sent=bytes_sent,
            instructions=instructions,
        )

    def naive_report(self, readings: int, floats_per_reading: int) -> EnergyReport:
        """Energy of the no-filtering strawman: transmit every reading.

        Used as the 100% reference when reporting energy savings.
        """
        from repro.dkf.protocol import FLOAT_BYTES, HEADER_BYTES

        bytes_sent = readings * (HEADER_BYTES + floats_per_reading * FLOAT_BYTES)
        return EnergyReport(
            transmit_joules=bytes_sent * 8 * self._joules_per_bit,
            compute_joules=0.0,
            bytes_sent=bytes_sent,
            instructions=0,
        )
