"""Multi-source, multi-query DSMS engine (the "end-to-end system" of the
paper's future-work list, item 1).

The engine wires together every substrate in the library:

* a :class:`~repro.dsms.registry.SourceRegistry` mapping queries to
  sources and deriving each source's effective δ and F;
* one :class:`~repro.dkf.source.DKFSource` per registered source (the
  sensor side) and a single shared :class:`~repro.dkf.server.DKFServer`;
* a :class:`~repro.dsms.network.NetworkFabric` carrying updates, with
  per-link latency/loss;
* an :class:`~repro.dsms.energy.EnergyModel` for per-node joule totals.

Each call to :meth:`StreamEngine.step` advances every source by one
sampling instant; :meth:`StreamEngine.answers` returns the current answer
for every active query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dkf.server import DKFServer
from repro.dkf.source import DKFSource
from repro.dsms.energy import EnergyModel, EnergyReport
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.dsms.query import ContinuousQuery, QueryAnswer
from repro.dsms.registry import SourceRegistry
from repro.errors import StreamExhaustedError, UnknownSourceError
from repro.filters.models import StateSpaceModel
from repro.streams.base import MaterializedStream, StreamCursor

__all__ = ["StreamEngine", "EngineReport"]


@dataclass(frozen=True)
class EngineReport:
    """System-wide summary after (part of) a run.

    Attributes:
        ticks: Sampling instants processed.
        readings: Total sensor readings across sources.
        updates_sent: Total update messages offered by sources.
        bytes_delivered: Total bytes that crossed the network.
        per_source_energy: Energy report per source id.
    """

    ticks: int
    readings: int
    updates_sent: int
    bytes_delivered: int
    per_source_energy: dict[str, EnergyReport]

    @property
    def total_energy_joules(self) -> float:
        """System-wide sensor energy across all sources."""
        return sum(r.total_joules for r in self.per_source_energy.values())


class StreamEngine:
    """Drive many DKF pairs over their streams under one server.

    Args:
        energy_model: Energy accounting model (defaults shared by all
            sources).
    """

    def __init__(self, energy_model: EnergyModel | None = None) -> None:
        self.registry = SourceRegistry()
        self._server = DKFServer()
        self._fabric = NetworkFabric(deliver=self._server.receive)
        self._energy = energy_model or EnergyModel()
        self._sources: dict[str, DKFSource] = {}
        self._cursors: dict[str, StreamCursor] = {}
        self._links: dict[str, LinkConfig] = {}
        self._ticks = 0
        self._exhausted: set[str] = set()

    @property
    def server(self) -> DKFServer:
        """The shared central server (live object)."""
        return self._server

    @property
    def fabric(self) -> NetworkFabric:
        """The simulated network fabric (live object)."""
        return self._fabric

    @property
    def ticks(self) -> int:
        """Sampling instants processed so far."""
        return self._ticks

    def add_source(
        self,
        source_id: str,
        model: StateSpaceModel,
        stream: MaterializedStream,
        link: LinkConfig | None = None,
        default_smoothing_r: float = 1.0,
    ) -> None:
        """Register a source, its model, its data stream and its link."""
        self.registry.register_source(
            source_id, model, default_smoothing_r=default_smoothing_r
        )
        self._cursors[source_id] = StreamCursor(stream)
        self._fabric.add_link(source_id, link)
        self._links[source_id] = link or LinkConfig()

    def submit_query(self, query: ContinuousQuery) -> None:
        """Activate a continuous query, (re)installing the source's DKF.

        The first query on a source installs its DKF pair; later queries
        reinstall only when they tighten the effective δ or F (a reinstall
        resets the filters, costing one priming update -- the trade the
        paper's protocol makes for simplicity).
        """
        descriptor = self.registry.add_query(query)
        config = descriptor.build_config()
        existing = self._sources.get(query.source_id)
        if existing is not None and existing.config == config:
            return
        self._install(query.source_id, config)

    def retire_query(self, query_id: str) -> None:
        """Deactivate a query; tear down the DKF when none remain."""
        descriptor = self.registry.remove_query(query_id)
        source_id = descriptor.source_id
        if not descriptor.queries:
            if source_id in self._sources:
                del self._sources[source_id]
                self._server.deregister(source_id)
            return
        config = descriptor.build_config()
        if self._sources[source_id].config != config:
            self._install(source_id, config)

    def _install(self, source_id: str, config) -> None:
        self._sources[source_id] = DKFSource(source_id, config)
        if source_id in self._server.source_ids:
            self._server.deregister(source_id)
        self._server.register(source_id, config)

    def step(self) -> int:
        """Advance every queried source one sampling instant.

        Returns the number of sources that produced a reading (sources
        whose streams are exhausted are skipped).
        """
        processed = 0
        for source_id, source in self._sources.items():
            if source_id in self._exhausted:
                continue
            cursor = self._cursors[source_id]
            try:
                record = cursor.next()
            except StreamExhaustedError:
                self._exhausted.add(source_id)
                continue
            self._server.tick(source_id, record.k)
            step = source.sample(record)
            if step.message is not None:
                delivered = self._fabric.send(step.message)
                if not delivered:
                    resync = source.resync_message(record.k, step.value)
                    self._fabric.send_resync(resync)
            processed += 1
        self._ticks += 1
        self._fabric.advance(self._ticks)
        return processed

    def run(self, max_ticks: int | None = None) -> int:
        """Step until every stream is exhausted (or ``max_ticks``).

        Returns the number of ticks executed.
        """
        executed = 0
        while max_ticks is None or executed < max_ticks:
            if len(self._exhausted) == len(self._sources):
                break
            if self.step() == 0 and len(self._exhausted) == len(self._sources):
                break
            executed += 1
        return executed

    def answers(self) -> list[QueryAnswer]:
        """Current answers for every active query."""
        out = []
        for query in self.registry.active_queries:
            source = self._sources.get(query.source_id)
            if source is None or not self._server.is_primed(query.source_id):
                continue
            value = self._server.value(query.source_id)
            out.append(
                QueryAnswer(
                    query_id=query.query_id,
                    source_id=query.source_id,
                    k=self._server.stats(query.source_id)["last_k"],
                    value=tuple(float(v) for v in value),
                    precision=source.config.min_delta,
                )
            )
        return out

    def answer(self, query_id: str) -> QueryAnswer:
        """The current answer for one query."""
        for candidate in self.answers():
            if candidate.query_id == query_id:
                return candidate
        raise UnknownSourceError(f"no answer available for query {query_id!r}")

    def report(self) -> EngineReport:
        """System-wide traffic and energy summary."""
        per_source_energy = {}
        readings = 0
        updates = 0
        for source_id, source in self._sources.items():
            stats = self._fabric.stats_for(source_id)
            model = source.config.model
            per_source_energy[source_id] = self._energy.report(
                bytes_sent=stats.bytes_delivered,
                filter_steps=source.samples_seen,
                state_dim=model.state_dim,
                measurement_dim=model.measurement_dim,
                smoothing_steps=source.samples_seen if source.config.smoothed else 0,
            )
            readings += source.samples_seen
            updates += source.updates_sent
        return EngineReport(
            ticks=self._ticks,
            readings=readings,
            updates_sent=updates,
            bytes_delivered=self._fabric.total_bytes(),
            per_source_energy=per_source_energy,
        )
