"""Multi-source, multi-query DSMS engine (the "end-to-end system" of the
paper's future-work list, item 1).

The engine wires together every substrate in the library:

* a :class:`~repro.dsms.registry.SourceRegistry` mapping queries to
  sources and deriving each source's effective δ and F;
* one :class:`~repro.dkf.source.DKFSource` per registered source (the
  sensor side) and a single shared :class:`~repro.dkf.server.DKFServer`
  running in tolerant, ack-emitting mode;
* a :class:`~repro.dsms.network.NetworkFabric` carrying updates *and*
  acks, with per-direction latency/loss/corruption;
* an :class:`~repro.dsms.energy.EnergyModel` for per-node joule totals;
* optionally a :class:`~repro.dsms.faults.FaultSchedule` injecting source
  crashes, sensor faults, burst loss and payload corruption.

Loss recovery is *asymmetric-information realistic*: the engine never
peeks at the link's verdict.  A source only learns an update died when its
ack timeout expires, at which point it retransmits a full resync snapshot
over the same lossy, latent link, backing off exponentially until an ack
lands.  The server, for its part, detects sequence gaps and asks for a
resync through the ack channel instead of raising into the delivery loop.

Each call to :meth:`StreamEngine.step` advances every source by one
sampling instant; :meth:`StreamEngine.answers` returns the current answer
for every active query, annotated with staleness, confidence and a
``degraded`` flag once a source has been silent past its liveness
deadline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.autoscale.config import AutoscalePolicy
from repro.autoscale.controller import InboxAutoscaler
from repro.dkf.config import TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    ResyncMessage,
    UpdateMessage,
    instrument_codec,
)
from repro.dkf.server import DKFServer
from repro.dkf.source import DKFSource
from repro.dsms.energy import EnergyModel, EnergyReport
from repro.dsms.faults import FaultSchedule
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.dsms.query import ContinuousQuery, QueryAnswer
from repro.dsms.registry import SourceRegistry
from repro.errors import ConfigurationError, StreamExhaustedError, UnknownSourceError
from repro.filters.models import StateSpaceModel
from repro.obs.events import trace_id
from repro.obs.exporters import build_snapshot
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.resilience.config import ResilienceConfig
from repro.resilience.supervisor import (
    BoundedInbox,
    OverloadController,
    StreamSupervisor,
)
from repro.resilience.watchdog import DivergenceWatchdog
from repro.streams.base import MaterializedStream, StreamCursor

__all__ = ["StreamEngine", "EngineReport", "SERVER_NODE"]

#: Node id of the central server in partition fault schedules: a
#: :meth:`FaultSchedule.partition` side containing this name cuts the
#: named sources off from the server (data *and* ack directions).
SERVER_NODE = "server"


@dataclass(frozen=True)
class EngineReport:
    """System-wide summary after (part of) a run.

    Attributes:
        ticks: Sampling instants processed.
        readings: Total sensor readings across sources.
        updates_sent: Update messages offered on the wire over each
            source's whole lifetime (counted at the fabric, so the
            figure survives source restarts that wipe per-source
            counters).  Disjoint from ``retransmits`` and
            ``heartbeats``, so the traffic conservation law holds:
            ``updates_sent + retransmits + heartbeats == delivered +
            messages_lost + corrupted + in_flight``.
        bytes_delivered: Total bytes that crossed the network.
        messages_lost: Data messages dropped by the loss model.
            Disjoint from ``corrupted``.
        in_flight: Messages still queued on latent links (both
            directions) when the report was cut.
        retransmits: Resync snapshots offered on the wire -- ack-timeout
            and server-requested retransmissions plus post-restart
            re-priming.
        heartbeats: Liveness beacons offered by sources.
        corrupted: Messages rejected by the receiver-side CRC check.
        acks_delivered: Server-to-source acknowledgements delivered.
        per_source_energy: Energy report per source id.
    """

    ticks: int
    readings: int
    updates_sent: int
    bytes_delivered: int
    messages_lost: int
    in_flight: int
    retransmits: int
    heartbeats: int
    corrupted: int
    acks_delivered: int
    per_source_energy: dict[str, EnergyReport]

    @property
    def total_energy_joules(self) -> float:
        """System-wide sensor energy across all sources."""
        return sum(r.total_joules for r in self.per_source_energy.values())

    def to_dict(self) -> dict:
        """JSON-serialisable form (nested ``EnergyReport``s included).

        Round-trips exactly through :meth:`from_dict`; the snapshot
        exporter embeds this under its ``meta`` when a run report rides
        along with the telemetry.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineReport":
        """Rebuild a report from :meth:`to_dict` output."""
        try:
            energy = {
                source_id: EnergyReport(**fields)
                for source_id, fields in data["per_source_energy"].items()
            }
            return cls(**{**data, "per_source_energy": energy})
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed EngineReport dict: {exc}"
            ) from None


def _either(
    first,
    second,
):
    """Compose two optional loss predicates with OR (fault layering)."""
    if first is None:
        return second
    if second is None:
        return first

    def drop(index: int) -> bool:
        return bool(first(index)) or bool(second(index))

    return drop


class StreamEngine:
    """Drive many DKF pairs over their streams under one server.

    Args:
        energy_model: Energy accounting model (defaults shared by all
            sources).
        telemetry: Optional :class:`~repro.obs.telemetry.Telemetry`
            threaded through every component (fabric, sources, server,
            fault schedule, filter hot paths).  The default
            :class:`~repro.obs.telemetry.NullTelemetry` keeps a seeded
            run byte-identical to an unobserved one.
        resilience: Optional
            :class:`~repro.resilience.config.ResilienceConfig` enabling
            checkpoint/WAL durability, the divergence watchdog, restart
            supervision and overload shedding.  When None (the default)
            the engine runs the exact pre-resilience delivery path --
            messages go straight from the fabric into the server -- so a
            seeded run stays byte-identical to one built before this
            subsystem existed.
        autoscale: Optional
            :class:`~repro.autoscale.config.AutoscalePolicy` arming the
            predictive control loop: a Kalman forecast of the inbox
            arrival rate hands δ-widening schedules to the overload
            controller *before* the watermark is crossed.  Requires an
            overload policy (the actuator and shed ledger).
    """

    def __init__(
        self,
        energy_model: EnergyModel | None = None,
        telemetry=None,
        resilience: ResilienceConfig | None = None,
        autoscale: AutoscalePolicy | None = None,
    ) -> None:
        self.registry = SourceRegistry()
        self._tel = telemetry or NULL_TELEMETRY
        self._resilience = resilience
        if resilience is not None:
            resilience.validate()
        self._track_health = (
            resilience is not None and resilience.watchdog is not None
        )
        self._server = DKFServer(
            strict=False,
            emit_acks=True,
            telemetry=self._tel,
            track_health=self._track_health,
        )
        self._fabric = NetworkFabric(
            # The resilient deliver path must survive the server object
            # being replaced on recovery, so it routes through a wrapper
            # instead of binding the server's method directly.
            deliver=(
                self._server.receive if resilience is None else self._deliver
            ),
            deliver_ack=self._on_ack,
            telemetry=self._tel,
        )
        if self._tel.enabled:
            # The codec is module-level, so its timers are too; the most
            # recently built observed engine wins the hook.
            instrument_codec(self._tel.timers)
        self._energy = energy_model or EnergyModel()
        self._sources: dict[str, DKFSource] = {}
        self._cursors: dict[str, StreamCursor] = {}
        self._links: dict[str, LinkConfig] = {}
        self._transports: dict[str, TransportPolicy] = {}
        self._priorities: dict[str, int] = {}
        self._ticks = 0
        self._exhausted: set[str] = set()
        self._faults: FaultSchedule | None = None
        self._latency_overrides: dict[str, tuple[int, int]] = {}
        self._resync_prime: set[str] = set()
        self._down_now: set[str] = set()
        # Resilience state (all inert when the guards are disabled).
        self._server_down = False
        self._replaying = False
        self._dropped_while_down = 0
        self._recoveries = 0
        self._restart_pending: set[str] = set()
        self._ckpt: CheckpointStore | None = None
        self._watchdog: DivergenceWatchdog | None = None
        self._supervisor: StreamSupervisor | None = None
        self._overload: OverloadController | None = None
        self._inbox: BoundedInbox | None = None
        if resilience is not None:
            if resilience.checkpoint_dir is not None:
                self._ckpt = CheckpointStore(resilience.checkpoint_dir)
            if resilience.watchdog is not None:
                self._watchdog = DivergenceWatchdog(
                    resilience.watchdog, telemetry=self._tel
                )
            if resilience.restart is not None:
                self._supervisor = StreamSupervisor(
                    resilience.restart, telemetry=self._tel
                )
            if resilience.overload is not None:
                self._overload = OverloadController(
                    resilience.overload, telemetry=self._tel
                )
                self._inbox = BoundedInbox(resilience.overload.inbox_capacity)
        self._autoscaler: InboxAutoscaler | None = None
        if autoscale is not None:
            autoscale.validate()
            if self._overload is None:
                raise ConfigurationError(
                    "predictive autoscaling widens delta through the "
                    "overload controller; pass a ResilienceConfig with an "
                    "overload policy alongside the autoscale policy"
                )
            self._autoscaler = InboxAutoscaler(
                autoscale, self._overload, telemetry=self._tel
            )

    @property
    def server(self) -> DKFServer:
        """The shared central server (live object)."""
        return self._server

    @property
    def fabric(self) -> NetworkFabric:
        """The simulated network fabric (live object)."""
        return self._fabric

    @property
    def sources(self) -> dict[str, DKFSource]:
        """The installed source-side DKF endpoints (live objects)."""
        return dict(self._sources)

    @property
    def ticks(self) -> int:
        """Sampling instants processed so far."""
        return self._ticks

    @property
    def faults(self) -> FaultSchedule | None:
        """The injected fault schedule, if any."""
        return self._faults

    @property
    def telemetry(self):
        """The telemetry handle (the no-op singleton when unobserved)."""
        return self._tel

    @property
    def resilience(self) -> ResilienceConfig | None:
        """The installed resilience configuration, if any."""
        return self._resilience

    @property
    def server_down(self) -> bool:
        """Whether :meth:`crash_server` killed the server process."""
        return self._server_down

    @property
    def checkpoint_store(self) -> CheckpointStore | None:
        """The durable checkpoint + WAL pair (None when disabled)."""
        return self._ckpt

    @property
    def watchdog(self) -> DivergenceWatchdog | None:
        """The divergence watchdog (None when disabled)."""
        return self._watchdog

    @property
    def supervisor(self) -> StreamSupervisor | None:
        """The restart supervisor (None when disabled)."""
        return self._supervisor

    @property
    def overload(self) -> OverloadController | None:
        """The overload controller (None when disabled)."""
        return self._overload

    @property
    def inbox(self) -> BoundedInbox | None:
        """The bounded server inbox (None when overload is disabled)."""
        return self._inbox

    @property
    def autoscaler(self) -> InboxAutoscaler | None:
        """The predictive autoscaler (None when disabled)."""
        return self._autoscaler

    # Resilient delivery path ---------------------------------------------

    def _deliver(self, message):
        """Fabric deliver callback when resilience is enabled.

        While the server is down every delivery is dropped on the floor
        (the fabric already counted it delivered, which is what a dead
        process does to packets that reach its host).  With an overload
        policy the message lands in the bounded inbox and is processed at
        the drain rate; otherwise it is applied synchronously.
        """
        if self._server_down:
            self._dropped_while_down += 1
            return None
        if self._inbox is not None:
            if not self._inbox.offer(message):
                if self._overload is not None:
                    self._overload.charge_drop(message.source_id)
                if self._tel.enabled:
                    self._tel.emit(
                        "shed.drop",
                        source_id=message.source_id,
                        depth=self._inbox.depth,
                    )
                    self._tel.count("inbox_dropped_total", message.source_id)
            return None
        return self._apply_message(message)

    def _apply_message(self, message):
        """Hand one message to the server, WAL-logging what it applies."""
        server = self._server
        if (
            self._ckpt is None
            or self._replaying
            or isinstance(message, AckMessage)
            or not isinstance(message, (UpdateMessage, ResyncMessage))
            or message.source_id not in server.source_ids
        ):
            return server.receive(message)
        source_id = message.source_id
        before = server.stats(source_id)
        result = server.receive(message)
        after = server.stats(source_id)
        applied = (
            after["updates_received"] > before["updates_received"]
            or after["resyncs_received"] > before["resyncs_received"]
        )
        if applied:
            record = {
                "kind": (
                    "resync" if isinstance(message, ResyncMessage) else "update"
                ),
                "source_id": source_id,
                "seq": int(message.seq),
                "k": int(message.k),
                "value": message.value.tolist(),
            }
            if isinstance(message, ResyncMessage):
                record["x"] = message.x.tolist()
                record["p"] = message.p.tolist()
            self._ckpt.wal_append(record)
            if self._tel.enabled:
                self._tel.count("wal_records_total", source_id)
        return result

    def add_source(
        self,
        source_id: str,
        model: StateSpaceModel,
        stream: MaterializedStream,
        link: LinkConfig | None = None,
        default_smoothing_r: float = 1.0,
        transport: TransportPolicy | None = None,
        priority: int = 0,
    ) -> None:
        """Register a source, its model, its data stream and its link.

        ``priority`` only matters under an overload policy: when the
        server inbox backs up, the shedding controller widens the δ of
        the *lowest*-priority streams first, so higher numbers keep their
        precision longest.
        """
        self.registry.register_source(
            source_id, model, default_smoothing_r=default_smoothing_r
        )
        self._cursors[source_id] = StreamCursor(stream)
        self._fabric.add_link(source_id, link)
        self._links[source_id] = link or LinkConfig()
        self._transports[source_id] = transport or TransportPolicy()
        self._priorities[source_id] = priority

    def inject_faults(self, schedule: FaultSchedule) -> None:
        """Install a fault schedule; call after every ``add_source``.

        Burst-loss and corruption faults are layered onto the affected
        links (existing loss functions still apply -- the fabric drops a
        message when *either* says so).  Crash and sensor faults are
        consumed tick by tick inside :meth:`step`.
        """
        schedule.reset()
        schedule.bind_telemetry(self._tel)
        self._faults = schedule
        partitioned = (
            schedule.partitioned_nodes() if schedule.has_partitions() else set()
        )
        for source_id in self._links:
            loss = schedule.loss_fn(source_id)
            corrupt = schedule.corrupt_fn(source_id)
            sever = None
            if source_id in partitioned:
                # Severed at send: a frame offered while the cut is active
                # is dropped (counted lost), in both directions.  The
                # fabric gate below holds frames already in the pipe.
                def sever(_index: int, _sid: str = source_id) -> bool:
                    return schedule.link_severed(_sid, SERVER_NODE)

            if loss is None and corrupt is None and sever is None:
                continue
            base = self._fabric.link_config(source_id)
            self._fabric.reconfigure_link(
                source_id,
                dataclasses.replace(
                    base,
                    loss_fn=_either(_either(base.loss_fn, loss), sever),
                    ack_loss_fn=_either(base.ack_loss_fn, sever),
                    corrupt_fn=_either(base.corrupt_fn, corrupt),
                ),
            )
        if partitioned:
            self._fabric.set_gate(
                lambda link_id, tick: not schedule.link_severed(
                    link_id, SERVER_NODE, tick
                )
            )

    def submit_query(self, query: ContinuousQuery) -> None:
        """Activate a continuous query, (re)installing the source's DKF.

        The first query on a source installs its DKF pair; later queries
        reinstall only when they tighten the effective δ or F (a reinstall
        resets the filters, costing one priming update -- the trade the
        paper's protocol makes for simplicity).
        """
        descriptor = self.registry.add_query(query)
        config = descriptor.build_config()
        existing = self._sources.get(query.source_id)
        if existing is not None and existing.config == config:
            return
        self._install(query.source_id, config)

    def retire_query(self, query_id: str) -> None:
        """Deactivate a query; tear down the DKF when none remain."""
        descriptor = self.registry.remove_query(query_id)
        source_id = descriptor.source_id
        if not descriptor.queries:
            if source_id in self._sources:
                del self._sources[source_id]
                self._server.deregister(source_id)
                self._exhausted.discard(source_id)
                self._resync_prime.discard(source_id)
                self._restart_pending.discard(source_id)
                if self._watchdog is not None:
                    self._watchdog.deregister(source_id)
                if self._overload is not None:
                    self._overload.deregister(source_id)
            return
        config = descriptor.build_config()
        if self._sources[source_id].config != config:
            self._install(source_id, config)

    def _install(self, source_id: str, config) -> None:
        transport = self._transports.get(source_id) or TransportPolicy()
        self._sources[source_id] = DKFSource(
            source_id, config, transport=transport, telemetry=self._tel
        )
        if source_id in self._server.source_ids:
            self._server.deregister(source_id)
        self._server.register(source_id, config, transport=transport)
        self._resync_prime.discard(source_id)
        if self._watchdog is not None:
            self._watchdog.register(source_id)
        if self._overload is not None:
            self._overload.register(
                source_id,
                self._priorities.get(source_id, 0),
                config.min_delta,
            )

    def _on_ack(self, ack: AckMessage) -> None:
        """Fabric callback: route a delivered ack to its source."""
        source = self._sources.get(ack.source_id)
        if source is not None:
            source.on_ack(ack, self._ticks)

    def step(self) -> int:
        """Advance every queried source one sampling instant.

        Per source: consume fault events (crash/restart, sensor faults),
        take a reading, run the suppression decision, offer any update to
        the link (ignoring the link's verdict -- only acks reveal fate),
        then run the transport state machine (timeout retransmissions and
        heartbeats).  Finally the fabric advances one tick, delivering due
        messages, and the server's queued acks are sent back.

        Returns the number of sources that produced a reading (sources
        whose streams are exhausted or that are crashed are skipped).
        """
        tel = self._tel
        now = self._ticks
        tel.set_tick(now)
        with tel.timers.span("engine.step"):
            if self._faults is not None:
                self._faults.observe_tick(now)
                self._apply_latency_overrides(now)
            processed = self._step_sources(now)
            self._ticks += 1
            if not self._server_down:
                self._server.advance_clock(self._ticks)
            self._fabric.advance(self._ticks)
            self._drain_inbox()
            if not self._server_down:
                for ack in self._server.take_outbox():
                    self._fabric.send_ack(ack)
            self._run_watchdog()
            self._maybe_checkpoint()
        return processed

    def _apply_latency_overrides(self, now: int) -> None:
        """Apply/clear asymmetric-link latency windows (fault hook).

        Reconfigures only when the set of active overrides changed, so
        runs without asymmetric faults pay a single set lookup per tick.
        """
        if not self._faults.asymmetric_links():
            return
        overrides = {
            sid: extras
            for sid, extras in self._faults.latency_overrides(now).items()
            if sid in self._links
        }
        if overrides == self._latency_overrides:
            return
        for source_id in set(self._latency_overrides) | set(overrides):
            base = self._links[source_id]
            data_extra, ack_extra = overrides.get(source_id, (0, 0))
            current = self._fabric.link_config(source_id)
            self._fabric.reconfigure_link(
                source_id,
                dataclasses.replace(
                    current,
                    latency_ticks=base.latency_ticks + data_extra,
                    ack_latency_ticks=base.ack_latency_ticks + ack_extra,
                ),
            )
        self._latency_overrides = overrides

    def _drain_inbox(self) -> None:
        """Process the bounded inbox at the configured drain rate."""
        if self._inbox is None or self._overload is None:
            return
        if not self._server_down:
            for message in self._inbox.drain(
                self._overload.policy.drain_per_tick
            ):
                self._apply_message(message)
        depth = self._inbox.depth
        if self._tel.enabled:
            self._tel.gauge("inbox_depth", depth)
        # The predictive loop runs first: planned widening stamps the
        # reactive cooldown, so the controller below stays a backstop
        # for whatever the forecast missed.
        if self._autoscaler is not None:
            planned = self._autoscaler.control(
                self._ticks,
                depth=depth,
                offered=self._inbox.accepted + self._inbox.dropped,
            )
            self._apply_scales(planned)
        self._apply_scales(self._overload.step(self._ticks, depth))

    def _apply_scales(self, changes: dict[str, float]) -> None:
        for source_id, scale in changes.items():
            source = self._sources.get(source_id)
            if source is not None:
                source.set_delta_scale(scale)

    def _run_watchdog(self) -> None:
        """Health-check every primed stream and apply escalations."""
        if self._watchdog is None or self._server_down:
            return
        for source_id, source in self._sources.items():
            if (
                source_id not in self._server.source_ids
                or not self._server.is_primed(source_id)
            ):
                continue
            action = self._watchdog.check(
                source_id, self._ticks, self._server.health_view(source_id)
            )
            if action is None:
                continue
            if action == "resync":
                if source.primed:
                    source.request_resync()
            elif action == "reprime":
                self._server.reprime(source_id)
                if source.primed:
                    source.request_resync()
            # "quarantine" needs no mechanism here: answers() reads the
            # watchdog's rung and flags the stream untrustworthy.

    def _maybe_checkpoint(self) -> None:
        """Write a periodic snapshot when the cadence says so."""
        if (
            self._resilience is None
            or not self._resilience.checkpoint_every
            or self._ckpt is None
            or self._server_down
        ):
            return
        if self._ticks % self._resilience.checkpoint_every == 0:
            self.checkpoint()

    def _step_sources(self, now: int) -> int:
        """The per-source half of :meth:`step` (readings + transport)."""
        tel = self._tel
        processed = 0
        for source_id, source in self._sources.items():
            if self._faults is not None:
                if (
                    self._faults.restarts_at(source_id, now)
                    or source_id in self._restart_pending
                ):
                    # Recovered from a crash: all state is gone.  The next
                    # transmission must be a resync snapshot, because the
                    # server's expected sequence number survived the crash
                    # and a fresh seq-0 update would read as a stale
                    # duplicate.  Under a restart policy the supervisor
                    # may defer the restart (backoff or exhausted budget),
                    # in which case the source stays down and the request
                    # is retried next tick.
                    if (
                        self._supervisor is None
                        or self._supervisor.request_restart(source_id, now)
                    ):
                        self._restart_pending.discard(source_id)
                        source.reset(now)
                        self._resync_prime.add(source_id)
                        self._down_now.discard(source_id)
                        if tel.enabled:
                            tel.emit("fault.restart", source_id=source_id)
                            tel.count("restarts_total", source_id)
                    else:
                        self._restart_pending.add(source_id)
                if (
                    self._faults.is_down(source_id, now)
                    or source_id in self._restart_pending
                ):
                    # Sensor dead: no reading, no transport.  The server
                    # keeps coasting so staleness and covariance grow.
                    if source_id not in self._down_now:
                        self._down_now.add(source_id)
                        if tel.enabled:
                            tel.emit("fault.crash", source_id=source_id)
                            tel.count("crashes_total", source_id)
                    if (
                        not self._server_down
                        and self._server.is_primed(source_id)
                    ):
                        self._server.tick(source_id, now)
                    if self._faults.is_terminal(source_id, now):
                        self._exhausted.add(source_id)
                    continue
            if source_id not in self._exhausted:
                cursor = self._cursors[source_id]
                try:
                    record = cursor.next()
                except StreamExhaustedError:
                    self._exhausted.add(source_id)
                else:
                    if self._faults is not None:
                        record = self._faults.transform(source_id, now, record)
                    if not self._server_down:
                        self._server.tick(source_id, record.k)
                    step = source.sample(record)
                    if self._watchdog is not None:
                        if step.rejected:
                            self._watchdog.note_rejection(source_id)
                        else:
                            self._watchdog.note_accepted(source_id)
                    message = step.message
                    if message is not None:
                        if source_id in self._resync_prime:
                            self._resync_prime.discard(source_id)
                            message = source.resync_message(
                                record.k, step.value
                            )
                            if tel.enabled:
                                tel.emit(
                                    "engine.resync_prime",
                                    source_id=source_id,
                                    trace=trace_id(source_id, message.seq),
                                    k=record.k,
                                )
                        self._fabric.send(message)
                        source.note_sent(message, now)
                    processed += 1
            # Transport maintenance runs for every live source, even after
            # its stream drained: pending retransmissions and heartbeats
            # must not strand.
            for message in source.poll_transport(now):
                self._fabric.send(message)
        return processed

    def run(self, max_ticks: int | None = None) -> int:
        """Step until every stream is exhausted (or ``max_ticks``).

        When the run ends because every stream drained, in-flight
        messages are flushed (:meth:`NetworkFabric.drain`) so nothing is
        silently stranded; a ``max_ticks`` cut leaves the fabric untouched
        so the run can be resumed.

        Returns the number of ticks executed.
        """
        executed = 0
        with self._tel.timers.span("engine.run"):
            while max_ticks is None or executed < max_ticks:
                if len(self._exhausted) == len(self._sources):
                    break
                if (
                    self.step() == 0
                    and len(self._exhausted) == len(self._sources)
                ):
                    break
                executed += 1
            if self._sources and len(self._exhausted) == len(self._sources):
                self._flush_in_flight()
        return executed

    def settle(self, max_ticks: int = 256) -> int:
        """Tick the transport until it quiesces (post-run grace period).

        Keeps stepping (consuming no new readings once streams are
        exhausted) until no message is in flight and no source is waiting
        on an ack, or ``max_ticks`` elapse.  Use after :meth:`run` when a
        test or deployment needs every retransmission resolved rather
        than merely flushed.

        Returns the number of grace ticks executed.
        """
        executed = 0
        while executed < max_ticks:
            pending = sum(s.pending_acks for s in self._sources.values())
            if pending == 0 and self._fabric.total_in_flight() == 0:
                break
            self.step()
            executed += 1
        return executed

    def _flush_in_flight(self) -> None:
        """Deliver stranded in-flight traffic (and resulting acks)."""
        while True:
            drained = self._fabric.drain()
            if self._inbox is not None and not self._server_down:
                for message in self._inbox.drain(self._inbox.depth):
                    self._apply_message(message)
            acks = (
                [] if self._server_down else self._server.take_outbox()
            )
            for ack in acks:
                self._fabric.send_ack(ack)
            if drained == 0 and not acks:
                break

    def answers(self) -> list[QueryAnswer]:
        """Current answers for every active query.

        Each answer carries the liveness verdict for its source:
        ``staleness_ticks`` since the server last heard anything,
        ``confidence`` derived from the coasting filter's inflated
        covariance, and ``degraded=True`` once the silence exceeded the
        source's suspect deadline -- the honest "possibly dead" signal the
        plain value cannot convey.
        """
        out = []
        for query in self.registry.active_queries:
            source = self._sources.get(query.source_id)
            if source is None or not self._server.is_primed(query.source_id):
                continue
            value = self._server.value(query.source_id)
            live = self._server.liveness(query.source_id)
            if self._tel.enabled:
                self._tel.observe(
                    "staleness_at_answer_ticks",
                    int(live["staleness_ticks"]),
                    source_id=query.source_id,
                )
            out.append(
                QueryAnswer(
                    query_id=query.query_id,
                    source_id=query.source_id,
                    k=self._server.stats(query.source_id)["last_k"],
                    value=tuple(float(v) for v in value),
                    # The honest precision bound: overload shedding may
                    # have widened the effective δ (scale 1.0 leaves the
                    # figure bit-identical to the configured width).
                    precision=source.effective_min_delta,
                    staleness_ticks=int(live["staleness_ticks"]),
                    confidence=self._server.confidence(query.source_id),
                    # While the server process is down, clients read the
                    # cached last-known answer -- always degraded.
                    degraded=bool(live["suspect"]) or self._server_down,
                    quarantined=(
                        self._watchdog is not None
                        and self._watchdog.is_quarantined(query.source_id)
                    ),
                )
            )
        return out

    def answer(self, query_id: str) -> QueryAnswer:
        """The current answer for one query."""
        for candidate in self.answers():
            if candidate.query_id == query_id:
                return candidate
        raise UnknownSourceError(f"no answer available for query {query_id!r}")

    # Crash recovery -------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the full server filter bank to durable storage.

        Writes one atomic ``repro.ckpt-v1`` snapshot (per-source state
        vector, covariance, clock and sequence expectations) and
        truncates the WAL it supersedes.  Returns the framed size in
        bytes.

        Raises:
            ConfigurationError: When no checkpoint directory is
                configured or the server is down.
        """
        if self._ckpt is None:
            raise ConfigurationError(
                "checkpointing requires a ResilienceConfig with a "
                "checkpoint_dir"
            )
        if self._server_down:
            raise ConfigurationError("cannot checkpoint a dead server")
        snapshot = {
            "schema": CHECKPOINT_SCHEMA,
            "tick": self._ticks,
            "server_clock": self._server.clock,
            "sources": {
                source_id: self._server.export_source_state(source_id)
                for source_id in self._server.source_ids
            },
            "meta": {"recoveries": self._recoveries},
        }
        size = self._ckpt.save(snapshot)
        if self._tel.enabled:
            self._tel.emit(
                "checkpoint.write",
                bytes=size,
                sources=len(snapshot["sources"]),
            )
            self._tel.count("checkpoint_writes_total")
            self._tel.gauge("checkpoint_bytes", size)
        return size

    def crash_server(self) -> int:
        """Kill the central server process mid-run.

        Every in-memory filter dies with it; only the checkpoint and WAL
        survive.  Until :meth:`recover`, deliveries are dropped on the
        floor (the fabric still counts them delivered -- that is what
        happens to packets that reach a dead host), sources keep
        sampling and their un-acked messages age toward retransmission,
        and :meth:`answers` serves the cached last-known values flagged
        ``degraded``.  Returns the number of queued inbox messages lost.

        Raises:
            ConfigurationError: When resilience is not enabled (the
                non-resilient engine has no recovery path, so a crash
                would just be a broken simulation).
        """
        if self._resilience is None:
            raise ConfigurationError(
                "crash_server requires a ResilienceConfig"
            )
        if self._server_down:
            return 0
        self._server_down = True
        lost = self._inbox.clear() if self._inbox is not None else 0
        if self._tel.enabled:
            self._tel.emit(
                "server.crash", inbox_lost=lost
            )
            self._tel.count("server_crashes_total")
        return lost

    def recover(self) -> dict[str, int]:
        """Rebuild the server from the last checkpoint plus WAL replay.

        The recovery handshake:

        1. a fresh server registers every installed source (configs live
           in the engine, not the dead process);
        2. the checkpoint restores each source's ``(x, P, k)``, counters
           and sequence expectations;
        3. the WAL tail replays every update/resync applied since the
           snapshot, interleaving the prediction steps the original run
           performed (the filter arithmetic is deterministic, so replay
           reconstructs the exact pre-crash estimates);
        4. each filter rolls forward to the present (it predicted
           nothing while dead, its mirror predicted every tick);
        5. sources whose sequence numbers advanced past what the
           restored server expects are asked for a resync snapshot --
           the same message that heals a lossy link heals a reborn
           server.

        Returns a summary dict (``restored_sources``, ``wal_replayed``,
        ``resync_requests``, ``dropped_while_down``).
        """
        if self._resilience is None:
            raise ConfigurationError("recover requires a ResilienceConfig")
        dropped = self._dropped_while_down
        self._server = DKFServer(
            strict=False,
            emit_acks=True,
            telemetry=self._tel,
            track_health=self._track_health,
        )
        self._server_down = False
        self._dropped_while_down = 0
        for source_id, source in self._sources.items():
            self._server.register(
                source_id,
                source.config,
                transport=self._transports.get(source_id) or TransportPolicy(),
            )
        snapshot = self._ckpt.load() if self._ckpt is not None else None
        restored = 0
        if snapshot is not None:
            for source_id, data in snapshot["sources"].items():
                if source_id in self._server.source_ids:
                    self._server.import_source_state(source_id, data)
                    restored += 1
        replayed = self._replay_wal() if self._ckpt is not None else 0
        # Roll each restored filter forward to the present: the mirror
        # predicted once per sampled instant while the server was dead.
        for source_id, source in self._sources.items():
            if not self._server.is_primed(source_id) or not source.primed:
                continue
            behind = source.mirror.k - self._server.filter_clock(source_id)
            last_k = int(self._server.stats(source_id)["last_k"])
            for i in range(max(0, behind)):
                self._server.tick(source_id, last_k + i + 1)
        self._server.advance_clock(self._ticks)
        # Replay re-derived acks for messages whose originals were acked
        # before the crash; re-sending them would be duplicate traffic.
        self._server.take_outbox()
        resyncs = 0
        for source_id, source in self._sources.items():
            if not source.primed:
                continue
            if (
                source.next_seq
                != self._server.stats(source_id)["expected_seq"]
            ):
                source.request_resync()
                resyncs += 1
        self._recoveries += 1
        if self._tel.enabled:
            self._tel.emit(
                "recovery.replay",
                restored_sources=restored,
                wal_replayed=replayed,
                resync_requests=resyncs,
                dropped_while_down=dropped,
            )
            self._tel.count("recoveries_total")
        return {
            "restored_sources": restored,
            "wal_replayed": replayed,
            "resync_requests": resyncs,
            "dropped_while_down": dropped,
        }

    def _replay_wal(self) -> int:
        """Apply the WAL tail to a freshly restored server."""
        self._replaying = True
        count = 0
        try:
            for record in self._ckpt.wal_records():
                source_id = record.get("source_id")
                if source_id not in self._server.source_ids:
                    continue
                k = int(record["k"])
                last_k = int(self._server.stats(source_id)["last_k"])
                # Interleave the prediction steps the original run
                # performed between the previous applied message and
                # this one (one per sampled instant).
                for t in range(last_k + 1, k + 1):
                    self._server.tick(source_id, t)
                # The live run delivered this message while the server
                # clock sat at its sampling instant (zero-latency links
                # deliver inside the same step), so replay matches that
                # clock exactly -- last_contact comes out bit-identical.
                self._server.advance_clock(k)
                if record["kind"] == "resync":
                    message = ResyncMessage(
                        source_id=source_id,
                        seq=int(record["seq"]),
                        k=k,
                        x=np.asarray(record["x"], dtype=float),
                        p=np.asarray(record["p"], dtype=float),
                        value=np.asarray(record["value"], dtype=float),
                    )
                else:
                    message = UpdateMessage(
                        source_id=source_id,
                        seq=int(record["seq"]),
                        k=k,
                        value=np.asarray(record["value"], dtype=float),
                    )
                self._server.receive(message)
                count += 1
        finally:
            self._replaying = False
        return count

    def resilience_report(self) -> dict[str, object]:
        """Summary of every resilience guard's activity this run."""
        report: dict[str, object] = {
            "enabled": self._resilience is not None,
            "recoveries": self._recoveries,
            "server_down": self._server_down,
            "dropped_while_down": self._dropped_while_down,
        }
        if self._inbox is not None:
            report["inbox"] = {
                "depth": self._inbox.depth,
                "accepted": self._inbox.accepted,
                "dropped": self._inbox.dropped,
            }
        if self._watchdog is not None:
            report["watchdog"] = self._watchdog.report()
        if self._supervisor is not None:
            report["supervisor"] = self._supervisor.report()
        if self._overload is not None:
            report["overload"] = self._overload.report()
            report["shed_ledger"] = self._overload.ledger()
        if self._autoscaler is not None:
            report["autoscale"] = self._autoscaler.report()
        return report

    def report(self) -> EngineReport:
        """System-wide traffic and energy summary."""
        per_source_energy = {}
        readings = 0
        updates = 0
        retransmits = 0
        heartbeats = 0
        corrupted = 0
        acks_delivered = 0
        for source_id, source in self._sources.items():
            stats = self._fabric.stats_for(source_id)
            model = source.config.model
            per_source_energy[source_id] = self._energy.report(
                bytes_sent=stats.bytes_delivered,
                filter_steps=source.samples_seen,
                state_dim=model.state_dim,
                measurement_dim=model.measurement_dim,
                smoothing_steps=source.samples_seen if source.config.smoothed else 0,
            )
            readings += source.samples_seen
            # Offered-side traffic comes from the fabric ledger, not the
            # source: DKFSource.reset() wipes its counters on a crash /
            # restart, while LinkStats span the source's whole lifetime
            # -- the conservation law must survive mid-run restarts.
            updates += stats.offered - stats.resyncs - stats.heartbeats
            retransmits += stats.resyncs
            heartbeats += stats.heartbeats
            corrupted += stats.corrupted
            acks_delivered += stats.acks_delivered
        return EngineReport(
            ticks=self._ticks,
            readings=readings,
            updates_sent=updates,
            bytes_delivered=self._fabric.total_bytes(),
            messages_lost=self._fabric.total_lost(),
            in_flight=self._fabric.total_in_flight(),
            retransmits=retransmits,
            heartbeats=heartbeats,
            corrupted=corrupted,
            acks_delivered=acks_delivered,
            per_source_energy=per_source_energy,
        )

    def obs_snapshot(self, meta: dict | None = None) -> dict:
        """Telemetry snapshot of this run (``repro.obs/v2`` schema).

        Merges the engine's traffic report into ``meta`` so a snapshot is
        self-describing even when telemetry was disabled (counters empty).
        Building the snapshot flushes the final tick into the metric
        history, so the exported series cover the whole run.
        """
        merged = {"ticks": self._ticks, "report": self.report().to_dict()}
        if self._resilience is not None:
            merged["resilience"] = self.resilience_report()
        if meta:
            merged.update(meta)
        return build_snapshot(self._tel, meta=merged)
