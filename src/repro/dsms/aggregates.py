"""Aggregate continuous queries over predicted values.

The DKF guarantees each source's server-side value is within its δ_i of
the (smoothed) reading.  Those per-source bounds propagate through
aggregates by interval arithmetic, so the server can answer SUM / AVG /
MIN / MAX queries *across sources* with a certified error bound and zero
extra communication:

* ``SUM``:  value = Σ v̂_i,      bound = Σ δ_i
* ``AVG``:  value = Σ v̂_i / t,  bound = Σ δ_i / t
* ``MIN``:  the true minimum lies in [min(v̂_i − δ_i), min(v̂_i + δ_i)];
  the midpoint is reported with half the interval as the bound
* ``MAX``:  symmetric to MIN

This is the precision-bounded-aggregation capability the STREAM line of
work pursues, rebuilt on predicted (rather than cached) values.  Only
scalar sources participate; a vector source contributes the component the
query names.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.dsms.engine import StreamEngine
from repro.errors import ConfigurationError, QueryError, UnknownSourceError

__all__ = ["AggregateKind", "AggregateQuery", "AggregateAnswer", "answer_aggregate"]


class AggregateKind(str, Enum):
    """Supported aggregate functions."""

    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateQuery:
    """A continuous aggregate over several sources' current values.

    Attributes:
        kind: The aggregate function.
        source_ids: Sources aggregated over (at least one).
        component: Which measured component of each source participates
            (0 for scalar sources).
        query_id: Identifier for reporting.
    """

    kind: AggregateKind
    source_ids: tuple[str, ...]
    component: int = 0
    query_id: str = "aggregate"

    def __post_init__(self) -> None:
        if not self.source_ids:
            raise ConfigurationError("aggregate needs at least one source")
        if self.component < 0:
            raise ConfigurationError("component must be non-negative")
        object.__setattr__(self, "kind", AggregateKind(self.kind))
        object.__setattr__(self, "source_ids", tuple(self.source_ids))


@dataclass(frozen=True)
class AggregateAnswer:
    """A certified aggregate answer.

    Attributes:
        query_id: The originating query.
        kind: The aggregate function.
        value: The point answer.
        error_bound: Half-width of the certified interval: the true
            aggregate of the sources' (smoothed) readings lies within
            ``value ± error_bound`` whenever every per-source DKF bound
            held at this instant.
        lower / upper: The certified interval endpoints.
    """

    query_id: str
    kind: AggregateKind
    value: float
    error_bound: float

    @property
    def lower(self) -> float:
        """Certified lower endpoint of the answer interval."""
        return self.value - self.error_bound

    @property
    def upper(self) -> float:
        """Certified upper endpoint of the answer interval."""
        return self.value + self.error_bound


def _source_intervals(
    engine: StreamEngine, query: AggregateQuery
) -> tuple[np.ndarray, np.ndarray]:
    """Per-source value and δ arrays for the queried component."""
    values = []
    deltas = []
    for source_id in query.source_ids:
        if not engine.server.is_primed(source_id):
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        vector = engine.server.value(source_id)
        if query.component >= vector.shape[0]:
            raise QueryError(
                f"source {source_id!r} has no component {query.component}"
            )
        source = engine._sources.get(source_id)  # noqa: SLF001 - engine API
        if source is None:
            raise UnknownSourceError(f"source {source_id!r} has no active DKF")
        delta_vec = source.config.delta_vector()
        values.append(float(vector[query.component]))
        deltas.append(float(delta_vec[query.component]))
    return np.array(values), np.array(deltas)


def answer_aggregate(engine: StreamEngine, query: AggregateQuery) -> AggregateAnswer:
    """Answer an aggregate query from the engine's current predictions.

    The bound is *conditional* on each per-source guarantee holding at
    this instant, which the DKF provides at decision instants; between
    decisions (adaptive sampling's skipped instants) the bound is best
    effort, matching the underlying guarantee.
    """
    values, deltas = _source_intervals(engine, query)
    if query.kind is AggregateKind.SUM:
        return AggregateAnswer(
            query_id=query.query_id,
            kind=query.kind,
            value=float(values.sum()),
            error_bound=float(deltas.sum()),
        )
    if query.kind is AggregateKind.AVG:
        return AggregateAnswer(
            query_id=query.query_id,
            kind=query.kind,
            value=float(values.mean()),
            error_bound=float(deltas.sum() / len(deltas)),
        )
    if query.kind is AggregateKind.MIN:
        low = float(np.min(values - deltas))
        high = float(np.min(values + deltas))
    else:  # MAX
        low = float(np.max(values - deltas))
        high = float(np.max(values + deltas))
    return AggregateAnswer(
        query_id=query.query_id,
        kind=query.kind,
        value=(low + high) / 2.0,
        error_bound=(high - low) / 2.0,
    )
