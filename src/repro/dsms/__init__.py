"""DSMS substrate: continuous queries, source registry, simulated network
fabric, sensor energy model, the multi-source engine, and Kalman stream
synopses."""

from repro.dsms.aggregates import (
    AggregateAnswer,
    AggregateKind,
    AggregateQuery,
    answer_aggregate,
)
from repro.dsms.energy import EnergyModel, EnergyReport
from repro.dsms.faults import FaultSchedule, GilbertElliottLoss
from repro.dsms.history import HistoryStore
from repro.dsms.engine import EngineReport, StreamEngine
from repro.dsms.network import LinkConfig, LinkStats, NetworkFabric
from repro.dsms.query import ContinuousQuery, QueryAnswer
from repro.dsms.registry import SourceDescriptor, SourceRegistry
from repro.dsms.synopsis import KalmanSynopsis, SynopsisStats
from repro.dsms.windows import WindowedAggregator

__all__ = [
    "AggregateAnswer",
    "AggregateKind",
    "AggregateQuery",
    "answer_aggregate",
    "ContinuousQuery",
    "EnergyModel",
    "EnergyReport",
    "EngineReport",
    "FaultSchedule",
    "GilbertElliottLoss",
    "HistoryStore",
    "KalmanSynopsis",
    "LinkConfig",
    "LinkStats",
    "NetworkFabric",
    "QueryAnswer",
    "SourceDescriptor",
    "SourceRegistry",
    "StreamEngine",
    "SynopsisStats",
    "WindowedAggregator",
]
