"""Historical queries over a stored stream synopsis.

A :class:`~repro.dsms.synopsis.KalmanSynopsis` stores only the transmitted
updates, yet can answer questions about *any* past instant within the
tolerance.  :class:`HistoryStore` packages that access pattern:

* ``value_at(k)`` -- the reconstructed value at instant ``k``;
* ``range_values(a, b)`` -- a slice of the reconstruction;
* ``window_aggregate(kind, a, b)`` -- a certified aggregate over a past
  window, with the bound inherited from the synopsis tolerance.

The full reconstruction is materialised lazily on first access and cached;
ingesting more data invalidates the cache.  This gives O(1) repeated
historical reads at O(n) memory only while historical access is actually
in use -- the stored state remains the compact update log.
"""

from __future__ import annotations

import numpy as np

from repro.dsms.aggregates import AggregateAnswer, AggregateKind
from repro.dsms.synopsis import KalmanSynopsis
from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream

__all__ = ["HistoryStore"]


class HistoryStore:
    """Point and range queries over a synopsis's reconstruction.

    Args:
        synopsis: The backing synopsis (already ingested, or ingested
            through :meth:`ingest`).
    """

    def __init__(self, synopsis: KalmanSynopsis) -> None:
        self._synopsis = synopsis
        self._cache: MaterializedStream | None = None

    @property
    def synopsis(self) -> KalmanSynopsis:
        """The backing synopsis."""
        return self._synopsis

    @property
    def tolerance(self) -> float:
        """Per-instant error tolerance of every answer."""
        return self._synopsis.stats().tolerance

    def ingest(self, stream: MaterializedStream) -> None:
        """Ingest a stream into the backing synopsis (invalidates cache)."""
        self._synopsis.ingest(stream)
        self._cache = None

    def _reconstruction(self) -> MaterializedStream:
        if self._cache is None:
            self._cache = self._synopsis.reconstruct()
        return self._cache

    def __len__(self) -> int:
        return len(self._reconstruction())

    def value_at(self, k: int) -> np.ndarray:
        """The stream's value at past instant ``k``, within tolerance."""
        reconstruction = self._reconstruction()
        if not 0 <= k < len(reconstruction):
            raise ConfigurationError(
                f"instant {k} outside the stored range [0, {len(reconstruction)})"
            )
        return reconstruction[k].value.copy()

    def range_values(self, start: int, stop: int) -> np.ndarray:
        """Values over ``[start, stop)`` as an array of shape
        ``(stop - start, dim)``."""
        reconstruction = self._reconstruction()
        if not 0 <= start <= stop <= len(reconstruction):
            raise ConfigurationError(
                f"range [{start}, {stop}) outside [0, {len(reconstruction)}]"
            )
        return reconstruction.values()[start:stop]

    def window_aggregate(
        self, kind: AggregateKind | str, start: int, stop: int, component: int = 0
    ) -> AggregateAnswer:
        """Certified aggregate over the past window ``[start, stop)``.

        Bounds follow :mod:`repro.dsms.windows`: SUM scales with the window
        length, AVG/MIN/MAX carry the per-instant tolerance.
        """
        kind = AggregateKind(kind)
        values = self.range_values(start, stop)
        if values.size == 0:
            raise ConfigurationError("window is empty")
        if component >= values.shape[1]:
            raise ConfigurationError(
                f"component {component} out of range for dim {values.shape[1]}"
            )
        series = values[:, component]
        delta = self.tolerance
        if kind is AggregateKind.SUM:
            value, bound = float(series.sum()), delta * len(series)
        elif kind is AggregateKind.AVG:
            value, bound = float(series.mean()), delta
        elif kind is AggregateKind.MIN:
            value, bound = float(series.min()), delta
        else:
            value, bound = float(series.max()), delta
        return AggregateAnswer(
            query_id=f"history-{kind.value}[{start}:{stop}]",
            kind=kind,
            value=value,
            error_bound=bound,
        )
