"""Continuous queries with precision constraints (paper Section 3.1,
Table 2).

A :class:`ContinuousQuery` ``q_j`` targets one source ``s_i`` and carries a
precision width ``Delta_j`` plus the optional smoothing factor ``F_i``.
The paper assumes one query per source (``Delta_j = delta_i``); the engine
relaxes that (Section 6 future-work item 4): several queries may target the
same source, and the *tightest* precision drives the installed filter, so
every query's constraint is satisfied simultaneously.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ContinuousQuery", "QueryAnswer"]

_query_counter = itertools.count(1)


@dataclass(frozen=True)
class ContinuousQuery:
    """One continuous query over a streaming source.

    Attributes:
        source_id: The target source ``s_i``.
        delta: Precision width ``Delta_j`` the answer must satisfy.
        smoothing_f: Optional smoothing factor ``F_i`` (Section 4.3); when
            several queries on one source disagree, the smallest F (least
            smoothing... largest fidelity) wins.
        query_id: Unique identifier, auto-assigned when omitted.
    """

    source_id: str
    delta: float
    smoothing_f: float | None = None
    query_id: str = field(default="")

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(
                f"query precision must be positive, got {self.delta}"
            )
        if self.smoothing_f is not None and self.smoothing_f < 0:
            raise ConfigurationError("smoothing factor must be non-negative")
        if not self.query_id:
            object.__setattr__(self, "query_id", f"q{next(_query_counter)}")


@dataclass(frozen=True)
class QueryAnswer:
    """A point-in-time answer to a continuous query.

    Attributes:
        query_id: The answered query.
        source_id: The underlying source.
        k: Sampling instant the answer corresponds to.
        value: The server's estimate (tuple of floats for stability).
        precision: The precision width the answer is guaranteed within
            (the source's installed δ, which is <= the query's Δ).
        staleness_ticks: Server-clock ticks since the source was last
            heard from (any message, heartbeats included).  Small values
            are normal -- silence *is* the protocol -- but they are
            bounded by the heartbeat interval while the source lives.
        confidence: ``delta / (delta + sigma)`` where sigma is the
            predicted-measurement standard deviation of the (possibly
            coasting) server filter: near 1 right after a correction,
            decaying toward 0 the longer the filter extrapolates
            unchecked.
        degraded: True once the source has been silent past its liveness
            deadline -- the answer may still be the best available, but
            the "within δ" guarantee no longer stands and the source may
            be dead.
        quarantined: True while the divergence watchdog holds the stream
            on its top escalation rung: the estimate failed health checks
            (non-finite state, covariance damage, NIS runaway) that
            remediation has not yet cured, so the value must not be
            trusted even when it looks plausible.
        consensus_error: Additional error bound contributed by federated
            consensus: the answer is guaranteed within
            ``precision + consensus_error`` of the source's true value.
            0.0 on single-server engines (the answer is the home
            filter's own estimate) and on federation answers served
            directly by a fresh home; positive when the serving peer's
            estimate was fused from, or proxied across, peer replicas
            whose views may disagree.
    """

    query_id: str
    source_id: str
    k: int
    value: tuple[float, ...]
    precision: float
    staleness_ticks: int = 0
    confidence: float = 1.0
    degraded: bool = False
    quarantined: bool = False
    consensus_error: float = 0.0
