"""Stream synopsis under a reconstruction-error tolerance (paper Section 6,
final future-work item: "applications of the Kalman Filter for storing
stream summaries/synopsis under the constraint of specified reconstruction
error tolerance").

The insight is that the DKF's update stream *is* a synopsis: the server can
re-create the whole stream within δ by replaying the transmitted updates
through the filter.  :class:`KalmanSynopsis` packages that: it ingests a
stream through a DKF pair, stores only the transmitted (k, value) pairs
plus the model, and reconstructs the full series on demand.  The
compression ratio is exactly the paper's bandwidth saving, re-purposed as a
storage saving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream, stream_from_values

__all__ = ["KalmanSynopsis", "SynopsisStats"]


@dataclass(frozen=True)
class SynopsisStats:
    """Size accounting for a stored synopsis.

    Attributes:
        original_records: Records in the ingested stream.
        stored_updates: Update points retained.
        tolerance: The reconstruction tolerance δ the synopsis guarantees
            (per measured component, at ingestion decision points).
    """

    original_records: int
    stored_updates: int
    tolerance: float

    @property
    def compression_ratio(self) -> float:
        """``original / stored`` (higher is better; >= 1)."""
        if self.stored_updates == 0:
            return float("inf")
        return self.original_records / self.stored_updates


class KalmanSynopsis:
    """Lossy stream synopsis with a per-point error tolerance.

    Args:
        config: DKF configuration; ``config.delta`` is the reconstruction
            tolerance.  Smoothing configs are rejected -- a synopsis of the
            smoothed stream would not reconstruct the raw one.
    """

    def __init__(self, config: DKFConfig) -> None:
        if config.smoothed:
            raise ConfigurationError(
                "synopsis requires an unsmoothed config (tolerance is "
                "relative to the raw stream)"
            )
        self._config = config
        self._updates: list[tuple[int, np.ndarray]] = []
        self._length = 0
        self._stream_name = ""
        self._interval = 1.0

    @property
    def config(self) -> DKFConfig:
        """The configuration the synopsis was built with."""
        return self._config

    @property
    def updates(self) -> list[tuple[int, np.ndarray]]:
        """The stored (k, value) update points (copies)."""
        return [(k, v.copy()) for k, v in self._updates]

    def ingest(self, stream: MaterializedStream) -> SynopsisStats:
        """Compress a stream, keeping only the DKF's transmitted updates."""
        session = DKFSession(self._config)
        self._updates = []
        self._length = len(stream)
        self._stream_name = stream.name
        self._interval = stream.sampling_interval
        for record in stream:
            decision = session.observe(record)
            if decision.sent:
                self._updates.append((record.k, decision.source_value.copy()))
        return self.stats()

    def stats(self) -> SynopsisStats:
        """Current size accounting."""
        return SynopsisStats(
            original_records=self._length,
            stored_updates=len(self._updates),
            tolerance=self._config.min_delta,
        )

    def reconstruct_smoothed(self) -> MaterializedStream:
        """Re-create the stream with an RTS backward pass over the updates.

        Online reconstruction (:meth:`reconstruct`) is causal: between
        stored updates it extrapolates forward only.  Offline, the *next*
        stored update is also known, and a Rauch-Tung-Striebel smoothing
        pass interpolates between updates instead of extrapolating into
        them.

        **When to prefer which.**  RTS smoothing improves reconstruction
        when the stored log looks like ordinary noisy sampling of a
        model-matched process (see the :mod:`repro.filters.rts` tests).
        A δ-triggered DKF log is *not* that: updates land exactly where
        the online prediction failed (manoeuvres, trend breaks), so the
        causal replay is already within δ at every decision instant by
        construction -- a guarantee the smoothed trace does not inherit,
        and with the paper's small nominal Q/R the backward pass can
        blend across genuine trend breaks and do worse.  Treat this as
        the offline-analysis option, not the default.
        """
        from repro.filters.rts import OfflineKalmanSmoother

        if self._length == 0:
            return stream_from_values(np.empty((0, 1)), name="synopsis")
        if not self._updates or self._updates[0][0] != 0:
            raise ConfigurationError(
                "smoothed reconstruction requires an update at instant 0"
            )
        log: list[np.ndarray | None] = [None] * self._length
        for k, value in self._updates:
            log[k] = value
        smoother = OfflineKalmanSmoother(
            self._config.model, p0_scale=self._config.p0_scale
        )
        trajectory = smoother.smooth(log)
        return stream_from_values(
            trajectory.smoothed_measurements,
            name=f"{self._stream_name}[synopsis-rts]",
            sampling_interval=self._interval,
        )

    def reconstruct(self) -> MaterializedStream:
        """Re-create the full stream by replaying updates through ``KF_s``.

        Reconstruction performs exactly the server-side operations of the
        original ingestion -- predict each instant, correct at stored
        update instants -- so the reconstructed value at each instant
        equals the value the server held online, which was within δ of the
        original at every decision point.
        """
        if self._length == 0:
            return stream_from_values(np.empty((0, 1)), name="synopsis")
        update_iter = iter(self._updates)
        next_update = next(update_iter, None)

        filter_ = None
        values = []
        for k in range(self._length):
            if filter_ is not None:
                filter_.predict()
                value = filter_.predict_measurement()
            else:
                value = None
            if next_update is not None and next_update[0] == k:
                update_value = next_update[1]
                if filter_ is None:
                    filter_ = self._config.model.build_filter(
                        update_value, p0_scale=self._config.p0_scale
                    )
                else:
                    filter_.update(update_value)
                value = update_value
                next_update = next(update_iter, None)
            if value is None:
                raise ConfigurationError(
                    "synopsis is empty before the first stored update"
                )
            values.append(np.atleast_1d(value))
        return stream_from_values(
            np.stack(values),
            name=f"{self._stream_name}[synopsis]",
            sampling_interval=self._interval,
        )

    def save(self, path) -> None:
        """Persist the synopsis's update log to a CSV file.

        The file stores the metadata row (stream name, length, sampling
        interval, tolerance) followed by one ``k, v0, v1, ...`` row per
        stored update.  The state-space model is *not* serialised -- the
        loader must supply the same :class:`~repro.dkf.config.DKFConfig`,
        which is also what guarantees the reconstruction semantics.
        """
        import csv
        from pathlib import Path

        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                [
                    "meta",
                    self._stream_name,
                    self._length,
                    repr(self._interval),
                    repr(self._config.min_delta),
                ]
            )
            for k, value in self._updates:
                writer.writerow([k] + [repr(float(v)) for v in value])

    @classmethod
    def load(cls, path, config: DKFConfig) -> "KalmanSynopsis":
        """Restore a synopsis saved by :meth:`save`.

        Args:
            path: The CSV file.
            config: The DKF configuration the synopsis was built with.
                A mismatched tolerance is rejected (the stored guarantee
                would be misrepresented); a mismatched model silently
                changes reconstruction and is the caller's responsibility.
        """
        import csv
        from pathlib import Path

        path = Path(path)
        synopsis = cls(config)
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            meta = next(reader)
            if not meta or meta[0] != "meta":
                raise ConfigurationError(f"{path} is not a synopsis file")
            synopsis._stream_name = meta[1]
            synopsis._length = int(meta[2])
            synopsis._interval = float(meta[3])
            stored_tolerance = float(meta[4])
            if abs(stored_tolerance - config.min_delta) > 1e-12:
                raise ConfigurationError(
                    f"synopsis was stored with tolerance {stored_tolerance}, "
                    f"config has {config.min_delta}"
                )
            for row in reader:
                synopsis._updates.append(
                    (int(row[0]), np.array([float(v) for v in row[1:]]))
                )
        return synopsis

    def reconstruction_error(self, original: MaterializedStream) -> float:
        """Max per-component error of the reconstruction vs the original."""
        rebuilt = self.reconstruct()
        if len(rebuilt) != len(original):
            raise ConfigurationError(
                "original stream length does not match the ingested one"
            )
        return float(
            np.max(np.abs(rebuilt.values() - original.values()))
        )
