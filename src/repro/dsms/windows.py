"""Sliding-window aggregates over a single stream's server-side values.

DSMS queries are often *windowed* ("average load over the last 24 h").
The server never has the raw stream -- only its DKF-predicted values --
but each per-instant value carries the δ guarantee, so window aggregates
inherit certified bounds by interval arithmetic:

* window ``SUM``:  bound = w · δ  (w = current window occupancy)
* window ``AVG``:  bound = δ
* window ``MIN`` / ``MAX``: interval of the per-instant intervals, as in
  :mod:`repro.dsms.aggregates`.

:class:`WindowedAggregator` is push-based: feed it the server value at
every sampling instant (e.g. from a
:class:`~repro.scheme.SchemeDecision`), read any aggregate at any time.
Min/max use monotonic deques, so every operation is amortised O(1).
"""

from __future__ import annotations

from collections import deque

from repro.dsms.aggregates import AggregateAnswer, AggregateKind
from repro.errors import ConfigurationError

__all__ = ["WindowedAggregator"]


class WindowedAggregator:
    """Certified sliding-window aggregates over one scalar value stream.

    Args:
        window: Window length in sampling instants.
        delta: The per-instant precision width of the fed values (the
            source's δ).
    """

    def __init__(self, window: int, delta: float) -> None:
        if window < 1:
            raise ConfigurationError("window must be positive")
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        self._window = window
        self._delta = float(delta)
        self._values: deque[float] = deque(maxlen=window)
        self._sum = 0.0
        # Monotonic deques of (index, value) for O(1) min/max.
        self._min_q: deque[tuple[int, float]] = deque()
        self._max_q: deque[tuple[int, float]] = deque()
        self._count = 0

    @property
    def window(self) -> int:
        """The configured window length."""
        return self._window

    @property
    def occupancy(self) -> int:
        """Values currently inside the window."""
        return len(self._values)

    @property
    def primed(self) -> bool:
        """Whether at least one value has been pushed."""
        return bool(self._values)

    def push(self, value: float) -> None:
        """Feed the server value for the next sampling instant."""
        value = float(value)
        if len(self._values) == self._window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value
        index = self._count
        self._count += 1
        expired = index - self._window  # Indices <= expired left the window.
        while self._min_q and self._min_q[0][0] <= expired:
            self._min_q.popleft()
        while self._max_q and self._max_q[0][0] <= expired:
            self._max_q.popleft()
        while self._min_q and self._min_q[-1][1] >= value:
            self._min_q.pop()
        while self._max_q and self._max_q[-1][1] <= value:
            self._max_q.pop()
        self._min_q.append((index, value))
        self._max_q.append((index, value))

    def _require_primed(self) -> None:
        if not self._values:
            raise ConfigurationError("no values pushed yet")

    def sum(self) -> AggregateAnswer:
        """Window SUM with bound ``occupancy * delta``."""
        self._require_primed()
        return AggregateAnswer(
            query_id="window-sum",
            kind=AggregateKind.SUM,
            value=self._sum,
            error_bound=len(self._values) * self._delta,
        )

    def avg(self) -> AggregateAnswer:
        """Window AVG with bound ``delta``."""
        self._require_primed()
        return AggregateAnswer(
            query_id="window-avg",
            kind=AggregateKind.AVG,
            value=self._sum / len(self._values),
            error_bound=self._delta,
        )

    def min(self) -> AggregateAnswer:
        """Window MIN: true min lies in [min - delta, min + delta]."""
        self._require_primed()
        low = self._min_q[0][1]
        return AggregateAnswer(
            query_id="window-min",
            kind=AggregateKind.MIN,
            value=low,
            error_bound=self._delta,
        )

    def max(self) -> AggregateAnswer:
        """Window MAX: true max lies in [max - delta, max + delta]."""
        self._require_primed()
        high = self._max_q[0][1]
        return AggregateAnswer(
            query_id="window-max",
            kind=AggregateKind.MAX,
            value=high,
            error_bound=self._delta,
        )

    def reset(self) -> None:
        """Empty the window and counters."""
        self._values.clear()
        self._sum = 0.0
        self._min_q.clear()
        self._max_q.clear()
        self._count = 0
