"""Source registry: which sources exist, which queries target them, and
which DKF configuration each source should run.

The registry resolves the paper's installation step: "when a continuous
query q_j with a precision constraint Delta_j is presented to the server on
source object s_i, a Kalman Filter KF_s^i is installed at the main server
[and] a mirror KF is activated at the remote source."  With multiple
queries per source (future-work item 4), the effective precision is the
minimum Δ over the source's active queries, so all constraints hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dkf.config import DKFConfig
from repro.dsms.query import ContinuousQuery
from repro.errors import DuplicateSourceError, QueryError, UnknownSourceError
from repro.filters.models import StateSpaceModel

__all__ = ["SourceDescriptor", "SourceRegistry"]


@dataclass
class SourceDescriptor:
    """A registered streaming source and its active queries.

    Attributes:
        source_id: Identifier ``s_i``.
        model: The state-space model this source's streams follow.
        queries: Active continuous queries targeting the source.
        default_smoothing_r: Measurement variance for an installed
            smoothing filter.
    """

    source_id: str
    model: StateSpaceModel
    queries: dict[str, ContinuousQuery] = field(default_factory=dict)
    default_smoothing_r: float = 1.0

    @property
    def effective_delta(self) -> float:
        """Tightest precision over the active queries."""
        if not self.queries:
            raise QueryError(f"source {self.source_id!r} has no active queries")
        return min(q.delta for q in self.queries.values())

    @property
    def effective_smoothing_f(self) -> float | None:
        """Least-smoothing F over the active queries (None when no query
        requests smoothing: smoothing is opt-in)."""
        fs = [
            q.smoothing_f
            for q in self.queries.values()
            if q.smoothing_f is not None
        ]
        if not fs:
            return None
        return max(fs)  # Larger F = less smoothing = higher fidelity.

    def build_config(self) -> DKFConfig:
        """The DKF configuration this source should currently run."""
        return DKFConfig(
            model=self.model,
            delta=self.effective_delta,
            smoothing_f=self.effective_smoothing_f,
            smoothing_r=self.default_smoothing_r,
        )


class SourceRegistry:
    """Registry of sources and the query -> source mapping."""

    def __init__(self) -> None:
        self._sources: dict[str, SourceDescriptor] = {}
        self._query_index: dict[str, str] = {}

    def register_source(
        self,
        source_id: str,
        model: StateSpaceModel,
        default_smoothing_r: float = 1.0,
    ) -> SourceDescriptor:
        """Declare a streaming source and the model that fits it."""
        if source_id in self._sources:
            raise DuplicateSourceError(f"source {source_id!r} already registered")
        descriptor = SourceDescriptor(
            source_id=source_id,
            model=model,
            default_smoothing_r=default_smoothing_r,
        )
        self._sources[source_id] = descriptor
        return descriptor

    def source(self, source_id: str) -> SourceDescriptor:
        """The descriptor for ``source_id`` (raises if unknown)."""
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(f"source {source_id!r} not registered") from None

    @property
    def source_ids(self) -> list[str]:
        """Identifiers of all registered sources."""
        return list(self._sources)

    def add_query(self, query: ContinuousQuery) -> SourceDescriptor:
        """Attach a query to its source; returns the (updated) descriptor.

        The caller (the engine) is responsible for re-installing the
        source's DKF when the effective δ or F changed.
        """
        descriptor = self.source(query.source_id)
        if query.query_id in self._query_index:
            raise QueryError(f"query {query.query_id!r} already active")
        descriptor.queries[query.query_id] = query
        self._query_index[query.query_id] = query.source_id
        return descriptor

    def remove_query(self, query_id: str) -> SourceDescriptor:
        """Detach a query; returns the descriptor it was attached to."""
        try:
            source_id = self._query_index.pop(query_id)
        except KeyError:
            raise QueryError(f"query {query_id!r} not active") from None
        descriptor = self._sources[source_id]
        del descriptor.queries[query_id]
        return descriptor

    def queries_for(self, source_id: str) -> list[ContinuousQuery]:
        """Active queries targeting one source."""
        return list(self.source(source_id).queries.values())

    def query(self, query_id: str) -> ContinuousQuery:
        """Look up an active query by id (raises if unknown)."""
        try:
            source_id = self._query_index[query_id]
        except KeyError:
            raise QueryError(f"query {query_id!r} not active") from None
        return self._sources[source_id].queries[query_id]

    @property
    def active_queries(self) -> list[ContinuousQuery]:
        """Every active query across all sources."""
        return [
            q for d in self._sources.values() for q in d.queries.values()
        ]
