"""Simulated network fabric for multi-source deployments.

One :class:`NetworkFabric` carries the links between every remote source
and the central server.  Each link wraps a
:class:`~repro.dkf.protocol.Channel` with optional latency (delivery after
a fixed number of ticks) and loss, and the fabric aggregates traffic
accounting across links so the engine can report system-wide bandwidth.

Latency model: a message sent at tick ``t`` with link latency ``L`` is
delivered when :meth:`NetworkFabric.advance` reaches tick ``t + L``.
Zero-latency links (the default, and what the paper's experiments assume
on a LAN) deliver synchronously inside ``send``.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.dkf.protocol import ResyncMessage, UpdateMessage
from repro.errors import ConfigurationError, UnknownSourceError

__all__ = ["LinkConfig", "NetworkFabric", "LinkStats"]

Message = UpdateMessage | ResyncMessage


@dataclass(frozen=True)
class LinkConfig:
    """Per-link parameters.

    Attributes:
        latency_ticks: Delivery delay in engine ticks (0 = synchronous).
        loss_fn: Optional predicate ``(message_index) -> bool``; True
            drops that update message (resyncs are never dropped).
    """

    latency_ticks: int = 0
    loss_fn: Callable[[int], bool] | None = None

    def __post_init__(self) -> None:
        if self.latency_ticks < 0:
            raise ConfigurationError("latency_ticks must be non-negative")


@dataclass
class LinkStats:
    """Traffic counters for one link."""

    offered: int = 0
    delivered: int = 0
    lost: int = 0
    bytes_delivered: int = 0
    resyncs: int = 0
    in_flight: int = 0


class NetworkFabric:
    """All source-to-server links plus global traffic accounting."""

    def __init__(self, deliver: Callable[[Message], None]) -> None:
        self._deliver = deliver
        self._links: dict[str, LinkConfig] = {}
        self._stats: dict[str, LinkStats] = {}
        self._tick = 0
        self._queue: list[tuple[int, int, Message]] = []
        self._seq = 0  # Tie-breaker preserving FIFO order per delivery tick.

    def add_link(self, source_id: str, config: LinkConfig | None = None) -> None:
        """Attach a link for a source."""
        if source_id in self._links:
            raise ConfigurationError(f"link for {source_id!r} already exists")
        self._links[source_id] = config or LinkConfig()
        self._stats[source_id] = LinkStats()

    def _link(self, source_id: str) -> tuple[LinkConfig, LinkStats]:
        try:
            return self._links[source_id], self._stats[source_id]
        except KeyError:
            raise UnknownSourceError(
                f"no link for source {source_id!r}"
            ) from None

    @property
    def tick(self) -> int:
        """The fabric clock (engine ticks)."""
        return self._tick

    def send(self, message: UpdateMessage) -> bool:
        """Offer an update over the sender's link.

        Returns True when the message was (or will be) delivered; False
        when the loss function dropped it.
        """
        config, stats = self._link(message.source_id)
        stats.offered += 1
        if config.loss_fn is not None and config.loss_fn(stats.offered - 1):
            stats.lost += 1
            return False
        self._enqueue(message, config, stats)
        return True

    def send_resync(self, message: ResyncMessage) -> None:
        """Deliver a resync snapshot (reliable, never dropped)."""
        config, stats = self._link(message.source_id)
        stats.offered += 1
        stats.resyncs += 1
        self._enqueue(message, config, stats)

    def _enqueue(self, message: Message, config: LinkConfig, stats: LinkStats) -> None:
        if config.latency_ticks == 0:
            stats.delivered += 1
            stats.bytes_delivered += message.size_bytes
            self._deliver(message)
            return
        stats.in_flight += 1
        heapq.heappush(
            self._queue,
            (self._tick + config.latency_ticks, self._seq, message),
        )
        self._seq += 1

    def advance(self, to_tick: int | None = None) -> int:
        """Advance the fabric clock, delivering due messages in order.

        Args:
            to_tick: Target tick; defaults to ``tick + 1``.

        Returns:
            Number of messages delivered.
        """
        target = self._tick + 1 if to_tick is None else to_tick
        if target < self._tick:
            raise ConfigurationError("cannot advance the clock backwards")
        delivered = 0
        self._tick = target
        while self._queue and self._queue[0][0] <= self._tick:
            _due, _seq, message = heapq.heappop(self._queue)
            stats = self._stats[message.source_id]
            stats.in_flight -= 1
            stats.delivered += 1
            stats.bytes_delivered += message.size_bytes
            self._deliver(message)
            delivered += 1
        return delivered

    def stats_for(self, source_id: str) -> LinkStats:
        """Traffic counters for one link."""
        return self._link(source_id)[1]

    def total_bytes(self) -> int:
        """System-wide delivered bytes across all links."""
        return sum(s.bytes_delivered for s in self._stats.values())

    def total_messages(self) -> int:
        """System-wide delivered messages across all links."""
        return sum(s.delivered for s in self._stats.values())
