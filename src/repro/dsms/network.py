"""Simulated network fabric for multi-source deployments.

One :class:`NetworkFabric` carries the links between every remote source
and the central server.  Each link wraps the data direction
(source -> server: updates, resyncs, heartbeats) *and* the ack direction
(server -> source), each with its own latency and loss, and the fabric
aggregates traffic accounting across links so the engine can report
system-wide bandwidth.

Every message class is treated identically by the link: resyncs are just
as mortal as updates (the seed's "reliable resync path" cheat is gone --
recovery is the transport layer's job, via ack timeouts and
retransmission).  Optional payload corruption round-trips a message
through the real binary codec with one bit flipped; the receiver-side
CRC-32 check rejects the frame and the fabric counts it in the disjoint
``corrupted`` bucket -- the frame never arrives, which is exactly what a
real checksumming NIC would do.

Latency model: a message sent at tick ``t`` with link latency ``L`` is
delivered when :meth:`NetworkFabric.advance` reaches tick ``t + L``.
Zero-latency links (the default, and what the paper's experiments assume
on a LAN) deliver synchronously inside ``send``.
"""

from __future__ import annotations

import heapq
import zlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.errors import (
    ConfigurationError,
    CorruptMessageError,
    UnknownSourceError,
)
from repro.obs.events import trace_id
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["LinkConfig", "NetworkFabric", "LinkStats"]

Message = UpdateMessage | ResyncMessage | HeartbeatMessage


def _kind_of(message: Message | AckMessage) -> str:
    """Short message-class tag carried by fabric telemetry events."""
    if isinstance(message, UpdateMessage):
        return "update"
    if isinstance(message, ResyncMessage):
        return "resync"
    if isinstance(message, HeartbeatMessage):
        return "heartbeat"
    return "ack"


def _trace_of(message: Message | AckMessage) -> str | None:
    """Trace ID of a frame (heartbeats carry none -- their ``seq`` field
    is the next *unsent* number and would collide with a real update)."""
    if isinstance(message, HeartbeatMessage):
        return None
    return trace_id(message.source_id, message.seq)


@dataclass(frozen=True)
class LinkConfig:
    """Per-link parameters.

    Attributes:
        latency_ticks: Data-direction delivery delay in engine ticks
            (0 = synchronous).
        loss_fn: Optional predicate ``(message_index) -> bool``; True
            drops that data message.  Applies to *every* data message --
            updates, resyncs and heartbeats alike.
        ack_latency_ticks: Delivery delay for the server -> source ack
            direction.
        ack_loss_fn: Optional loss predicate for the ack direction (its
            index counter is independent of the data direction).
        corrupt_fn: Optional predicate ``(message_index) -> bool``; True
            flips one bit of that data message's encoded frame.  The
            receiver's CRC check rejects the frame, so the message never
            arrives; it is counted as *corrupted* (a bucket disjoint from
            ``lost``, so offered = delivered + lost + corrupted +
            in_flight always balances).
    """

    latency_ticks: int = 0
    loss_fn: Callable[[int], bool] | None = None
    ack_latency_ticks: int = 0
    ack_loss_fn: Callable[[int], bool] | None = None
    corrupt_fn: Callable[[int], bool] | None = None

    def __post_init__(self) -> None:
        if self.latency_ticks < 0:
            raise ConfigurationError("latency_ticks must be non-negative")
        if self.ack_latency_ticks < 0:
            raise ConfigurationError("ack_latency_ticks must be non-negative")


@dataclass
class LinkStats:
    """Traffic counters for one link (both directions)."""

    offered: int = 0
    delivered: int = 0
    lost: int = 0
    corrupted: int = 0
    bytes_delivered: int = 0
    resyncs: int = 0
    heartbeats: int = 0
    acks_offered: int = 0
    acks_delivered: int = 0
    acks_lost: int = 0
    in_flight: int = 0


class NetworkFabric:
    """All source-to-server links plus global traffic accounting.

    Args:
        deliver: Callback receiving each data-direction message (the
            server's ``receive``).
        deliver_ack: Optional callback receiving each ack-direction
            message; without it, acks cannot be sent.
        telemetry: Optional :class:`~repro.obs.telemetry.Telemetry`;
            the default no-op handle leaves behaviour and performance
            untouched.
    """

    def __init__(
        self,
        deliver: Callable[[Message], None],
        deliver_ack: Callable[[AckMessage], None] | None = None,
        telemetry=None,
    ) -> None:
        self._deliver = deliver
        self._deliver_ack = deliver_ack
        self._tel = telemetry or NULL_TELEMETRY
        self._links: dict[str, LinkConfig] = {}
        self._stats: dict[str, LinkStats] = {}
        self._tick = 0
        self._queue: list[tuple[int, int, Message | AckMessage]] = []
        self._seq = 0  # Tie-breaker preserving FIFO order per delivery tick.
        self._gate_fn: Callable[[str, int], bool] | None = None

    def set_gate(self, gate_fn: Callable[[str, int], bool] | None) -> None:
        """Install a link up/down gate (``(link_id, tick) -> up``).

        A *downed* link holds frames that are already in the pipe: on
        :meth:`advance` a due frame whose link is down is re-queued for
        the next tick instead of delivered, and :meth:`drain` leaves it
        queued (still counted ``in_flight``) rather than teleporting it
        across a severed link.  Frames *sent* into a downed link are the
        caller's concern (layer a loss predicate for that); the gate only
        governs deliveries.  Pass None to remove the gate.
        """
        self._gate_fn = gate_fn

    def _link_up(self, link_id: str) -> bool:
        return self._gate_fn is None or self._gate_fn(link_id, self._tick)

    def add_link(self, source_id: str, config: LinkConfig | None = None) -> None:
        """Attach a link for a source."""
        if source_id in self._links:
            raise ConfigurationError(f"link for {source_id!r} already exists")
        self._links[source_id] = config or LinkConfig()
        self._stats[source_id] = LinkStats()

    def reconfigure_link(self, source_id: str, config: LinkConfig) -> None:
        """Replace a link's parameters in place (fault injection hook).

        Stats and in-flight messages are preserved; only the loss,
        corruption and latency behaviour changes for subsequent sends.
        """
        self._link(source_id)
        self._links[source_id] = config

    def link_config(self, source_id: str) -> LinkConfig:
        """The current parameters of one link."""
        return self._link(source_id)[0]

    def _link(self, source_id: str) -> tuple[LinkConfig, LinkStats]:
        try:
            return self._links[source_id], self._stats[source_id]
        except KeyError:
            raise UnknownSourceError(
                f"no link for source {source_id!r}"
            ) from None

    @property
    def tick(self) -> int:
        """The fabric clock (engine ticks)."""
        return self._tick

    def send(self, message: Message) -> bool:
        """Offer a data-direction message over the sender's link.

        Returns True when the message was (or will be) delivered; False
        when the loss or corruption model dropped it.  Callers modelling a
        *real* source must ignore the return value -- a sender only learns
        of a drop through a missing ack.
        """
        config, stats = self._link(message.source_id)
        index = stats.offered
        stats.offered += 1
        if isinstance(message, ResyncMessage):
            stats.resyncs += 1
        elif isinstance(message, HeartbeatMessage):
            stats.heartbeats += 1
        if config.loss_fn is not None and config.loss_fn(index):
            stats.lost += 1
            if self._tel.enabled:
                self._tel.emit(
                    "fabric.lost",
                    source_id=message.source_id,
                    trace=_trace_of(message),
                    kind=_kind_of(message),
                    k=message.k,
                )
                self._tel.count("fabric_lost_total", message.source_id)
            return False
        if config.corrupt_fn is not None and config.corrupt_fn(index):
            message_or_none = self._corrupt(message, index)
            if message_or_none is None:
                stats.corrupted += 1
                if self._tel.enabled:
                    self._tel.emit(
                        "fabric.corrupted",
                        source_id=message.source_id,
                        trace=_trace_of(message),
                        kind=_kind_of(message),
                        k=message.k,
                    )
                    self._tel.count("fabric_corrupted_total", message.source_id)
                return False
            message = message_or_none
        self._enqueue(message, config.latency_ticks, stats)
        return True

    def send_ack(self, message: AckMessage) -> bool:
        """Offer an ack-direction message (server -> source)."""
        config, stats = self._link(message.source_id)
        if self._deliver_ack is None:
            raise ConfigurationError(
                "fabric has no ack delivery callback; pass deliver_ack"
            )
        index = stats.acks_offered
        stats.acks_offered += 1
        if config.ack_loss_fn is not None and config.ack_loss_fn(index):
            stats.acks_lost += 1
            if self._tel.enabled:
                self._tel.emit(
                    "fabric.ack_lost",
                    source_id=message.source_id,
                    ack_seq=message.seq,
                )
            return False
        self._enqueue(message, config.ack_latency_ticks, stats)
        return True

    def _corrupt(self, message: Message, index: int) -> Message | None:
        """Flip one bit of the encoded frame and re-decode it.

        The flipped bit position is derived deterministically from the
        message index.  Because every frame ends in a CRC-32 trailer, the
        decode fails (a single-bit error always trips a CRC) and the
        receiver discards the frame -- returned as None.  In the
        vanishingly unlikely event the decode survives, the (still intact)
        decoded message is delivered.
        """
        data = bytearray(encode_message(message))
        bit = zlib.crc32(f"corrupt:{index}".encode()) % (len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        state_dim = (
            message.x.shape[0] if isinstance(message, ResyncMessage) else None
        )
        try:
            return decode_message(
                bytes(data), [message.source_id], state_dim=state_dim
            )
        except CorruptMessageError:
            return None

    def _dispatch(self, message: Message | AckMessage) -> None:
        stats = self._stats[message.source_id]
        tel = self._tel
        if isinstance(message, AckMessage):
            stats.acks_delivered += 1
            if tel.enabled:
                tel.emit(
                    "fabric.ack_delivered",
                    source_id=message.source_id,
                    ack_seq=message.seq,
                    resync_requested=message.resync_requested,
                )
            self._deliver_ack(message)
            return
        stats.delivered += 1
        stats.bytes_delivered += message.size_bytes
        if tel.enabled:
            tel.emit(
                "fabric.delivered",
                source_id=message.source_id,
                trace=_trace_of(message),
                kind=_kind_of(message),
                k=message.k,
                bytes=message.size_bytes,
            )
            tel.count("fabric_delivered_total", message.source_id)
            tel.observe("frame_bytes", message.size_bytes, message.source_id)
            with tel.timers.span("fabric.deliver"):
                self._deliver(message)
            return
        self._deliver(message)

    def _enqueue(
        self, message: Message | AckMessage, latency: int, stats: LinkStats
    ) -> None:
        if latency == 0:
            self._dispatch(message)
            return
        stats.in_flight += 1
        heapq.heappush(self._queue, (self._tick + latency, self._seq, message))
        self._seq += 1

    def advance(self, to_tick: int | None = None) -> int:
        """Advance the fabric clock, delivering due messages in order.

        Args:
            to_tick: Target tick; defaults to ``tick + 1``.

        Returns:
            Number of messages delivered.
        """
        target = self._tick + 1 if to_tick is None else to_tick
        if target < self._tick:
            raise ConfigurationError("cannot advance the clock backwards")
        delivered = 0
        self._tick = target
        held: list[tuple[int, int, Message | AckMessage]] = []
        while self._queue and self._queue[0][0] <= self._tick:
            _due, seq, message = heapq.heappop(self._queue)
            if not self._link_up(message.source_id):
                # The link is severed: the frame stays in the pipe (and in
                # the in_flight count) until the partition heals.
                held.append((self._tick + 1, seq, message))
                continue
            self._stats[message.source_id].in_flight -= 1
            self._dispatch(message)
            delivered += 1
        for entry in held:
            heapq.heappush(self._queue, entry)
        return delivered

    def drain(self, force: bool = False) -> int:
        """Deliver every queued message immediately, regardless of tick.

        Call at the end of a run so messages still in flight are neither
        silently stranded nor invisible in the report.  Frames queued on a
        link the gate reports *down* are retained (still counted
        ``in_flight``) unless ``force=True`` -- draining them through a
        severed link would fabricate deliveries the network never made,
        breaking the conservation law's honesty even while its arithmetic
        balanced.  Returns the number of messages flushed.
        """
        drained = 0
        held: list[tuple[int, int, Message | AckMessage]] = []
        while self._queue:
            due, seq, message = heapq.heappop(self._queue)
            if not force and not self._link_up(message.source_id):
                held.append((due, seq, message))
                continue
            self._stats[message.source_id].in_flight -= 1
            self._dispatch(message)
            drained += 1
        for entry in held:
            heapq.heappush(self._queue, entry)
        return drained

    def stats_for(self, source_id: str) -> LinkStats:
        """Traffic counters for one link."""
        return self._link(source_id)[1]

    def total_bytes(self) -> int:
        """System-wide delivered bytes across all links."""
        return sum(s.bytes_delivered for s in self._stats.values())

    def total_messages(self) -> int:
        """System-wide delivered data messages across all links."""
        return sum(s.delivered for s in self._stats.values())

    def total_in_flight(self) -> int:
        """Messages currently queued on latent links (both directions)."""
        return sum(s.in_flight for s in self._stats.values())

    def total_lost(self) -> int:
        """System-wide data messages dropped by the loss model.

        Corruption is counted separately (:meth:`total_corrupted`); the
        two buckets are disjoint so traffic conservation holds:
        ``offered == delivered + lost + corrupted + in_flight``.
        """
        return sum(s.lost for s in self._stats.values())

    def total_corrupted(self) -> int:
        """System-wide data messages rejected by the receiver-side CRC."""
        return sum(s.corrupted for s in self._stats.values())

    def total_offered(self) -> int:
        """System-wide data messages offered across all links."""
        return sum(s.offered for s in self._stats.values())
