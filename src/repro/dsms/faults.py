"""Deterministic fault-injection harness for the stream engine.

A :class:`FaultSchedule` scripts every failure the system is expected to
survive, keyed to engine ticks and derived entirely from a seed -- two
runs with equal schedules produce byte-identical behaviour, which is what
makes soak tests and replays meaningful.

Fault classes:

* **Source crashes** -- the sensor node dies at a tick and (optionally)
  restarts later, returning with amnesia: the engine re-primes the pair
  through a resync snapshot because the server's sequence expectations
  survived the crash.
* **Sensor faults** -- readings are perturbed before the source logic
  sees them: ``nan`` (non-finite garbage), ``stuck`` (the last pre-fault
  reading repeats), ``dropout`` (the reading is lost; modelled as
  non-finite so the source's rejection path handles it), ``spike``
  (a large deterministic outlier is added).
* **Burst loss** -- a two-state Gilbert-Elliott channel replaces i.i.d.
  loss: long good spells punctuated by bursts where most messages die,
  the pattern that actually defeats naive retry logic.
* **Payload corruption** -- selected messages have one encoded bit
  flipped in flight; the receiver's CRC-32 check rejects the frame, so
  corruption degenerates to loss (exactly what a checksumming NIC does).

The engine consumes the schedule via the narrow hook API at the bottom
(:meth:`FaultSchedule.is_down`, :meth:`FaultSchedule.restarts_at`,
:meth:`FaultSchedule.transform`, :meth:`FaultSchedule.loss_fn`,
:meth:`FaultSchedule.corrupt_fn`), so alternative harnesses can drive the
same schedule.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.streams.base import StreamRecord

__all__ = [
    "CrashFault",
    "SensorFault",
    "NetworkPartitionFault",
    "AsymmetricLinkFault",
    "GilbertElliottLoss",
    "FaultSchedule",
    "SENSOR_FAULT_KINDS",
    "LINK_FAULT_DIRECTIONS",
]

#: Sensor fault kinds understood by :meth:`FaultSchedule.sensor`.
SENSOR_FAULT_KINDS = ("nan", "stuck", "dropout", "spike")

#: Directions an asymmetric link fault can slow.
LINK_FAULT_DIRECTIONS = ("data", "ack", "both")


@dataclass(frozen=True)
class CrashFault:
    """A source-node crash window.

    Attributes:
        source_id: The crashing source.
        at_tick: First tick the source is down.
        restart_tick: Tick the source comes back (exclusive end of the
            outage); None means it never restarts.
    """

    source_id: str
    at_tick: int
    restart_tick: int | None

    def __post_init__(self) -> None:
        if self.at_tick < 0:
            raise ConfigurationError("at_tick must be non-negative")
        if self.restart_tick is not None and self.restart_tick <= self.at_tick:
            raise ConfigurationError("restart_tick must come after at_tick")

    def covers(self, tick: int) -> bool:
        """Whether the source is down at ``tick``."""
        if tick < self.at_tick:
            return False
        return self.restart_tick is None or tick < self.restart_tick


@dataclass(frozen=True)
class SensorFault:
    """A sensor malfunction window perturbing raw readings.

    Attributes:
        source_id: The faulty source.
        kind: One of :data:`SENSOR_FAULT_KINDS`.
        start_tick: First affected tick.
        duration: Number of consecutive affected ticks.
        magnitude: Spike amplitude (``spike`` kind only).
    """

    source_id: str
    kind: str
    start_tick: int
    duration: int
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SENSOR_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown sensor fault kind {self.kind!r}; "
                f"expected one of {SENSOR_FAULT_KINDS}"
            )
        if self.start_tick < 0:
            raise ConfigurationError("start_tick must be non-negative")
        if self.duration < 1:
            raise ConfigurationError("duration must be at least 1")
        if self.kind == "spike" and self.magnitude == 0.0:
            raise ConfigurationError("spike faults need a non-zero magnitude")

    def covers(self, tick: int) -> bool:
        """Whether the fault is active at ``tick``."""
        return self.start_tick <= tick < self.start_tick + self.duration


@dataclass(frozen=True)
class NetworkPartitionFault:
    """A network partition splitting the node set into two islands.

    Nodes are engine-level endpoints: source ids and the server (the
    scalar engine's server is the node ``"server"``), or federation peer
    ids.  While the partition is active, any link whose two endpoints sit
    on opposite sides is *severed*: frames offered to it are dropped
    (counted ``lost``), and frames already in the pipe are held in place
    -- still ``in_flight`` -- until the partition heals.  Nodes on the
    same side, or not mentioned at all, are unaffected.

    Attributes:
        side_a: Node ids on one side of the cut.
        side_b: Node ids on the other side.
        at_tick: First tick the partition is active.
        heal_tick: Tick the partition heals (exclusive end); None means
            it never heals.
    """

    side_a: frozenset[str]
    side_b: frozenset[str]
    at_tick: int
    heal_tick: int | None

    def __post_init__(self) -> None:
        object.__setattr__(self, "side_a", frozenset(self.side_a))
        object.__setattr__(self, "side_b", frozenset(self.side_b))
        if not self.side_a or not self.side_b:
            raise ConfigurationError("both partition sides must be non-empty")
        if self.side_a & self.side_b:
            raise ConfigurationError(
                f"partition sides overlap: {sorted(self.side_a & self.side_b)}"
            )
        if self.at_tick < 0:
            raise ConfigurationError("at_tick must be non-negative")
        if self.heal_tick is not None and self.heal_tick <= self.at_tick:
            raise ConfigurationError("heal_tick must come after at_tick")

    def covers(self, tick: int) -> bool:
        """Whether the partition is active at ``tick``."""
        if tick < self.at_tick:
            return False
        return self.heal_tick is None or tick < self.heal_tick

    def severs(self, node_a: str, node_b: str) -> bool:
        """Whether a link between the two nodes crosses the cut."""
        return (node_a in self.side_a and node_b in self.side_b) or (
            node_a in self.side_b and node_b in self.side_a
        )


@dataclass(frozen=True)
class AsymmetricLinkFault:
    """A one-directional slow-link window (congestion, bad route).

    Adds ``extra_latency_ticks`` to one direction of one link for a
    window of ticks; the reverse direction keeps its configured latency,
    which is exactly the asymmetry that defeats RTT-symmetric timeout
    tuning.  Frames already in flight keep their original delivery time
    (the extra latency applies at send), so the fault is drain-safe.

    Attributes:
        link_id: The fabric link key (a source id, or a directed peer
            link id in a federation).
        extra_latency_ticks: Added delivery delay while active.
        at_tick: First affected tick.
        duration: Number of consecutive affected ticks.
        direction: ``"data"``, ``"ack"`` or ``"both"``.
    """

    link_id: str
    extra_latency_ticks: int
    at_tick: int
    duration: int
    direction: str = "data"

    def __post_init__(self) -> None:
        if self.extra_latency_ticks < 1:
            raise ConfigurationError(
                "extra_latency_ticks must be at least 1"
            )
        if self.at_tick < 0:
            raise ConfigurationError("at_tick must be non-negative")
        if self.duration < 1:
            raise ConfigurationError("duration must be at least 1")
        if self.direction not in LINK_FAULT_DIRECTIONS:
            raise ConfigurationError(
                f"unknown link fault direction {self.direction!r}; "
                f"expected one of {LINK_FAULT_DIRECTIONS}"
            )

    def covers(self, tick: int) -> bool:
        """Whether the fault is active at ``tick``."""
        return self.at_tick <= tick < self.at_tick + self.duration


class GilbertElliottLoss:
    """Two-state Markov burst-loss model (Gilbert-Elliott).

    The channel alternates between a *good* state (loss probability
    ``loss_good``, usually ~0) and a *bad* state (``loss_bad``, usually
    near 1).  Transitions happen per message: ``p_enter`` is the
    good-to-bad probability, ``p_exit`` bad-to-good.  Decisions are
    derived from the seed and the message index alone -- the chain is
    materialised lazily and memoised, so any query order yields the same
    answers and replays are exact.

    Args:
        p_enter: Per-message probability of entering the bad state.
        p_exit: Per-message probability of leaving the bad state.
        loss_good: Loss probability while in the good state.
        loss_bad: Loss probability while in the bad state.
        seed: Seed for the chain's random draws.
    """

    def __init__(
        self,
        p_enter: float,
        p_exit: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
    ) -> None:
        for name, p in (
            ("p_enter", p_enter),
            ("p_exit", p_exit),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self._p_enter = p_enter
        self._p_exit = p_exit
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self._rng = np.random.default_rng(seed)
        self._decisions: list[bool] = []
        self._bad = False

    def _extend_to(self, index: int) -> None:
        while len(self._decisions) <= index:
            transition, drop = self._rng.random(2)
            if self._bad:
                if transition < self._p_exit:
                    self._bad = False
            elif transition < self._p_enter:
                self._bad = True
            rate = self._loss_bad if self._bad else self._loss_good
            self._decisions.append(bool(drop < rate))

    def __call__(self, index: int) -> bool:
        """Whether message ``index`` is dropped."""
        if index < 0:
            raise ConfigurationError("message index must be non-negative")
        self._extend_to(index)
        return self._decisions[index]


class FaultSchedule:
    """A seeded, deterministic script of failures for one engine run.

    Build the schedule declaratively (:meth:`crash`, :meth:`sensor`,
    :meth:`burst_loss`, :meth:`corrupt`), hand it to
    ``StreamEngine.inject_faults``, and run.  All randomness (burst-loss
    chains, corruption picks, spike signs) derives from ``seed`` plus
    stable per-fault identifiers, never from call order.

    Args:
        seed: Master seed all stochastic fault decisions derive from.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._crashes: list[CrashFault] = []
        self._sensor_faults: list[SensorFault] = []
        self._burst_loss: dict[str, tuple[float, float, float, float]] = {}
        self._corrupt_rates: dict[str, float] = {}
        self._loss_fns: dict[str, GilbertElliottLoss] = {}
        self._stuck_values: dict[str, np.ndarray] = {}
        self._partitions: list[NetworkPartitionFault] = []
        self._asymmetric: list[AsymmetricLinkFault] = []
        self._now = 0
        self._tel = NULL_TELEMETRY

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry handle (the engine does this on inject).

        Sensor-fault applications then emit ``fault.sensor`` events; the
        engine itself emits the crash/restart events because only it
        knows when a hook actually fired.
        """
        self._tel = telemetry or NULL_TELEMETRY

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def _subseed(self, tag: str) -> int:
        """A stable per-fault seed derived from the master seed."""
        return (self._seed << 32) ^ zlib.crc32(tag.encode("utf-8"))

    # Declarative construction --------------------------------------------

    def crash(
        self, source_id: str, at: int, restart_at: int | None = None
    ) -> "FaultSchedule":
        """Schedule a source crash at tick ``at`` (restart optional)."""
        self._crashes.append(
            CrashFault(source_id=source_id, at_tick=at, restart_tick=restart_at)
        )
        return self

    def sensor(
        self,
        source_id: str,
        kind: str,
        start: int,
        duration: int,
        magnitude: float = 0.0,
    ) -> "FaultSchedule":
        """Schedule a sensor fault window (see :class:`SensorFault`)."""
        self._sensor_faults.append(
            SensorFault(
                source_id=source_id,
                kind=kind,
                start_tick=start,
                duration=duration,
                magnitude=magnitude,
            )
        )
        return self

    def burst_loss(
        self,
        source_id: str,
        p_enter: float,
        p_exit: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> "FaultSchedule":
        """Attach a Gilbert-Elliott burst-loss channel to a source's link."""
        if source_id in self._burst_loss:
            raise ConfigurationError(
                f"burst loss already scheduled for {source_id!r}"
            )
        self._burst_loss[source_id] = (p_enter, p_exit, loss_good, loss_bad)
        return self

    def partition(
        self,
        side_a,
        side_b,
        at: int,
        heal_at: int | None = None,
    ) -> "FaultSchedule":
        """Schedule a network partition between two node sets.

        Nodes are source ids plus the server node (``"server"`` in the
        single-server engines) or federation peer ids.  The cut severs
        every link crossing it from tick ``at`` until ``heal_at``
        (never, when None).
        """
        self._partitions.append(
            NetworkPartitionFault(
                side_a=frozenset(side_a),
                side_b=frozenset(side_b),
                at_tick=at,
                heal_tick=heal_at,
            )
        )
        return self

    def asymmetric_link(
        self,
        link_id: str,
        extra_latency_ticks: int,
        at: int,
        duration: int,
        direction: str = "data",
    ) -> "FaultSchedule":
        """Schedule a one-directional slow-link window on one link."""
        self._asymmetric.append(
            AsymmetricLinkFault(
                link_id=link_id,
                extra_latency_ticks=extra_latency_ticks,
                at_tick=at,
                duration=duration,
                direction=direction,
            )
        )
        return self

    def corrupt(self, source_id: str, rate: float) -> "FaultSchedule":
        """Corrupt a fraction ``rate`` of a source's encoded messages."""
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"rate must be in [0, 1), got {rate}")
        if source_id in self._corrupt_rates:
            raise ConfigurationError(
                f"corruption already scheduled for {source_id!r}"
            )
        self._corrupt_rates[source_id] = rate
        return self

    # Engine-facing hooks --------------------------------------------------

    def reset(self) -> None:
        """Clear per-run state (stuck-value memory, burst-loss chains).

        ``StreamEngine.inject_faults`` calls this, so a schedule can be
        reused across runs and still produce identical behaviour.
        """
        self._stuck_values.clear()
        self._loss_fns.clear()
        self._now = 0

    def observe_tick(self, tick: int) -> None:
        """Advance the schedule's clock (engines call this every step).

        Time-dependent link faults -- partitions, asymmetric windows --
        are evaluated against this clock when a loss predicate offers no
        tick of its own (fabric loss functions only see a message index).
        """
        if tick > self._now:
            self._now = tick

    @property
    def now(self) -> int:
        """The schedule's current clock (last observed engine tick)."""
        return self._now

    def has_partitions(self) -> bool:
        """Whether any partition fault is scheduled."""
        return bool(self._partitions)

    def partitioned_nodes(self) -> set[str]:
        """Every node id named by a scheduled partition."""
        nodes: set[str] = set()
        for fault in self._partitions:
            nodes |= fault.side_a | fault.side_b
        return nodes

    def link_severed(
        self, node_a: str, node_b: str, tick: int | None = None
    ) -> bool:
        """Whether the ``node_a``--``node_b`` link crosses an active cut.

        ``tick`` defaults to the schedule clock (:meth:`observe_tick`).
        """
        when = self._now if tick is None else tick
        return any(
            f.covers(when) and f.severs(node_a, node_b)
            for f in self._partitions
        )

    def partition_active(self, tick: int | None = None) -> bool:
        """Whether any partition is active at ``tick`` (default: now)."""
        when = self._now if tick is None else tick
        return any(f.covers(when) for f in self._partitions)

    def asymmetric_links(self) -> set[str]:
        """Link ids with at least one asymmetric window scheduled."""
        return {f.link_id for f in self._asymmetric}

    def latency_overrides(
        self, tick: int | None = None
    ) -> dict[str, tuple[int, int]]:
        """Active extra latency per link at ``tick`` (default: now).

        Returns ``{link_id: (data_extra, ack_extra)}`` with the extras of
        overlapping windows summed per direction.  Links with no active
        window are absent, so an empty dict means "all links nominal".
        """
        when = self._now if tick is None else tick
        overrides: dict[str, tuple[int, int]] = {}
        for fault in self._asymmetric:
            if not fault.covers(when):
                continue
            data, ack = overrides.get(fault.link_id, (0, 0))
            if fault.direction in ("data", "both"):
                data += fault.extra_latency_ticks
            if fault.direction in ("ack", "both"):
                ack += fault.extra_latency_ticks
            overrides[fault.link_id] = (data, ack)
        return overrides

    def is_down(self, source_id: str, tick: int) -> bool:
        """Whether the source is crashed at ``tick``."""
        return any(
            c.source_id == source_id and c.covers(tick) for c in self._crashes
        )

    def is_terminal(self, source_id: str, tick: int) -> bool:
        """Whether the source is crashed at ``tick`` and never restarts."""
        return any(
            c.source_id == source_id and c.covers(tick) and c.restart_tick is None
            for c in self._crashes
        )

    def restarts_at(self, source_id: str, tick: int) -> bool:
        """Whether the source comes back from a crash exactly at ``tick``."""
        return any(
            c.source_id == source_id and c.restart_tick == tick
            for c in self._crashes
        )

    def crash_sources(self) -> set[str]:
        """Source ids with a crash/restart fault scheduled.

        The batch engine consults crash state per tick only for these
        rows, so a mostly-healthy shard pays no per-row Python cost.
        """
        return {c.source_id for c in self._crashes}

    def sensor_sources(self) -> set[str]:
        """Source ids with at least one sensor fault scheduled.

        Rows outside this set skip the per-reading :meth:`transform`
        call entirely on the batch engine's bulk read path.
        """
        return {f.source_id for f in self._sensor_faults}

    def transform(
        self, source_id: str, tick: int, record: StreamRecord
    ) -> StreamRecord:
        """Apply active sensor faults to a reading (engine hook).

        Healthy readings additionally refresh the stuck-value memory so a
        later ``stuck`` window repeats the last good reading.
        """
        value = record.value
        faulted = False
        for fault in self._sensor_faults:
            if fault.source_id != source_id or not fault.covers(tick):
                continue
            faulted = True
            if self._tel.enabled:
                self._tel.emit(
                    "fault.sensor",
                    source_id=source_id,
                    kind=fault.kind,
                    k=record.k,
                )
                self._tel.count("sensor_faults_total", source_id)
            if fault.kind in ("nan", "dropout"):
                value = np.full_like(value, np.nan)
            elif fault.kind == "stuck":
                held = self._stuck_values.get(source_id)
                if held is not None and held.shape == value.shape:
                    value = held.copy()
            elif fault.kind == "spike":
                sign_seed = self._subseed(f"spike:{source_id}:{tick}")
                sign = 1.0 if np.random.default_rng(sign_seed).random() < 0.5 else -1.0
                value = value + sign * fault.magnitude
        if not faulted:
            self._stuck_values[source_id] = record.value.copy()
            return record
        return dataclasses.replace(record, value=value)

    def loss_fn(self, source_id: str) -> Callable[[int], bool] | None:
        """The burst-loss predicate for a source's link, if scheduled."""
        params = self._burst_loss.get(source_id)
        if params is None:
            return None
        if source_id not in self._loss_fns:
            p_enter, p_exit, loss_good, loss_bad = params
            self._loss_fns[source_id] = GilbertElliottLoss(
                p_enter=p_enter,
                p_exit=p_exit,
                loss_good=loss_good,
                loss_bad=loss_bad,
                seed=self._subseed(f"burst:{source_id}"),
            )
        return self._loss_fns[source_id]

    def corrupt_fn(self, source_id: str) -> Callable[[int], bool] | None:
        """The corruption predicate for a source's link, if scheduled."""
        rate = self._corrupt_rates.get(source_id)
        if rate is None:
            return None
        subseed = self._subseed(f"corrupt:{source_id}")

        def pick(index: int) -> bool:
            return bool(np.random.default_rng((subseed, index)).random() < rate)

        return pick

    def describe(self) -> dict[str, int]:
        """Summary counts of scheduled faults (logging aid)."""
        return {
            "crashes": len(self._crashes),
            "sensor_faults": len(self._sensor_faults),
            "burst_loss_links": len(self._burst_loss),
            "corrupted_links": len(self._corrupt_rates),
            "partitions": len(self._partitions),
            "asymmetric_links": len(self._asymmetric),
        }
