"""Innovation-sequence monitoring (paper Section 3.1 advantage 5 and the
Section 6 future-work items on adaptive sampling).

The *innovation* is the difference between the filter's one-step measurement
prediction and the actual reading.  For a well-tuned filter on a correctly
modelled stream the innovation sequence is zero-mean white noise with
covariance ``S = H P^- H^T + R``.  Departures carry information:

* a single huge innovation is an **outlier** (sensor glitch, spike);
* sustained large innovations mean the **model is wrong** (the object
  manoeuvred, the trend changed) -- a cue to re-sample faster or switch
  models;
* sustained tiny innovations mean the stream is over-sampled -- a cue to
  sample slower and save even more energy.

This module provides a rolling innovation monitor with normalised innovation
squared (NIS) statistics, outlier classification, and an adaptive sampling
controller driven by those statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["InnovationMonitor", "InnovationStats", "AdaptiveSamplingController"]


@dataclass(frozen=True)
class InnovationStats:
    """Summary statistics over the monitor's rolling window.

    Attributes:
        count: Number of innovations in the window.
        mean: Per-component mean innovation.
        std: Per-component standard deviation.
        mean_nis: Mean normalised innovation squared; for a consistent
            filter this concentrates around the measurement dimension ``m``.
        autocorr_lag1: Lag-1 autocorrelation of the innovation magnitude
            (whiteness check; near zero for a healthy filter).
    """

    count: int
    mean: np.ndarray
    std: np.ndarray
    mean_nis: float
    autocorr_lag1: float


class InnovationMonitor:
    """Rolling window over innovations with outlier and health checks.

    Args:
        window: Number of recent innovations retained.
        outlier_nis: NIS threshold above which a single innovation is
            classified as an outlier.  For an ``m``-dimensional Gaussian
            innovation, NIS is chi-square with ``m`` degrees of freedom;
            the default 13.8 is the 99.9th percentile for ``m = 2``.
    """

    def __init__(self, window: int = 50, outlier_nis: float = 13.8) -> None:
        if window < 2:
            raise ConfigurationError("window must be at least 2")
        if outlier_nis <= 0:
            raise ConfigurationError("outlier_nis must be positive")
        self._window = window
        self._outlier_nis = outlier_nis
        self._innovations: deque[np.ndarray] = deque(maxlen=window)
        self._nis: deque[float] = deque(maxlen=window)
        self._outlier_count = 0
        self._total = 0

    @property
    def window(self) -> int:
        """The rolling-window length."""
        return self._window

    @property
    def total_observed(self) -> int:
        """Total innovations ever recorded (not just the window)."""
        return self._total

    @property
    def outlier_count(self) -> int:
        """Total outliers flagged since construction."""
        return self._outlier_count

    def record(self, innovation: np.ndarray, s: np.ndarray) -> bool:
        """Record one innovation with its covariance ``S``.

        Args:
            innovation: Innovation vector ``z - H x^-``.
            s: Innovation covariance ``H P^- H^T + R``.

        Returns:
            True when the innovation is classified as an outlier.
        """
        innovation = np.atleast_1d(np.asarray(innovation, dtype=float))
        s = np.atleast_2d(np.asarray(s, dtype=float))
        nis = float(innovation @ np.linalg.solve(s, innovation))
        self._innovations.append(innovation)
        self._nis.append(nis)
        self._total += 1
        is_outlier = nis > self._outlier_nis
        if is_outlier:
            self._outlier_count += 1
        return is_outlier

    def stats(self) -> InnovationStats:
        """Summary statistics over the current window."""
        if not self._innovations:
            return InnovationStats(
                count=0,
                mean=np.array([]),
                std=np.array([]),
                mean_nis=float("nan"),
                autocorr_lag1=float("nan"),
            )
        arr = np.stack(list(self._innovations))
        mags = np.linalg.norm(arr, axis=1)
        if len(mags) >= 3 and mags.std() > 1e-12:
            centred = mags - mags.mean()
            autocorr = float(
                (centred[:-1] @ centred[1:]) / (centred @ centred)
            )
        else:
            autocorr = 0.0
        return InnovationStats(
            count=len(self._innovations),
            mean=arr.mean(axis=0),
            std=arr.std(axis=0),
            mean_nis=float(np.mean(self._nis)),
            autocorr_lag1=autocorr,
        )

    def is_healthy(self, nis_band: tuple[float, float] = (0.1, 3.0)) -> bool:
        """Whether mean NIS (scaled by dimension) sits inside ``nis_band``.

        A very low ratio means the filter is over-cautious (R or Q too
        large); a very high ratio means the model no longer explains the
        data.
        """
        if not self._innovations:
            return True
        m = self._innovations[-1].shape[0]
        ratio = float(np.mean(self._nis)) / m
        low, high = nis_band
        return low <= ratio <= high


class AdaptiveSamplingController:
    """Adjust the sensor sampling interval from innovation magnitudes
    (paper Section 6, future-work item 5).

    The controller keeps a smoothed ratio of innovation magnitude to the
    precision width δ.  When predictions are comfortably inside the bound
    the interval is stretched (up to ``max_interval``); when they approach
    or exceed δ it is shrunk back toward ``min_interval``.  Changes are
    multiplicative and bounded, so the interval cannot oscillate wildly.

    Args:
        delta: Precision width the DKF session runs with.
        min_interval: Smallest sampling interval (in ticks).
        max_interval: Largest sampling interval (in ticks).
        stretch: Multiplicative increase applied when the stream is quiet.
        shrink: Multiplicative decrease applied on large innovations.
        quiet_fraction: Innovation/δ ratio below which the stream counts
            as quiet.
        busy_fraction: Innovation/δ ratio above which the stream counts
            as busy.
    """

    def __init__(
        self,
        delta: float,
        min_interval: int = 1,
        max_interval: int = 64,
        stretch: float = 1.5,
        shrink: float = 0.25,
        quiet_fraction: float = 0.25,
        busy_fraction: float = 0.75,
    ) -> None:
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        if min_interval < 1 or max_interval < min_interval:
            raise ConfigurationError("need 1 <= min_interval <= max_interval")
        if not 0 < quiet_fraction < busy_fraction:
            raise ConfigurationError("need 0 < quiet_fraction < busy_fraction")
        self._delta = float(delta)
        self._min = min_interval
        self._max = max_interval
        self._stretch = stretch
        self._shrink = shrink
        self._quiet = quiet_fraction
        self._busy = busy_fraction
        self._interval = float(min_interval)

    @property
    def interval(self) -> int:
        """Current sampling interval in ticks (always >= 1)."""
        return max(self._min, min(self._max, int(round(self._interval))))

    def observe(self, innovation_magnitude: float) -> int:
        """Update the interval from the latest innovation magnitude.

        Args:
            innovation_magnitude: ``max_component |z - z_pred|`` from the
                mirror filter at a sampling instant.

        Returns:
            The new sampling interval.
        """
        ratio = abs(float(innovation_magnitude)) / self._delta
        if ratio < self._quiet:
            self._interval = min(self._max, self._interval * self._stretch)
        elif ratio > self._busy:
            self._interval = max(self._min, self._interval * self._shrink)
        return self.interval

    def reset(self) -> None:
        """Return to the fastest sampling rate."""
        self._interval = float(self._min)
