"""Filtering substrate: discrete Kalman filter (paper Section 3) plus the
customisations Section 3.2 calls for -- EKF for non-linear systems,
recursive least squares for confidence-free measurements, steady-state
(Riccati) filtering for stationary noise, on-line smoothing, innovation
monitoring, adaptive noise estimation, and multiple-model banks.
"""

from repro.filters.adaptive import AdaptiveNoiseKalmanFilter
from repro.filters.ekf import (
    ExtendedKalmanFilter,
    NonlinearModel,
    coordinated_turn_model,
)
from repro.filters.information import InformationFilter
from repro.filters.innovation import (
    AdaptiveSamplingController,
    InnovationMonitor,
    InnovationStats,
)
from repro.filters.kalman import KalmanFilter, KalmanStep, check_covariance
from repro.filters.least_squares import RecursiveLeastSquares, batch_least_squares
from repro.filters.model_bank import ModelBank, ModelPosterior
from repro.filters.models import (
    DEFAULT_NOISE,
    StateSpaceModel,
    acceleration_model,
    constant_model,
    jerk_model,
    kinematic_model,
    linear_model,
    sinusoidal_model,
    smoothing_model,
)
from repro.filters.riccati import (
    SteadyStateKalmanFilter,
    solve_dare,
    steady_state_gain,
)
from repro.filters.rts import OfflineKalmanSmoother, SmoothedTrajectory, rts_smooth
from repro.filters.smoothing import StreamSmoother, VectorSmoother, smooth_series
from repro.filters.tuning import TuningResult, innovation_diagnosis, tune_noise
from repro.filters.ukf import UnscentedKalmanFilter

__all__ = [
    "AdaptiveNoiseKalmanFilter",
    "AdaptiveSamplingController",
    "DEFAULT_NOISE",
    "ExtendedKalmanFilter",
    "InformationFilter",
    "InnovationMonitor",
    "InnovationStats",
    "KalmanFilter",
    "KalmanStep",
    "OfflineKalmanSmoother",
    "SmoothedTrajectory",
    "VectorSmoother",
    "rts_smooth",
    "ModelBank",
    "ModelPosterior",
    "NonlinearModel",
    "RecursiveLeastSquares",
    "StateSpaceModel",
    "SteadyStateKalmanFilter",
    "UnscentedKalmanFilter",
    "StreamSmoother",
    "TuningResult",
    "innovation_diagnosis",
    "tune_noise",
    "acceleration_model",
    "batch_least_squares",
    "check_covariance",
    "constant_model",
    "coordinated_turn_model",
    "jerk_model",
    "kinematic_model",
    "linear_model",
    "sinusoidal_model",
    "smooth_series",
    "smoothing_model",
    "solve_dare",
    "steady_state_gain",
]
