"""Steady-state Kalman filtering via the discrete Riccati equation
(paper Section 3.2, case 5).

When the noise processes are *stationary* the error-covariance propagation
is completely predictable -- it involves only ``phi``, ``H``, ``Q`` and
``R``, never the actual sensor readings -- so it can be run offline.  The
covariance converges to the fixed point of the discrete algebraic Riccati
equation (DARE)::

    P = phi (P - P H^T (H P H^T + R)^{-1} H P) phi^T + Q

yielding a constant steady-state Kalman gain.  A
:class:`SteadyStateKalmanFilter` applies that precomputed gain with no
per-step covariance arithmetic, which is the cheap runtime mode the paper
describes for sensors reporting at regular intervals with fixed precision.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError, DivergenceError
from repro.filters.kalman import check_covariance

__all__ = ["solve_dare", "steady_state_gain", "SteadyStateKalmanFilter"]


def solve_dare(
    phi: np.ndarray,
    h: np.ndarray,
    q: np.ndarray,
    r: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 100_000,
) -> np.ndarray:
    """Solve the discrete algebraic Riccati equation by fixed-point iteration.

    Iterates the covariance propagation (predict + correct) until the
    a-priori covariance stops changing.  For observable, stabilisable
    systems the iteration converges geometrically; a
    :class:`~repro.errors.DivergenceError` is raised otherwise.

    Args:
        phi: State transition matrix (``n x n``).
        h: Measurement matrix (``m x n``).
        q: Process noise covariance (``n x n``).
        r: Measurement noise covariance (``m x m``).
        tol: Convergence tolerance on the max-abs covariance change.
        max_iter: Iteration cap.

    Returns:
        The steady-state *a-priori* covariance ``P^-``.
    """
    phi = np.asarray(phi, dtype=float)
    h = np.asarray(h, dtype=float)
    q = check_covariance(q, "Q")
    r = check_covariance(r, "R")
    n = phi.shape[0]
    if phi.shape != (n, n):
        raise DimensionError(f"phi must be square, got {phi.shape}")
    if h.shape[1] != n:
        raise DimensionError(f"H must have {n} columns, got {h.shape}")

    p = q.copy() + np.eye(n)
    for _ in range(max_iter):
        s = h @ p @ h.T + r
        gain = np.linalg.solve(s.T, (p @ h.T).T).T
        p_post = p - gain @ h @ p
        p_next = phi @ p_post @ phi.T + q
        p_next = 0.5 * (p_next + p_next.T)
        if not np.all(np.isfinite(p_next)):
            raise DivergenceError("Riccati iteration diverged")
        if float(np.abs(p_next - p).max()) < tol:
            return p_next
        p = p_next
    raise DivergenceError(
        f"Riccati iteration did not converge within {max_iter} iterations"
    )


def steady_state_gain(
    phi: np.ndarray, h: np.ndarray, q: np.ndarray, r: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Steady-state Kalman gain and a-priori covariance.

    Returns:
        ``(K, P_minus)`` where ``K = P^- H^T (H P^- H^T + R)^{-1}``.
    """
    p_minus = solve_dare(phi, h, q, r)
    h = np.asarray(h, dtype=float)
    r = np.asarray(r, dtype=float)
    s = h @ p_minus @ h.T + r
    gain = np.linalg.solve(s.T, (p_minus @ h.T).T).T
    return gain, p_minus


class SteadyStateKalmanFilter:
    """Kalman filter running with a precomputed constant gain.

    Per-step cost is two matrix-vector products -- no covariance updates,
    no matrix inversion -- which models the paper's "offline Riccati" mode
    for stationary noise.  The interface matches
    :class:`~repro.filters.kalman.KalmanFilter` closely enough for the DKF
    layer (predict / predict_measurement / update / copy / state_digest).

    Args:
        phi: Constant state transition matrix.
        h: Constant measurement matrix.
        q: Process noise covariance (used only to derive the gain).
        r: Measurement noise covariance (used only to derive the gain).
        x0: Initial state estimate.
        gain: Precomputed gain; derived via :func:`steady_state_gain` when
            omitted.
    """

    def __init__(
        self,
        phi: np.ndarray,
        h: np.ndarray,
        q: np.ndarray,
        r: np.ndarray,
        x0: np.ndarray,
        gain: np.ndarray | None = None,
    ) -> None:
        self._phi = np.asarray(phi, dtype=float)
        self._h = np.asarray(h, dtype=float)
        n = self._phi.shape[0]
        x0 = np.asarray(x0, dtype=float).reshape(-1)
        if x0.shape != (n,):
            raise DimensionError(f"x0 must have shape ({n},), got {x0.shape}")
        if gain is None:
            gain, p_minus = steady_state_gain(phi, h, q, r)
            self._p_minus = p_minus
        else:
            gain = np.asarray(gain, dtype=float)
            self._p_minus = solve_dare(phi, h, q, r)
        if gain.shape != (n, self._h.shape[0]):
            raise DimensionError(
                f"gain must have shape ({n},{self._h.shape[0]}), got {gain.shape}"
            )
        self._gain = gain
        self._x = x0.copy()
        self._k = 0

    @property
    def gain(self) -> np.ndarray:
        """The constant steady-state Kalman gain (copy)."""
        return self._gain.copy()

    @property
    def p_prior(self) -> np.ndarray:
        """Steady-state a-priori covariance (copy)."""
        return self._p_minus.copy()

    @property
    def x(self) -> np.ndarray:
        """Current state estimate (copy)."""
        return self._x.copy()

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._k

    @property
    def state_dim(self) -> int:
        """Number of state variables."""
        return self._phi.shape[0]

    @property
    def measurement_dim(self) -> int:
        """Number of measured variables."""
        return self._h.shape[0]

    def predict(self) -> np.ndarray:
        """Propagate the state one step (constant-gain mode)."""
        self._x = self._phi @ self._x
        self._k += 1
        if not np.all(np.isfinite(self._x)):
            raise DivergenceError(f"state became non-finite at k={self._k}")
        return self._x.copy()

    def predict_measurement(self) -> np.ndarray:
        """Predicted measurement ``H x``."""
        return self._h @ self._x

    def update(self, z: np.ndarray) -> np.ndarray:
        """Apply the constant-gain correction."""
        z = np.atleast_1d(np.asarray(z, dtype=float)).reshape(-1)
        if z.shape != (self._h.shape[0],):
            raise DimensionError(
                f"z must have shape ({self._h.shape[0]},), got {z.shape}"
            )
        self._x = self._x + self._gain @ (z - self._h @ self._x)
        return self._x.copy()

    def copy(self) -> "SteadyStateKalmanFilter":
        """Deep, independent copy of the filter."""
        import copy as _copy

        return _copy.deepcopy(self)

    def state_digest(self) -> tuple[int, bytes]:
        """Cheap fingerprint ``(k, bytes(x))`` for desync detection."""
        return self._k, self._x.tobytes()
