"""Unscented Kalman filter (paper Section 6: "developing models for
non-linear systems").

Where the EKF linearises a non-linear model with Jacobians, the UKF
propagates a deterministic set of *sigma points* through the exact
non-linear functions and re-estimates the Gaussian from the transformed
points (the unscented transform).  It needs no Jacobians, handles stronger
non-linearities than the EKF's first-order expansion, and costs only a few
more function evaluations -- attractive exactly where the paper's footnote
case (orientation-dependent observations) bites hardest.

This implementation uses the standard scaled unscented transform of
Julier & Uhlmann with the Merwe weight parameterisation
(``alpha``, ``beta``, ``kappa``) and shares the
:class:`~repro.filters.ekf.NonlinearModel` description with the EKF, so
the two are drop-in comparable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError, DivergenceError, NotPositiveDefiniteError
from repro.filters.ekf import NonlinearModel
from repro.filters.kalman import KalmanStep, check_covariance

__all__ = ["UnscentedKalmanFilter"]


def _safe_cholesky(p: np.ndarray) -> np.ndarray:
    """Cholesky factor with a graduated jitter fallback."""
    jitter = 0.0
    scale = max(1.0, float(np.abs(p).max()))
    for _ in range(8):
        try:
            return np.linalg.cholesky(p + jitter * np.eye(p.shape[0]))
        except np.linalg.LinAlgError:
            jitter = max(jitter * 10.0, 1e-12 * scale)
    raise NotPositiveDefiniteError(
        "covariance is too far from positive definite for sigma points"
    )


class UnscentedKalmanFilter:
    """UKF over a :class:`~repro.filters.ekf.NonlinearModel`.

    Args:
        model: The non-linear system (Jacobians, if present, are ignored).
        x0: Initial state estimate.
        p0: Initial covariance (identity by default).
        alpha: Sigma-point spread (typically 1e-3 .. 1).
        beta: Prior-distribution parameter (2 is optimal for Gaussians).
        kappa: Secondary scaling (0 or ``3 - n`` conventionally).
    """

    def __init__(
        self,
        model: NonlinearModel,
        x0: np.ndarray,
        p0: np.ndarray | None = None,
        alpha: float = 1e-1,
        beta: float = 2.0,
        kappa: float = 0.0,
    ) -> None:
        self._model = model
        n = model.state_dim
        x0 = np.asarray(x0, dtype=float).reshape(-1)
        if x0.shape != (n,):
            raise DimensionError(f"x0 must have shape ({n},), got {x0.shape}")
        self._x = x0.copy()
        self._p = check_covariance(np.eye(n) if p0 is None else p0, "P0")
        self._k = 0

        lam = alpha * alpha * (n + kappa) - n
        self._lam = lam
        self._wm = np.full(2 * n + 1, 1.0 / (2.0 * (n + lam)))
        self._wc = self._wm.copy()
        self._wm[0] = lam / (n + lam)
        self._wc[0] = lam / (n + lam) + (1.0 - alpha * alpha + beta)

    @property
    def state_dim(self) -> int:
        """Number of state variables."""
        return self._model.state_dim

    @property
    def measurement_dim(self) -> int:
        """Number of measured variables."""
        return self._model.measurement_dim

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._k

    @property
    def x(self) -> np.ndarray:
        """Current state estimate (copy)."""
        return self._x.copy()

    @property
    def p(self) -> np.ndarray:
        """Current error covariance (copy)."""
        return self._p.copy()

    def _sigma_points(self, x: np.ndarray, p: np.ndarray) -> np.ndarray:
        """The ``2n + 1`` scaled sigma points about ``(x, P)``."""
        n = x.shape[0]
        chol = _safe_cholesky((n + self._lam) * p)
        points = np.empty((2 * n + 1, n))
        points[0] = x
        for i in range(n):
            points[1 + i] = x + chol[:, i]
            points[1 + n + i] = x - chol[:, i]
        return points

    def predict(self) -> np.ndarray:
        """Unscented propagation through ``f``."""
        points = self._sigma_points(self._x, self._p)
        propagated = np.stack(
            [np.asarray(self._model.f(pt, self._k), dtype=float) for pt in points]
        )
        self._x = self._wm @ propagated
        centred = propagated - self._x
        self._p = (
            (centred.T * self._wc) @ centred + self._model.q
        )
        self._p = 0.5 * (self._p + self._p.T)
        self._k += 1
        if not np.all(np.isfinite(self._x)):
            raise DivergenceError(f"UKF state became non-finite at k={self._k}")
        return self._x.copy()

    def predict_measurement(self) -> np.ndarray:
        """Unscented measurement prediction (mean of ``h`` over sigmas)."""
        points = self._sigma_points(self._x, self._p)
        k_idx = max(self._k - 1, 0)
        transformed = np.stack(
            [np.asarray(self._model.h(pt, k_idx), dtype=float) for pt in points]
        )
        return self._wm @ transformed

    def update(self, z: np.ndarray) -> np.ndarray:
        """Unscented correction with measurement ``z``."""
        z = np.atleast_1d(np.asarray(z, dtype=float)).reshape(-1)
        if z.shape != (self._model.measurement_dim,):
            raise DimensionError(
                f"z must have shape ({self._model.measurement_dim},), "
                f"got {z.shape}"
            )
        k_idx = max(self._k - 1, 0)
        points = self._sigma_points(self._x, self._p)
        transformed = np.stack(
            [np.asarray(self._model.h(pt, k_idx), dtype=float) for pt in points]
        )
        z_mean = self._wm @ transformed
        z_centred = transformed - z_mean
        x_centred = points - self._x
        s = (z_centred.T * self._wc) @ z_centred + self._model.r
        cross = (x_centred.T * self._wc) @ z_centred
        gain = np.linalg.solve(s.T, cross.T).T
        self._x = self._x + gain @ (z - z_mean)
        self._p = self._p - gain @ s @ gain.T
        self._p = 0.5 * (self._p + self._p.T)
        if not np.all(np.isfinite(self._x)):
            raise DivergenceError(f"UKF state became non-finite at k={self._k}")
        return self._x.copy()

    def step(self, z: np.ndarray | None = None) -> KalmanStep:
        """One full predict(-correct) cycle (KalmanFilter-compatible)."""
        k = self._k
        x_prior = self.predict()
        z_pred = self.predict_measurement()
        if z is None:
            return KalmanStep(k=k, x_prior=x_prior, x_post=self.x, z_pred=z_pred)
        innovation = np.atleast_1d(np.asarray(z, dtype=float)) - z_pred
        self.update(z)
        return KalmanStep(
            k=k,
            x_prior=x_prior,
            x_post=self.x,
            z_pred=z_pred,
            innovation=innovation,
            updated=True,
        )

    def copy(self) -> "UnscentedKalmanFilter":
        """Deep, independent copy of the filter."""
        import copy as _copy

        return _copy.deepcopy(self)

    def state_digest(self) -> tuple[int, bytes]:
        """Cheap fingerprint ``(k, bytes(x))`` for desync detection."""
        return self._k, self._x.tobytes()
