"""On-line data smoothing with a scalar Kalman filter (paper Section 4.3).

The network-monitoring example feeds extremely noisy data with "no visually
identifiable trend".  Before the DKF protocol sees a reading, an extra
filter ``KF_c`` at the remote source smooths it; the smoothing strength is
the user-supplied factor ``F`` -- the process noise covariance of a scalar
constant model.  Small ``F`` trusts the internal state (heavy smoothing,
``F = 1e-9`` matches a moving average in Fig. 10); large ``F`` follows the
raw signal.

The smoother is "truly online" -- it needs no window buffer, unlike the
moving-average baseline -- which is the memory advantage the paper claims.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.kalman import KalmanFilter

__all__ = ["StreamSmoother", "VectorSmoother", "smooth_series"]


class StreamSmoother:
    """Scalar constant-model Kalman smoother ``KF_c``.

    Args:
        f: Smoothing factor -- the process noise variance.  Must be
            non-negative; 0 freezes on the long-run mean.
        r: Measurement noise variance (relative scale against ``f`` sets
            the effective bandwidth; the paper varies ``F`` with fixed
            ``R``).
        x0: Optional initial value; the first observed sample is used when
            omitted.

    The smoother is deterministic, so a mirrored copy at the server stays
    in lock-step with the source copy -- this matters because both ends of
    the DKF protocol must agree on the (smoothed) value stream.
    """

    def __init__(self, f: float, r: float = 1.0, x0: float | None = None) -> None:
        if f < 0:
            raise ConfigurationError("smoothing factor F must be non-negative")
        if r <= 0:
            raise ConfigurationError("measurement variance r must be positive")
        self._f = float(f)
        self._r = float(r)
        self._filter: KalmanFilter | None = None
        if x0 is not None:
            self._filter = self._make_filter(float(x0))

    def _make_filter(self, x0: float) -> KalmanFilter:
        return KalmanFilter(
            phi=np.eye(1),
            h=np.eye(1),
            q=np.array([[self._f]]),
            r=np.array([[self._r]]),
            x0=np.array([x0]),
            p0=np.array([[self._r]]),
        )

    @property
    def f(self) -> float:
        """The smoothing factor ``F``."""
        return self._f

    @property
    def value(self) -> float:
        """Current smoothed value (the first raw sample before any input)."""
        if self._filter is None:
            raise ConfigurationError("smoother has not seen any data yet")
        return float(self._filter.x[0])

    @property
    def primed(self) -> bool:
        """Whether the smoother has absorbed at least one sample."""
        return self._filter is not None

    def smooth(self, value: float) -> float:
        """Absorb one raw sample and return the smoothed value."""
        value = float(value)
        if self._filter is None:
            self._filter = self._make_filter(value)
            return value
        self._filter.predict()
        self._filter.update(np.array([value]))
        return float(self._filter.x[0])

    def copy(self) -> "StreamSmoother":
        """Deep copy (used to mirror ``KF_c`` at the server)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def reset(self) -> None:
        """Forget all state; the next sample re-primes the smoother."""
        self._filter = None


class VectorSmoother:
    """Per-component ``KF_c`` bank for vector-valued streams.

    The paper's smoothing filter is scalar (Example 3 streams a single
    count).  Multi-attribute sources (e.g. X/Y positions) smooth each
    measured component with an independent scalar smoother; components may
    carry distinct smoothing factors, mirroring the per-attribute
    precision widths of Section 6's multi-attribute future-work item.

    Args:
        f: Smoothing factor -- a scalar applied to every component, or a
            sequence with one factor per component.
        dims: Number of measured components.
        r: Measurement noise variance shared by the component smoothers.
    """

    def __init__(self, f: float | np.ndarray, dims: int, r: float = 1.0) -> None:
        if dims < 1:
            raise ConfigurationError("dims must be positive")
        factors = np.atleast_1d(np.asarray(f, dtype=float))
        if factors.size == 1:
            factors = np.full(dims, float(factors[0]))
        if factors.shape != (dims,):
            raise ConfigurationError(
                f"need one smoothing factor per component ({dims}), "
                f"got {factors.shape}"
            )
        self._smoothers = [StreamSmoother(f=float(fi), r=r) for fi in factors]

    @property
    def dims(self) -> int:
        """Number of smoothed components."""
        return len(self._smoothers)

    @property
    def primed(self) -> bool:
        """Whether at least one sample has arrived."""
        return self._smoothers[0].primed

    def smooth(self, values: np.ndarray) -> np.ndarray:
        """Absorb one vector sample; returns the smoothed vector."""
        values = np.atleast_1d(np.asarray(values, dtype=float))
        if values.shape != (self.dims,):
            raise ConfigurationError(
                f"sample must have shape ({self.dims},), got {values.shape}"
            )
        return np.array(
            [s.smooth(float(v)) for s, v in zip(self._smoothers, values)]
        )

    def copy(self) -> "VectorSmoother":
        """Deep copy (used to mirror the bank at the server)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def reset(self) -> None:
        """Forget all state; the next sample re-primes every component."""
        for smoother in self._smoothers:
            smoother.reset()


def smooth_series(values: np.ndarray, f: float, r: float = 1.0) -> np.ndarray:
    """Smooth a whole series at once with :class:`StreamSmoother`.

    Convenience wrapper for offline analysis and the Fig. 10 comparison
    against the moving-average baseline.

    Args:
        values: 1-D array of raw samples.
        f: Smoothing factor.
        r: Measurement noise variance.

    Returns:
        Array of smoothed samples, same shape as ``values``.
    """
    values = np.asarray(values, dtype=float).reshape(-1)
    smoother = StreamSmoother(f=f, r=r)
    return np.array([smoother.smooth(v) for v in values])
