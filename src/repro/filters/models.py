"""State-space model zoo (paper Section 4).

A :class:`StateSpaceModel` bundles the four matrices (``phi``, ``H``, ``Q``,
``R``) plus an initial state builder, and knows how to instantiate a
:class:`~repro.filters.kalman.KalmanFilter`.  The models the paper uses:

* :func:`constant_model` -- Eq. 15: the state is the measured value itself
  and the best prediction is the last estimate.  Conceptually equivalent to
  the cached-approximation baseline.
* :func:`linear_model` -- Eq. 13/14: constant-velocity kinematics; position
  and rate-of-change per tracked coordinate.
* :func:`acceleration_model` / :func:`jerk_model` -- the higher-order
  extensions sketched at the end of Section 4.1 (state ``[P, P', P'', P''']``).
* :func:`sinusoidal_model` -- Eq. 17: power-load model with a sinusoidal
  trend; ``phi_k`` is time-varying.
* :func:`smoothing_model` -- Section 4.3: scalar constant model whose
  process covariance is the user smoothing factor ``F``.

All builders take the measured dimensionality and noise levels as keyword
arguments with the paper's defaults (diagonal ``Q``/``R`` with value 0.05,
Section 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.filters.kalman import KalmanFilter, MatrixLike, resolve_matrix

__all__ = [
    "StateSpaceModel",
    "constant_model",
    "linear_model",
    "acceleration_model",
    "jerk_model",
    "sinusoidal_model",
    "smoothing_model",
    "kinematic_model",
]

# Paper Section 4.1: "we keep the Q and R matrices as diagonal matrices
# with value 0.05".
DEFAULT_NOISE = 0.05


@dataclass(frozen=True)
class StateSpaceModel:
    """A named, fully specified linear(ised) state-space model.

    Attributes:
        name: Human-readable identifier (used in experiment tables).
        phi: State transition matrix or callable ``k -> matrix``.
        h: Measurement matrix or callable.
        q: Process noise covariance or callable.
        r: Measurement noise covariance or callable.
        state_dim: Number of state variables ``n``.
        measurement_dim: Number of measured variables ``m``.
        initializer: Maps the first measurement ``z0`` to an initial state
            vector; defaults to embedding ``z0`` via the pseudo-inverse of
            ``H`` (measured components seeded, derivatives start at zero).
    """

    name: str
    phi: MatrixLike
    h: MatrixLike
    q: MatrixLike
    r: MatrixLike
    state_dim: int
    measurement_dim: int
    initializer: Callable[[np.ndarray], np.ndarray] | None = field(default=None)

    def initial_state(self, z0: np.ndarray) -> np.ndarray:
        """Initial state vector derived from the first measurement."""
        z0 = np.atleast_1d(np.asarray(z0, dtype=float)).reshape(-1)
        if z0.shape != (self.measurement_dim,):
            raise DimensionError(
                f"first measurement must have shape ({self.measurement_dim},), "
                f"got {z0.shape}"
            )
        if self.initializer is not None:
            x0 = np.asarray(self.initializer(z0), dtype=float).reshape(-1)
            if x0.shape != (self.state_dim,):
                raise DimensionError(
                    f"initializer returned shape {x0.shape}, "
                    f"expected ({self.state_dim},)"
                )
            return x0
        h0 = resolve_matrix(self.h, 0)
        return np.linalg.pinv(h0) @ z0

    def build_filter(
        self,
        z0: np.ndarray,
        p0: np.ndarray | None = None,
        p0_scale: float = 1.0,
    ) -> KalmanFilter:
        """Instantiate a :class:`KalmanFilter`, seeded from ``z0``.

        Args:
            z0: First measurement from the stream.
            p0: Explicit initial covariance; overrides ``p0_scale``.
            p0_scale: Scale of the default identity initial covariance.
        """
        x0 = self.initial_state(z0)
        if p0 is None:
            p0 = np.eye(self.state_dim) * p0_scale
        return KalmanFilter(self.phi, self.h, self.q, self.r, x0, p0)


def _diag(value: float | np.ndarray, size: int, name: str) -> np.ndarray:
    """Diagonal covariance from a scalar or per-component vector."""
    arr = np.atleast_1d(np.asarray(value, dtype=float))
    if arr.size == 1:
        arr = np.full(size, float(arr[0]))
    if arr.shape != (size,):
        raise DimensionError(f"{name} must be scalar or length {size}")
    if np.any(arr < 0):
        raise ConfigurationError(f"{name} must be non-negative")
    return np.diag(arr)


def constant_model(
    dims: int = 1,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
) -> StateSpaceModel:
    """Constant state model (paper Eq. 15): ``x_k = x_{k-1}``.

    The latest estimate is the best prediction of the future, which makes
    the DKF behave like the cached-approximation baseline -- the paper's
    "worst-case" model used to show DKF never does worse than caching.

    Args:
        dims: Number of measured coordinates (2 for the moving object).
        q: Process noise variance (scalar or per-coordinate).
        r: Measurement noise variance.
    """
    eye = np.eye(dims)
    return StateSpaceModel(
        name=f"constant[{dims}d]",
        phi=eye,
        h=eye.copy(),
        q=_diag(q, dims, "q"),
        r=_diag(r, dims, "r"),
        state_dim=dims,
        measurement_dim=dims,
    )


def kinematic_model(
    order: int,
    dims: int = 2,
    dt: float = 1.0,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
    name: str | None = None,
) -> StateSpaceModel:
    """Generic kinematic model with ``order`` derivatives per coordinate.

    ``order=1`` gives the paper's linear (constant-velocity) model of
    Eq. 13/14; ``order=2`` constant acceleration; ``order=3`` constant jerk
    (the Section 4.1 extension ``P_k = P + P' dt + P'' dt^2/2 + P''' dt^3/6``).

    State layout per coordinate ``c``: ``[c, c', c'', ...]``; coordinates are
    stacked, matching Eq. 13's ``[x, x', y, y']`` layout for order 1.

    Args:
        order: Number of derivatives tracked (>= 0).
        dims: Number of measured coordinates.
        dt: Sampling interval ``delta t``.
        q: Process noise variance per state variable (scalar or vector of
            length ``dims * (order + 1)``).
        r: Measurement noise variance per coordinate.
        name: Override the auto-generated model name.
    """
    if order < 0:
        raise ConfigurationError("order must be non-negative")
    if dims < 1:
        raise ConfigurationError("dims must be positive")
    block_n = order + 1
    # Taylor-series block: phi[i, j] = dt^(j-i) / (j-i)! for j >= i.
    block = np.zeros((block_n, block_n))
    for i in range(block_n):
        for j in range(i, block_n):
            block[i, j] = dt ** (j - i) / math.factorial(j - i)
    n = dims * block_n
    phi = np.kron(np.eye(dims), block)
    h = np.zeros((dims, n))
    for d in range(dims):
        h[d, d * block_n] = 1.0
    label = name or {0: "constant", 1: "linear", 2: "acceleration", 3: "jerk"}.get(
        order, f"order{order}"
    )
    return StateSpaceModel(
        name=f"{label}[{dims}d,dt={dt:g}]",
        phi=phi,
        h=h,
        q=_diag(q, n, "q"),
        r=_diag(r, dims, "r"),
        state_dim=n,
        measurement_dim=dims,
    )


def linear_model(
    dims: int = 2,
    dt: float = 1.0,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
) -> StateSpaceModel:
    """Constant-velocity model (paper Eq. 13/14).

    For ``dims=2`` the state is ``[x, x', y, y']`` with transition matrix
    Eq. 14 and measurement matrix Eq. 16 (positions observed, rates hidden).
    """
    return kinematic_model(order=1, dims=dims, dt=dt, q=q, r=r, name="linear")


def acceleration_model(
    dims: int = 2,
    dt: float = 1.0,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
) -> StateSpaceModel:
    """Constant-acceleration kinematics (Section 4.1 higher-order extension)."""
    return kinematic_model(order=2, dims=dims, dt=dt, q=q, r=r, name="acceleration")


def jerk_model(
    dims: int = 2,
    dt: float = 1.0,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
) -> StateSpaceModel:
    """Constant-jerk kinematics: state ``[P, P', P'', P''']`` per coordinate."""
    return kinematic_model(order=3, dims=dims, dt=dt, q=q, r=r, name="jerk")


def sinusoidal_model(
    omega: float,
    theta: float = 0.0,
    gamma: float = 1.0,
    q: float | np.ndarray = DEFAULT_NOISE,
    r: float | np.ndarray = DEFAULT_NOISE,
) -> StateSpaceModel:
    """Sinusoidal trend model (paper Section 4.2, Eq. 17).

    The measured value ``x_k`` carries a sinusoidal component and ``s_k``
    its (constant) rate parameter::

        x_k = x_{k-1} + gamma * cos(omega * k + theta) * s_{k-1}
        s_k = s_{k-1}

    so ``phi_k = [[1, gamma cos(omega k + theta)], [0, 1]]`` is
    time-varying and ``H = [1, 0]`` (Eq. 18).

    Args:
        omega: Angular frequency of the trend (e.g. ``2 pi / 24`` for a
            diurnal cycle on hourly data; the paper reports ``18/pi``).
        theta: Phase offset.
        gamma: Amplitude coupling of the rate component.
        q: Process noise variance (scalar applied to both state variables,
            or a length-2 vector).
        r: Measurement noise variance (scalar).
    """

    def phi(k: int) -> np.ndarray:
        return np.array(
            [[1.0, gamma * math.cos(omega * k + theta)], [0.0, 1.0]]
        )

    return StateSpaceModel(
        name=f"sinusoidal[w={omega:g}]",
        phi=phi,
        h=np.array([[1.0, 0.0]]),
        q=_diag(q, 2, "q"),
        r=_diag(r, 1, "r"),
        state_dim=2,
        measurement_dim=1,
        initializer=lambda z0: np.array([float(z0[0]), 1.0]),
    )


def smoothing_model(
    f: float,
    r: float = 1.0,
) -> StateSpaceModel:
    """Scalar smoothing model for ``KF_c`` (paper Section 4.3).

    A constant model whose single-element process covariance is the user
    smoothing factor ``F``.  Small ``F`` means the filter trusts its state
    and heavily smooths the input (``F = 1e-9`` tracks a moving average,
    Fig. 10); large ``F`` follows the raw data.

    Args:
        f: Smoothing factor -- the process noise variance.
        r: Measurement noise variance (the relative scale of ``f`` to ``r``
            sets the effective bandwidth).
    """
    if f < 0:
        raise ConfigurationError("smoothing factor F must be non-negative")
    return StateSpaceModel(
        name=f"smoothing[F={f:g}]",
        phi=np.eye(1),
        h=np.eye(1),
        q=np.array([[float(f)]]),
        r=_diag(r, 1, "r"),
        state_dim=1,
        measurement_dim=1,
    )
