"""Recursive (weighted) least squares (paper Section 3.2, case 4).

When external measurements carry no confidence value -- the network
monitoring example measures traffic *exactly* -- maintaining measurement
covariances "makes little sense", and state estimation reduces to a
least-squares fit: choose the state that best explains the observations.
The paper points out that least squares is a special case of Kalman
filtering; this module provides both the recursive estimator and a helper
that demonstrates the equivalence (used by the property tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError

__all__ = ["RecursiveLeastSquares", "batch_least_squares"]


class RecursiveLeastSquares:
    """Recursive (optionally weighted, optionally forgetting) least squares.

    Estimates a parameter vector ``theta`` from scalar observations
    ``z_k = h_k^T theta + noise`` one sample at a time.  With forgetting
    factor ``lam < 1`` older samples are down-weighted geometrically, which
    lets the estimator track slowly drifting parameters -- the degenerate,
    zero-process-noise cousin of the Kalman filter.

    Args:
        dim: Number of parameters.
        lam: Forgetting factor in ``(0, 1]``; 1 means ordinary RLS.
        p0_scale: Initial covariance scale (large = uninformative prior).
        theta0: Initial parameter estimate; zeros when omitted.
    """

    def __init__(
        self,
        dim: int,
        lam: float = 1.0,
        p0_scale: float = 1e6,
        theta0: np.ndarray | None = None,
    ) -> None:
        if dim < 1:
            raise DimensionError("dim must be positive")
        if not 0.0 < lam <= 1.0:
            raise ValueError("forgetting factor must be in (0, 1]")
        self._dim = dim
        self._lam = lam
        self._theta = (
            np.zeros(dim)
            if theta0 is None
            else np.asarray(theta0, dtype=float).reshape(-1)
        )
        if self._theta.shape != (dim,):
            raise DimensionError(f"theta0 must have shape ({dim},)")
        self._p = np.eye(dim) * p0_scale
        self._count = 0

    @property
    def theta(self) -> np.ndarray:
        """Current parameter estimate (copy)."""
        return self._theta.copy()

    @property
    def p(self) -> np.ndarray:
        """Current (scaled) parameter covariance (copy)."""
        return self._p.copy()

    @property
    def count(self) -> int:
        """Number of samples absorbed so far."""
        return self._count

    def update(self, h: np.ndarray, z: float, weight: float = 1.0) -> np.ndarray:
        """Absorb one observation ``z = h . theta + noise``.

        Args:
            h: Regressor vector of shape ``(dim,)``.
            z: Observed scalar value.
            weight: Optional confidence weight (> 0); larger values make the
                sample more influential (weighted least squares).

        Returns:
            The updated parameter estimate (copy).
        """
        h = np.asarray(h, dtype=float).reshape(-1)
        if h.shape != (self._dim,):
            raise DimensionError(f"h must have shape ({self._dim},), got {h.shape}")
        if weight <= 0:
            raise ValueError("weight must be positive")
        ph = self._p @ h
        denom = self._lam / weight + h @ ph
        gain = ph / denom
        self._theta = self._theta + gain * (float(z) - h @ self._theta)
        self._p = (self._p - np.outer(gain, ph)) / self._lam
        self._p = 0.5 * (self._p + self._p.T)
        self._count += 1
        return self._theta.copy()

    def predict(self, h: np.ndarray) -> float:
        """Predicted observation ``h . theta`` for a regressor ``h``."""
        h = np.asarray(h, dtype=float).reshape(-1)
        if h.shape != (self._dim,):
            raise DimensionError(f"h must have shape ({self._dim},), got {h.shape}")
        return float(h @ self._theta)


def batch_least_squares(
    regressors: np.ndarray, observations: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Closed-form (weighted) least-squares solution, for cross-checking RLS.

    Solves ``min_theta sum_k w_k (z_k - h_k . theta)^2`` via the normal
    equations with a pseudo-inverse (rank-deficient regressor sets get the
    minimum-norm solution).

    Args:
        regressors: Array of shape ``(num_samples, dim)``.
        observations: Array of shape ``(num_samples,)``.
        weights: Optional positive weights of shape ``(num_samples,)``.

    Returns:
        Parameter vector of shape ``(dim,)``.
    """
    a = np.asarray(regressors, dtype=float)
    z = np.asarray(observations, dtype=float).reshape(-1)
    if a.ndim != 2 or a.shape[0] != z.shape[0]:
        raise DimensionError(
            f"regressors {a.shape} incompatible with observations {z.shape}"
        )
    if weights is not None:
        w = np.asarray(weights, dtype=float).reshape(-1)
        if w.shape != z.shape:
            raise DimensionError("weights must match observations")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
        sqrt_w = np.sqrt(w)
        a = a * sqrt_w[:, None]
        z = z * sqrt_w
    return np.linalg.pinv(a) @ z
