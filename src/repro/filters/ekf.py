"""Extended Kalman filter (paper Section 3.2, cases 2 and 3).

When the state propagation ``x_{k+1} = f(x_k)`` or the measurement
``z_k = h(x_k)`` is non-linear, the standard filter no longer applies
directly.  The EKF linearises both maps about the most recent estimate,
using user-supplied Jacobians (or numerical differentiation when none are
given), and then runs the ordinary predict/correct cycle on the linearised
system.  The paper notes this loses provable optimality but remains "very
useful, easy to implement, and efficient at run time".

The canonical non-linear example from the paper's footnote -- a platform
that can rotate about itself, so the observed pose depends non-linearly on
heading -- is provided as :func:`coordinated_turn_model`.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError, DivergenceError
from repro.filters.kalman import KalmanStep, check_covariance

__all__ = ["ExtendedKalmanFilter", "NonlinearModel", "coordinated_turn_model"]

StateFn = Callable[[np.ndarray, int], np.ndarray]
JacobianFn = Callable[[np.ndarray, int], np.ndarray]


def _numerical_jacobian(
    fn: StateFn, x: np.ndarray, k: int, out_dim: int, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference Jacobian of ``fn`` at ``x`` (fallback when the
    model does not supply an analytic one)."""
    n = x.shape[0]
    jac = np.empty((out_dim, n))
    for i in range(n):
        step = np.zeros(n)
        step[i] = eps * max(1.0, abs(x[i]))
        hi = np.asarray(fn(x + step, k), dtype=float)
        lo = np.asarray(fn(x - step, k), dtype=float)
        jac[:, i] = (hi - lo) / (2.0 * step[i])
    return jac


@dataclass(frozen=True)
class NonlinearModel:
    """Non-linear system description for the EKF.

    Attributes:
        name: Human-readable identifier.
        f: State propagation ``(x, k) -> x_next``.
        h: Measurement map ``(x, k) -> z``.
        q: Process noise covariance (constant matrix).
        r: Measurement noise covariance (constant matrix).
        state_dim: Dimension of the state vector.
        measurement_dim: Dimension of the measurement vector.
        f_jacobian: Optional analytic Jacobian of ``f``; numerical
            differentiation is used when omitted.
        h_jacobian: Optional analytic Jacobian of ``h``.
    """

    name: str
    f: StateFn
    h: StateFn
    q: np.ndarray
    r: np.ndarray
    state_dim: int
    measurement_dim: int
    f_jacobian: JacobianFn | None = None
    h_jacobian: JacobianFn | None = None


class ExtendedKalmanFilter:
    """EKF over a :class:`NonlinearModel`.

    The interface mirrors :class:`~repro.filters.kalman.KalmanFilter`
    (predict / update / step / forecast) so the DKF layer can use either
    filter interchangeably.
    """

    def __init__(
        self,
        model: NonlinearModel,
        x0: np.ndarray,
        p0: np.ndarray | None = None,
    ) -> None:
        self._model = model
        x0 = np.asarray(x0, dtype=float).reshape(-1)
        if x0.shape != (model.state_dim,):
            raise DimensionError(
                f"x0 must have shape ({model.state_dim},), got {x0.shape}"
            )
        self._x = x0.copy()
        self._p = check_covariance(
            np.eye(model.state_dim) if p0 is None else p0, "P0"
        )
        self._k = 0

    @property
    def state_dim(self) -> int:
        """Number of state variables."""
        return self._model.state_dim

    @property
    def measurement_dim(self) -> int:
        """Number of measured variables."""
        return self._model.measurement_dim

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._k

    @property
    def x(self) -> np.ndarray:
        """Current state estimate (copy)."""
        return self._x.copy()

    @property
    def p(self) -> np.ndarray:
        """Current error covariance (copy)."""
        return self._p.copy()

    def _f_jac(self, x: np.ndarray, k: int) -> np.ndarray:
        if self._model.f_jacobian is not None:
            return np.asarray(self._model.f_jacobian(x, k), dtype=float)
        return _numerical_jacobian(self._model.f, x, k, self._model.state_dim)

    def _h_jac(self, x: np.ndarray, k: int) -> np.ndarray:
        if self._model.h_jacobian is not None:
            return np.asarray(self._model.h_jacobian(x, k), dtype=float)
        return _numerical_jacobian(self._model.h, x, k, self._model.measurement_dim)

    def predict(self) -> np.ndarray:
        """Propagate through ``f`` with covariance linearised about ``x``."""
        jac = self._f_jac(self._x, self._k)
        self._x = np.asarray(self._model.f(self._x, self._k), dtype=float)
        self._p = jac @ self._p @ jac.T + self._model.q
        self._p = 0.5 * (self._p + self._p.T)
        self._k += 1
        if not np.all(np.isfinite(self._x)):
            raise DivergenceError(f"EKF state became non-finite at k={self._k}")
        return self._x.copy()

    def predict_measurement(self) -> np.ndarray:
        """Non-linear measurement prediction ``h(x)``."""
        return np.asarray(
            self._model.h(self._x, max(self._k - 1, 0)), dtype=float
        )

    def update(self, z: np.ndarray) -> np.ndarray:
        """Correct with measurement ``z`` using the linearised ``H``."""
        z = np.atleast_1d(np.asarray(z, dtype=float)).reshape(-1)
        if z.shape != (self._model.measurement_dim,):
            raise DimensionError(
                f"z must have shape ({self._model.measurement_dim},), got {z.shape}"
            )
        k_idx = max(self._k - 1, 0)
        h_jac = self._h_jac(self._x, k_idx)
        innovation = z - self.predict_measurement()
        s = h_jac @ self._p @ h_jac.T + self._model.r
        gain = np.linalg.solve(s.T, (self._p @ h_jac.T).T).T
        self._x = self._x + gain @ innovation
        i_kh = np.eye(self._model.state_dim) - gain @ h_jac
        self._p = i_kh @ self._p @ i_kh.T + gain @ self._model.r @ gain.T
        self._p = 0.5 * (self._p + self._p.T)
        if not np.all(np.isfinite(self._x)):
            raise DivergenceError(f"EKF state became non-finite at k={self._k}")
        return self._x.copy()

    def step(self, z: np.ndarray | None = None) -> KalmanStep:
        """One full predict(-correct) cycle, mirroring ``KalmanFilter.step``."""
        k = self._k
        x_prior = self.predict()
        z_pred = self.predict_measurement()
        if z is None:
            return KalmanStep(k=k, x_prior=x_prior, x_post=self.x, z_pred=z_pred)
        innovation = np.atleast_1d(np.asarray(z, dtype=float)) - z_pred
        self.update(z)
        return KalmanStep(
            k=k,
            x_prior=x_prior,
            x_post=self.x,
            z_pred=z_pred,
            innovation=innovation,
            updated=True,
        )

    def forecast(self, steps: int) -> np.ndarray:
        """Extrapolate ``steps`` measurement predictions without mutating."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        x = self._x.copy()
        out = np.empty((steps, self._model.measurement_dim))
        for i in range(steps):
            x = np.asarray(self._model.f(x, self._k + i), dtype=float)
            out[i] = np.asarray(self._model.h(x, self._k + i), dtype=float)
        return out

    def copy(self) -> "ExtendedKalmanFilter":
        """Deep, independent copy of the filter."""
        import copy as _copy

        return _copy.deepcopy(self)

    def state_digest(self) -> tuple[int, bytes]:
        """Cheap fingerprint ``(k, bytes(x))`` for desync detection."""
        return self._k, self._x.tobytes()


def coordinated_turn_model(
    dt: float = 1.0,
    q: float = 0.05,
    r: float = 0.05,
    turn_rate_noise: float = 1e-3,
) -> NonlinearModel:
    """Coordinated-turn motion model (the paper's non-linear footnote case).

    State: ``[x, y, v, heading, omega]`` -- position, speed, heading and
    turn rate.  The platform moves along a circular arc; position depends on
    heading non-linearly, which is exactly the situation the paper flags as
    requiring the EKF.  Measurements observe position only.

    Args:
        dt: Sampling interval.
        q: Process noise variance on position/speed/heading.
        r: Measurement noise variance on observed positions.
        turn_rate_noise: Process noise variance on the turn rate.
    """

    def f(x: np.ndarray, k: int) -> np.ndarray:
        px, py, v, hdg, w = x
        new_hdg = hdg + w * dt
        return np.array(
            [
                px + v * math.cos(hdg) * dt,
                py + v * math.sin(hdg) * dt,
                v,
                new_hdg,
                w,
            ]
        )

    def f_jac(x: np.ndarray, k: int) -> np.ndarray:
        _px, _py, v, hdg, _w = x
        return np.array(
            [
                [1.0, 0.0, math.cos(hdg) * dt, -v * math.sin(hdg) * dt, 0.0],
                [0.0, 1.0, math.sin(hdg) * dt, v * math.cos(hdg) * dt, 0.0],
                [0.0, 0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 1.0, dt],
                [0.0, 0.0, 0.0, 0.0, 1.0],
            ]
        )

    def h(x: np.ndarray, k: int) -> np.ndarray:
        return x[:2].copy()

    def h_jac(x: np.ndarray, k: int) -> np.ndarray:
        jac = np.zeros((2, 5))
        jac[0, 0] = 1.0
        jac[1, 1] = 1.0
        return jac

    return NonlinearModel(
        name=f"coordinated-turn[dt={dt:g}]",
        f=f,
        h=h,
        q=np.diag([q, q, q, q, turn_rate_noise]),
        r=np.eye(2) * r,
        state_dim=5,
        measurement_dim=2,
        f_jacobian=f_jac,
        h_jacobian=h_jac,
    )
