"""Noise-parameter tuning against a calibration trace.

The paper fixes Q = R = 0.05 "for simplicity" and shows the DKF is robust
to that choice; a deployment can do better.  Given a short calibration
stretch of the stream, :func:`tune_noise` grid-searches the (Q, R) scalar
pair that minimises either the one-step prediction error (best tracking)
or the DKF update count at a given δ (best suppression), and
:func:`innovation_diagnosis` reports whether an existing filter's noise
levels look too tight or too loose from its innovation statistics.

All candidates are evaluated with exactly the deterministic machinery the
protocol runs, so the tuned values transfer directly into a
:class:`~repro.dkf.config.DKFConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.models import StateSpaceModel
from repro.streams.base import MaterializedStream

__all__ = ["TuningResult", "tune_noise", "innovation_diagnosis"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a noise grid search.

    Attributes:
        q: Winning process-noise variance (scalar, applied diagonally).
        r: Winning measurement-noise variance.
        score: The winning objective value (lower is better).
        objective: Which objective was optimised.
        grid: Every evaluated ``(q, r, score)`` triple, for inspection.
    """

    q: float
    r: float
    score: float
    objective: str
    grid: tuple[tuple[float, float, float], ...]


def _prediction_error_score(
    model_builder, stream: MaterializedStream, q: float, r: float
) -> float:
    """Mean one-step prediction error of the (q, r) candidate."""
    model = model_builder(q, r)
    records = list(stream)
    kf = model.build_filter(records[0].value)
    total = 0.0
    for record in records[1:]:
        kf.predict()
        prediction = kf.predict_measurement()
        total += float(np.sum(np.abs(prediction - record.value)))
        kf.update(record.value)
    return total / max(len(records) - 1, 1)


def _update_count_score(
    model_builder, stream: MaterializedStream, q: float, r: float, delta: float
) -> float:
    """DKF update count of the candidate at precision delta."""
    from repro.dkf.config import DKFConfig
    from repro.dkf.session import DKFSession

    model = model_builder(q, r)
    session = DKFSession(DKFConfig(model=model, delta=delta))
    return float(sum(d.sent for d in session.run(stream)))


def tune_noise(
    model_builder,
    stream: MaterializedStream,
    q_grid: list[float] | None = None,
    r_grid: list[float] | None = None,
    objective: str = "prediction",
    delta: float | None = None,
) -> TuningResult:
    """Grid-search scalar (Q, R) for a model family on a calibration trace.

    Args:
        model_builder: Callable ``(q, r) -> StateSpaceModel`` (e.g.
            ``lambda q, r: linear_model(dims=2, dt=0.1, q=q, r=r)``).
        stream: Calibration stretch of the stream.
        q_grid: Candidate process-noise variances (log-spaced default).
        r_grid: Candidate measurement-noise variances.
        objective: ``"prediction"`` minimises mean one-step prediction
            error; ``"updates"`` minimises DKF update count (requires
            ``delta``).
        delta: Precision width for the ``"updates"`` objective.

    Returns:
        The winning pair with the full evaluated grid.
    """
    if objective not in ("prediction", "updates"):
        raise ConfigurationError(
            f"objective must be 'prediction' or 'updates', got {objective!r}"
        )
    if objective == "updates" and delta is None:
        raise ConfigurationError("the 'updates' objective requires delta")
    if len(stream) < 3:
        raise ConfigurationError("calibration stream too short")
    q_grid = q_grid or [1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 1.0]
    r_grid = r_grid or [1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 1.0]

    evaluated = []
    best = None
    for q in q_grid:
        for r in r_grid:
            if q <= 0 or r <= 0:
                raise ConfigurationError("grid values must be positive")
            if objective == "prediction":
                score = _prediction_error_score(model_builder, stream, q, r)
            else:
                score = _update_count_score(model_builder, stream, q, r, delta)
            evaluated.append((q, r, score))
            if best is None or score < best[2]:
                best = (q, r, score)
    return TuningResult(
        q=best[0],
        r=best[1],
        score=best[2],
        objective=objective,
        grid=tuple(evaluated),
    )


def innovation_diagnosis(
    model: StateSpaceModel,
    stream: MaterializedStream,
    warmup: int = 10,
) -> dict[str, float | str]:
    """Diagnose a model's noise levels from its innovation statistics.

    Runs the filter over the trace and compares the mean normalised
    innovation squared (NIS) against its expectation (the measurement
    dimension ``m``):

    * NIS >> m -- the filter is overconfident: Q and/or R too small;
    * NIS << m -- the filter is underconfident: Q and/or R too large;
    * NIS ~ m  -- consistent.

    Returns:
        ``{"mean_nis": ..., "expected": m, "verdict": ...}``.
    """
    records = list(stream)
    if len(records) <= warmup + 1:
        raise ConfigurationError("stream too short for the requested warmup")
    kf = model.build_filter(records[0].value)
    nis_values = []
    for i, record in enumerate(records[1:], start=1):
        kf.predict()
        innovation = record.value - kf.predict_measurement()
        s = kf.innovation_covariance()
        if i > warmup:
            nis_values.append(
                float(innovation @ np.linalg.solve(s, innovation))
            )
        kf.update(record.value)
    mean_nis = float(np.mean(nis_values))
    m = model.measurement_dim
    if mean_nis > 3.0 * m:
        verdict = "overconfident"
    elif mean_nis < m / 3.0:
        verdict = "underconfident"
    else:
        verdict = "consistent"
    return {"mean_nis": mean_nis, "expected": float(m), "verdict": verdict}
