"""Adaptive noise-covariance estimation (paper Section 6, future-work
item: "robustness of the KF when the statistics of the noise are not
known").

When ``Q`` and ``R`` are unknown or drift over time, they can be estimated
online from the innovation sequence.  This module implements the classic
innovation-based adaptive estimation (IAE) scheme: over a sliding window
the sample covariance of the innovations ``C_v`` is compared with its
theoretical value ``H P^- H^T + R``, giving

* an R estimate:  ``R ≈ C_v - H P^- H^T``
* a Q estimate:   ``Q ≈ K C_v K^T`` (the portion of innovation energy the
  gain attributes to the process).

Estimates are floored to keep covariances positive semi-definite and blended
with the running values through an exponential forgetting factor, so a few
wild innovations cannot destabilise the filter.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.kalman import KalmanFilter, KalmanStep

__all__ = ["AdaptiveNoiseKalmanFilter"]


class AdaptiveNoiseKalmanFilter:
    """Kalman filter wrapper that re-estimates ``Q`` and ``R`` online.

    Wraps a :class:`~repro.filters.kalman.KalmanFilter` built with initial
    guesses for the noise covariances and refines them from observed
    innovations.  The wrapped filter is rebuilt in place by swapping its
    covariance callables, so downstream code (the DKF layer) sees a normal
    filter interface.

    Args:
        phi: State transition matrix (constant or callable).
        h: Measurement matrix (constant or callable).
        q0: Initial process noise covariance guess.
        r0: Initial measurement noise covariance guess.
        x0: Initial state.
        p0: Initial covariance.
        window: Number of innovations per estimation window.
        forgetting: Blend factor in ``(0, 1]``; the new estimate receives
            this weight and the old value the remainder.
        floor: Minimum eigenvalue enforced on the adapted covariances.
        adapt_q: Whether to adapt the process noise.
        adapt_r: Whether to adapt the measurement noise.
    """

    def __init__(
        self,
        phi,
        h,
        q0: np.ndarray,
        r0: np.ndarray,
        x0: np.ndarray,
        p0: np.ndarray | None = None,
        window: int = 30,
        forgetting: float = 0.3,
        floor: float = 1e-9,
        adapt_q: bool = True,
        adapt_r: bool = True,
    ) -> None:
        if window < 2:
            raise ConfigurationError("window must be at least 2")
        if not 0 < forgetting <= 1:
            raise ConfigurationError("forgetting must be in (0, 1]")
        self._q = np.asarray(q0, dtype=float).copy()
        self._r = np.asarray(r0, dtype=float).copy()
        self._filter = KalmanFilter(
            phi, h, lambda k: self._q, lambda k: self._r, x0, p0
        )
        self._window = window
        self._forgetting = forgetting
        self._floor = floor
        self._adapt_q = adapt_q
        self._adapt_r = adapt_r
        self._innovations: deque[np.ndarray] = deque(maxlen=window)
        self._gains: deque[np.ndarray] = deque(maxlen=window)

    @property
    def filter(self) -> KalmanFilter:
        """The wrapped filter (live object, not a copy)."""
        return self._filter

    @property
    def q(self) -> np.ndarray:
        """Current adapted process noise covariance (copy)."""
        return self._q.copy()

    @property
    def r(self) -> np.ndarray:
        """Current adapted measurement noise covariance (copy)."""
        return self._r.copy()

    @property
    def x(self) -> np.ndarray:
        """Current state estimate (copy)."""
        return self._filter.x

    @property
    def p(self) -> np.ndarray:
        """Current error covariance (copy)."""
        return self._filter.p

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._filter.k

    def _floor_psd(self, m: np.ndarray) -> np.ndarray:
        """Project ``m`` onto symmetric matrices with eigenvalues >= floor."""
        sym = 0.5 * (m + m.T)
        eigvals, eigvecs = np.linalg.eigh(sym)
        eigvals = np.maximum(eigvals, self._floor)
        return eigvecs @ np.diag(eigvals) @ eigvecs.T

    def _adapt(self) -> None:
        """Re-estimate Q/R from the innovation window and blend them in."""
        if len(self._innovations) < self._window:
            return
        arr = np.stack(list(self._innovations))
        c_v = (arr.T @ arr) / arr.shape[0]
        k_idx = max(self._filter.k - 1, 0)
        h = self._filter.h_at(k_idx)
        p_prior = self._filter.p_prior

        if self._adapt_r:
            r_est = self._floor_psd(c_v - h @ p_prior @ h.T)
            self._r = (
                (1 - self._forgetting) * self._r + self._forgetting * r_est
            )
            self._r = self._floor_psd(self._r)
        if self._adapt_q and self._gains:
            gain = self._gains[-1]
            q_est = self._floor_psd(gain @ c_v @ gain.T)
            self._q = (
                (1 - self._forgetting) * self._q + self._forgetting * q_est
            )
            self._q = self._floor_psd(self._q)

    def step(self, z: np.ndarray | None = None) -> KalmanStep:
        """Run one predict(-correct) cycle, adapting after each correction."""
        record = self._filter.step(z)
        if record.updated and record.innovation is not None:
            self._innovations.append(record.innovation)
            if record.gain is not None:
                self._gains.append(record.gain)
            self._adapt()
        return record

    def predict(self) -> np.ndarray:
        """Propagate the wrapped filter one step."""
        return self._filter.predict()

    def predict_measurement(self) -> np.ndarray:
        """Predicted measurement of the wrapped filter."""
        return self._filter.predict_measurement()

    def update(self, z: np.ndarray) -> np.ndarray:
        """Raw correction on the wrapped filter (no adaptation bookkeeping;
        use :meth:`step` for the adapting cycle)."""
        k_before = self._filter.k
        x = self._filter.update(z)
        # Reconstruct the innovation for adaptation bookkeeping.
        h = self._filter.h_at(max(k_before - 1, 0))
        del h  # innovation tracking happens through step(); update() is raw
        return x
