"""Information-form Kalman filter (inverse-covariance parameterisation).

The information filter carries ``Y = P^{-1}`` (the information matrix) and
``y = P^{-1} x`` (the information vector) instead of ``P`` and ``x``.  Its
correction step is a cheap *addition*::

    Y <- Y + H^T R^{-1} H
    y <- y + H^T R^{-1} z

which makes fusing measurements from many sensors trivial -- each sensor's
contribution simply adds.  The paper lists multi-sensor data fusion among
the Kalman filter's classic applications (Section 3, [33]); this module
provides that capability for DSMS deployments where several sensors
observe the same source object.

Mathematically the information filter is the same estimator as
:class:`~repro.filters.kalman.KalmanFilter` (the equivalence is pinned by
tests); it differs only in which form is cheap: many measurements per step
favour information form, long coasting stretches favour covariance form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError, DivergenceError
from repro.filters.kalman import check_covariance

__all__ = ["InformationFilter"]


class InformationFilter:
    """Kalman filter in information form, with multi-sensor fusion.

    Args:
        phi: Constant state transition matrix (``n x n``).  The prediction
            step inverts through ``phi``, so it must be invertible (all the
            library's kinematic and sinusoidal-at-fixed-k transitions are).
        q: Process noise covariance (``n x n``).
        x0: Initial state estimate.
        p0: Initial covariance (identity by default).
    """

    def __init__(
        self,
        phi: np.ndarray,
        q: np.ndarray,
        x0: np.ndarray,
        p0: np.ndarray | None = None,
    ) -> None:
        self._phi = np.asarray(phi, dtype=float)
        n = self._phi.shape[0]
        if self._phi.shape != (n, n):
            raise DimensionError(f"phi must be square, got {self._phi.shape}")
        self._q = check_covariance(q, "Q")
        x0 = np.asarray(x0, dtype=float).reshape(-1)
        if x0.shape != (n,):
            raise DimensionError(f"x0 must have shape ({n},), got {x0.shape}")
        p0 = check_covariance(np.eye(n) if p0 is None else p0, "P0")
        self._y_mat = np.linalg.inv(p0)
        self._y_vec = self._y_mat @ x0
        self._n = n
        self._k = 0

    @property
    def state_dim(self) -> int:
        """Number of state variables."""
        return self._n

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._k

    @property
    def information_matrix(self) -> np.ndarray:
        """The information matrix ``Y = P^{-1}`` (copy)."""
        return self._y_mat.copy()

    @property
    def x(self) -> np.ndarray:
        """Recovered state estimate ``x = Y^{-1} y``."""
        return np.linalg.solve(self._y_mat, self._y_vec)

    @property
    def p(self) -> np.ndarray:
        """Recovered covariance ``P = Y^{-1}``."""
        return np.linalg.inv(self._y_mat)

    def predict(self) -> np.ndarray:
        """Propagate the information state one step.

        Uses the covariance-form propagation through the recovered ``P``
        (numerically simplest and exact):
        ``P^- = phi P phi^T + Q``; re-derives ``Y``/``y`` from it.
        """
        x = self.x
        p = self.p
        x_prior = self._phi @ x
        p_prior = self._phi @ p @ self._phi.T + self._q
        self._y_mat = np.linalg.inv(p_prior)
        self._y_vec = self._y_mat @ x_prior
        self._k += 1
        if not np.all(np.isfinite(self._y_vec)):
            raise DivergenceError(f"state became non-finite at k={self._k}")
        return x_prior

    def update(self, h: np.ndarray, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Fold in one sensor's measurement: an information *addition*.

        Args:
            h: That sensor's measurement matrix (``m x n``).
            r: That sensor's noise covariance (``m x m``).
            z: The measurement vector (``m``,).

        Returns:
            The updated state estimate.
        """
        h = np.atleast_2d(np.asarray(h, dtype=float))
        r = np.atleast_2d(np.asarray(r, dtype=float))
        z = np.atleast_1d(np.asarray(z, dtype=float)).reshape(-1)
        if h.shape[1] != self._n:
            raise DimensionError(f"H must have {self._n} columns, got {h.shape}")
        if z.shape != (h.shape[0],):
            raise DimensionError(
                f"z must have shape ({h.shape[0]},), got {z.shape}"
            )
        r_inv = np.linalg.inv(r)
        self._y_mat = self._y_mat + h.T @ r_inv @ h
        self._y_vec = self._y_vec + h.T @ r_inv @ z
        return self.x

    def fuse(
        self, sensors: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        """Fuse simultaneous measurements from several sensors.

        Args:
            sensors: List of ``(H_i, R_i, z_i)`` triples, one per sensor
                observing this instant.  Order does not matter --
                information addition is commutative.

        Returns:
            The fused state estimate.
        """
        for h, r, z in sensors:
            self.update(h, r, z)
        return self.x

    def copy(self) -> "InformationFilter":
        """Deep, independent copy of the filter."""
        import copy as _copy

        return _copy.deepcopy(self)
