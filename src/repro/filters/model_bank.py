"""Online model selection over a bank of candidate filters (paper
Section 6, future-work item: "updating the state transition matrices
online as the streaming data trend changes").

Example 2 shows that a correct model (sinusoidal) beats a generic one
(linear), but the paper concedes that "such stream characteristics can only
be deduced after the stream has been analyzed".  A *model bank* closes that
gap: run several candidate filters in parallel on the same measurements and
weight them by how well each explains the data -- the innovation likelihood.
This is a static multiple-model (MM) estimator; the winning model's
prediction (or the probability-weighted mixture) answers queries.

Because the bank's arithmetic is deterministic given the same measurement
sequence, a bank can be mirrored across the DKF protocol exactly like a
single filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.filters.kalman import KalmanFilter
from repro.filters.models import StateSpaceModel

__all__ = ["ModelBank", "ModelPosterior"]


@dataclass(frozen=True)
class ModelPosterior:
    """Posterior probability of one candidate model at a point in time.

    Attributes:
        name: The candidate model's name.
        probability: Posterior weight in ``[0, 1]``; bank-wide sum is 1.
        log_likelihood: Cumulative (forgetting-discounted) log-likelihood.
    """

    name: str
    probability: float
    log_likelihood: float


class ModelBank:
    """Bank of Kalman filters competing to explain one measurement stream.

    Args:
        models: Candidate state-space models.  All must share the same
            measurement dimension.
        forgetting: Per-step discount on accumulated log-likelihoods in
            ``(0, 1]``.  Values below 1 let the bank re-decide when the
            stream's regime changes; 1 accumulates evidence forever.
        min_probability: Floor applied to posterior weights so a model can
            recover after a long losing streak.
    """

    def __init__(
        self,
        models: list[StateSpaceModel],
        forgetting: float = 0.98,
        min_probability: float = 1e-6,
    ) -> None:
        if not models:
            raise ConfigurationError("model bank needs at least one model")
        m_dims = {m.measurement_dim for m in models}
        if len(m_dims) != 1:
            raise DimensionError(
                f"all models must share a measurement dimension, got {m_dims}"
            )
        if not 0 < forgetting <= 1:
            raise ConfigurationError("forgetting must be in (0, 1]")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ConfigurationError("model names must be unique")
        self._models = list(models)
        self._forgetting = forgetting
        self._min_prob = min_probability
        self._measurement_dim = m_dims.pop()
        self._filters: list[KalmanFilter] | None = None
        self._log_lik = np.zeros(len(models))
        self._k = 0

    @property
    def measurement_dim(self) -> int:
        """Number of measured variables."""
        return self._measurement_dim

    @property
    def k(self) -> int:
        """Number of steps taken since priming."""
        return self._k

    @property
    def primed(self) -> bool:
        """Whether the bank has been seeded with a first measurement."""
        return self._filters is not None

    def _require_primed(self) -> list[KalmanFilter]:
        if self._filters is None:
            raise ConfigurationError("bank not primed; feed a first measurement")
        return self._filters

    def prime(self, z0: np.ndarray) -> None:
        """Seed every candidate filter from the first measurement."""
        z0 = np.atleast_1d(np.asarray(z0, dtype=float))
        self._filters = [m.build_filter(z0) for m in self._models]
        self._log_lik = np.zeros(len(self._models))
        self._k = 0

    def step(self, z: np.ndarray | None = None) -> None:
        """Advance every filter one cycle, scoring those that saw ``z``.

        The log-likelihood of each filter's innovation under its own
        innovation covariance ``S`` is added to its (discounted) score.
        Coasting steps (``z is None``) advance the filters without scoring.
        """
        filters = self._require_primed()
        if z is None:
            for f in filters:
                f.predict()
            self._k += 1
            return
        z = np.atleast_1d(np.asarray(z, dtype=float))
        self._log_lik *= self._forgetting
        for i, f in enumerate(filters):
            f.predict()
            innovation = z - f.predict_measurement()
            s = f.innovation_covariance()
            sign, logdet = np.linalg.slogdet(s)
            if sign <= 0:
                # Degenerate covariance: heavily penalise this candidate.
                self._log_lik[i] += -1e6
            else:
                maha = float(innovation @ np.linalg.solve(s, innovation))
                dim = innovation.shape[0]
                self._log_lik[i] += -0.5 * (
                    maha + logdet + dim * math.log(2 * math.pi)
                )
            f.update(z)
        self._k += 1

    def posteriors(self) -> list[ModelPosterior]:
        """Current posterior weights over the candidates (normalised)."""
        shifted = self._log_lik - self._log_lik.max()
        weights = np.exp(shifted)
        weights = np.maximum(weights, self._min_prob)
        weights /= weights.sum()
        return [
            ModelPosterior(
                name=m.name, probability=float(w), log_likelihood=float(ll)
            )
            for m, w, ll in zip(self._models, weights, self._log_lik)
        ]

    def best(self) -> StateSpaceModel:
        """The currently most probable candidate model."""
        idx = int(np.argmax(self._log_lik))
        return self._models[idx]

    def best_filter(self) -> KalmanFilter:
        """The filter instance of the most probable candidate."""
        filters = self._require_primed()
        return filters[int(np.argmax(self._log_lik))]

    def predict_measurement(self) -> np.ndarray:
        """Posterior-weighted mixture of the candidates' predictions."""
        filters = self._require_primed()
        weights = np.array([p.probability for p in self.posteriors()])
        preds = np.stack([f.predict_measurement() for f in filters])
        return weights @ preds

    def copy(self) -> "ModelBank":
        """Deep, independent copy of the whole bank."""
        import copy as _copy

        return _copy.deepcopy(self)

    def state_digest(self) -> tuple[int, bytes]:
        """Fingerprint of the whole bank (clock, every filter's state, and
        the scores) -- lets a mirrored bank pair verify lock-step exactly
        like a single filter."""
        parts = [self._log_lik.tobytes()]
        if self._filters is not None:
            parts.extend(f.state_digest()[1] for f in self._filters)
        return self._k, b"".join(parts)
