"""Rauch-Tung-Striebel (RTS) fixed-interval smoothing.

The online filter is causal: its estimate at instant ``k`` uses only data
up to ``k``.  Offline -- e.g. when reconstructing a stored stream synopsis
(paper Section 6, final future-work item) -- the whole update history is
available, and a backward smoothing pass can improve every estimate using
*future* updates too::

    C_k        = P_k  phi_k^T (P^-_{k+1})^{-1}
    x^s_k      = x_k + C_k (x^s_{k+1} - x^-_{k+1})
    P^s_k      = P_k + C_k (P^s_{k+1} - P^-_{k+1}) C_k^T

:class:`OfflineKalmanSmoother` runs the forward filter over a measurement
sequence (``None`` entries mark suppressed instants -- exactly the shape a
DKF update log has) and then the RTS backward pass, returning both the
filtered and the smoothed trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError
from repro.filters.kalman import MatrixLike, resolve_matrix
from repro.filters.models import StateSpaceModel

__all__ = ["SmoothedTrajectory", "OfflineKalmanSmoother", "rts_smooth"]


@dataclass(frozen=True)
class SmoothedTrajectory:
    """Forward-filtered and RTS-smoothed state/measurement trajectories.

    Attributes:
        filtered_states: Posterior states from the forward pass,
            shape ``(n_steps, state_dim)``.
        smoothed_states: RTS-smoothed states, same shape.
        filtered_measurements: ``H x`` of the filtered states.
        smoothed_measurements: ``H x`` of the smoothed states.
        smoothed_covariances: Smoothed covariances,
            shape ``(n_steps, state_dim, state_dim)``.
    """

    filtered_states: np.ndarray
    smoothed_states: np.ndarray
    filtered_measurements: np.ndarray
    smoothed_measurements: np.ndarray
    smoothed_covariances: np.ndarray


def rts_smooth(
    phi: MatrixLike,
    x_post: np.ndarray,
    p_post: np.ndarray,
    x_prior: np.ndarray,
    p_prior: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Backward RTS pass over recorded forward-filter trajectories.

    Args:
        phi: State transition matrix (or callable ``k -> matrix``).
        x_post: Posterior states, shape ``(n, dim)`` (index ``k`` holds the
            posterior *after* absorbing instant ``k``).
        p_post: Posterior covariances, shape ``(n, dim, dim)``.
        x_prior: Prior states, shape ``(n, dim)`` (index ``k`` holds the
            prediction *for* instant ``k``).
        p_prior: Prior covariances, shape ``(n, dim, dim)``.

    Returns:
        ``(x_smooth, p_smooth)`` of the same shapes as the posteriors.
    """
    n = x_post.shape[0]
    if not (p_post.shape[0] == x_prior.shape[0] == p_prior.shape[0] == n):
        raise DimensionError("forward-pass trajectories must share a length")
    x_smooth = x_post.copy()
    p_smooth = p_post.copy()
    for k in range(n - 2, -1, -1):
        # Transition from instant k to k+1: the forward filter applied
        # phi(k) there (its clock read k before the predict call).
        phi_k = resolve_matrix(phi, k)
        # Gain C_k = P_k phi^T (P^-_{k+1})^{-1}, via a solve for stability.
        gain = np.linalg.solve(p_prior[k + 1].T, (p_post[k] @ phi_k.T).T).T
        x_smooth[k] = x_post[k] + gain @ (x_smooth[k + 1] - x_prior[k + 1])
        p_smooth[k] = (
            p_post[k]
            + gain @ (p_smooth[k + 1] - p_prior[k + 1]) @ gain.T
        )
        p_smooth[k] = 0.5 * (p_smooth[k] + p_smooth[k].T)
    return x_smooth, p_smooth


class OfflineKalmanSmoother:
    """Forward filter + RTS backward pass over a gappy measurement log.

    Args:
        model: The state-space model to filter with.
        p0_scale: Initial covariance scale for the forward filter.
    """

    def __init__(self, model: StateSpaceModel, p0_scale: float = 1.0) -> None:
        self._model = model
        self._p0_scale = p0_scale

    def smooth(
        self, measurements: list[np.ndarray | None]
    ) -> SmoothedTrajectory:
        """Run both passes over a measurement log.

        Args:
            measurements: One entry per instant; ``None`` marks an instant
                with no measurement (the filter coasts there).  The first
                entry must be a measurement (it seeds the filter).

        Returns:
            The filtered and smoothed trajectories.
        """
        if not measurements:
            raise DimensionError("measurement log must not be empty")
        first = measurements[0]
        if first is None:
            raise DimensionError("the first log entry must be a measurement")

        kf = self._model.build_filter(
            np.atleast_1d(np.asarray(first, dtype=float)),
            p0_scale=self._p0_scale,
        )
        n = len(measurements)
        dim = self._model.state_dim
        x_post = np.empty((n, dim))
        p_post = np.empty((n, dim, dim))
        x_prior = np.empty((n, dim))
        p_prior = np.empty((n, dim, dim))

        # Instant 0: the seed is both prior and posterior.
        x_post[0] = kf.x
        p_post[0] = kf.p
        x_prior[0] = kf.x
        p_prior[0] = kf.p

        for k in range(1, n):
            kf.predict()
            x_prior[k] = kf.x_prior
            p_prior[k] = kf.p_prior
            z = measurements[k]
            if z is not None:
                kf.update(np.atleast_1d(np.asarray(z, dtype=float)))
            x_post[k] = kf.x
            p_post[k] = kf.p

        x_smooth, p_smooth = rts_smooth(
            self._model.phi, x_post, p_post, x_prior, p_prior
        )

        h0 = resolve_matrix(self._model.h, 0)
        if callable(self._model.h):
            filtered_meas = np.stack(
                [resolve_matrix(self._model.h, k) @ x_post[k] for k in range(n)]
            )
            smoothed_meas = np.stack(
                [resolve_matrix(self._model.h, k) @ x_smooth[k] for k in range(n)]
            )
        else:
            filtered_meas = x_post @ h0.T
            smoothed_meas = x_smooth @ h0.T

        return SmoothedTrajectory(
            filtered_states=x_post,
            smoothed_states=x_smooth,
            filtered_measurements=filtered_meas,
            smoothed_measurements=smoothed_meas,
            smoothed_covariances=p_smooth,
        )
