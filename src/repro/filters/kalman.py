"""Discrete Kalman filter (paper Section 3, Eq. 3-12), built from scratch.

The system model is::

    x_{k+1} = phi_k x_k + w_k          (state propagation, Eq. 3)
    z_k     = H_k x_k + v_k            (measurement, Eq. 4)

with ``w_k ~ N(0, Q_k)`` and ``v_k ~ N(0, R_k)`` mutually uncorrelated white
noise (Eq. 5-7).  Each cycle of the filter performs

* *prediction* -- propagate the posterior through ``phi`` to obtain the
  a-priori estimate ``x^-`` and covariance ``P^- = phi P phi^T + Q``;
* *correction* -- on receipt of a measurement ``z``, compute the Kalman gain
  ``K = P^- H^T (H P^- H^T + R)^{-1}`` (Eq. 11), fold the innovation
  ``z - H x^-`` into the estimate (Eq. 8), and update the covariance
  (Eq. 12, implemented in the numerically robust Joseph form).

The class is deliberately deterministic: given the same inputs it produces
bit-identical outputs, which is what lets the DKF protocol run an exact
mirror of the server filter at the remote source without communication.

Time-varying models are supported by passing callables ``k -> matrix`` for
``phi``/``H``/``Q``/``R`` (the sinusoidal power-load model of Section 4.2
has ``phi_k`` depend on the time index).
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationError,
    DimensionError,
    DivergenceError,
    NonFiniteMeasurementError,
    NotPositiveDefiniteError,
)

MatrixLike = np.ndarray | Callable[[int], np.ndarray]

__all__ = [
    "KalmanFilter",
    "KalmanStep",
    "resolve_matrix",
    "check_covariance",
    "phi_power",
]

#: Memoised transition-matrix powers keyed by ``(phi bytes, shape, k)``.
#: The server-side multi-step prediction (``predict_k``, the vector bank's
#: ``forecast_k``) asks for the same ``F^k`` for every stream sharing a
#: model, so recomputing the power per call is pure waste on the hot path.
_PHI_POWER_CACHE: dict[tuple[bytes, tuple[int, ...], int], np.ndarray] = {}
#: Cache ceiling: distinct (model, horizon) pairs are few in practice, but
#: a runaway sweep must not grow the cache without bound.
_PHI_POWER_CACHE_MAX = 512


def phi_power(phi: np.ndarray, k: int) -> np.ndarray:
    """Memoised ``phi ** k`` (matrix power) for a constant transition matrix.

    The cache is keyed by the matrix bytes and the exponent, so every
    filter (and every stream in a vectorised bank) sharing a model reuses
    one computation.  Powers are built incrementally from the largest
    cached power of the same matrix, so a sweep over horizons 1..K costs
    K multiplications total instead of O(K^2).
    """
    if k < 0:
        raise ConfigurationError("matrix power exponent must be non-negative")
    phi = np.asarray(phi, dtype=float)
    if k == 0:
        return np.eye(phi.shape[0])
    if k == 1:
        return phi
    key = (phi.tobytes(), phi.shape, k)
    cached = _PHI_POWER_CACHE.get(key)
    if cached is not None:
        return cached
    # Build up from the largest smaller cached power (usually k-1).
    best_k, best = 1, phi
    for exponent in range(k - 1, 1, -1):
        hit = _PHI_POWER_CACHE.get((key[0], key[1], exponent))
        if hit is not None:
            best_k, best = exponent, hit
            break
    result = best
    for _ in range(k - best_k):
        result = result @ phi
    if len(_PHI_POWER_CACHE) >= _PHI_POWER_CACHE_MAX:
        _PHI_POWER_CACHE.clear()
    _PHI_POWER_CACHE[key] = result
    return result


def resolve_matrix(m: MatrixLike, k: int) -> np.ndarray:
    """Return the matrix value of ``m`` at discrete time index ``k``.

    ``m`` may be a constant ndarray or a callable ``k -> ndarray`` for
    time-varying models.  The result is always a float64 ndarray.
    """
    value = m(k) if callable(m) else m
    return np.asarray(value, dtype=float)


def check_covariance(p: np.ndarray, name: str = "covariance") -> np.ndarray:
    """Validate that ``p`` is a symmetric positive semi-definite matrix.

    Returns the symmetrised matrix.  Raises
    :class:`~repro.errors.NotPositiveDefiniteError` when an eigenvalue is
    meaningfully negative (tolerance scaled to the matrix magnitude).
    """
    p = np.asarray(p, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise DimensionError(f"{name} must be square, got shape {p.shape}")
    sym = 0.5 * (p + p.T)
    eigvals = np.linalg.eigvalsh(sym)
    tol = 1e-9 * max(1.0, float(np.abs(sym).max()))
    if eigvals.min() < -tol:
        raise NotPositiveDefiniteError(
            f"{name} has negative eigenvalue {eigvals.min():.3e}"
        )
    return sym


@dataclass(frozen=True)
class KalmanStep:
    """Immutable record of one filter cycle, for logging and diagnostics.

    Attributes:
        k: Discrete time index of the cycle.
        x_prior: A-priori state estimate (after prediction).
        x_post: A-posteriori estimate (equals ``x_prior`` when no
            measurement was applied).
        z_pred: Predicted measurement ``H x^-``.
        innovation: ``z - H x^-`` when a measurement was applied, else None.
        updated: Whether a measurement correction happened this cycle.
        gain: Kalman gain used in the correction, else None.
    """

    k: int
    x_prior: np.ndarray
    x_post: np.ndarray
    z_pred: np.ndarray
    innovation: np.ndarray | None = None
    updated: bool = False
    gain: np.ndarray | None = field(default=None, repr=False)


class KalmanFilter:
    """Standard discrete Kalman filter over a linear-Gaussian system.

    Args:
        phi: State transition matrix (``n x n``), or callable ``k -> matrix``.
        h: Measurement matrix (``m x n``), or callable ``k -> matrix``.
        q: Process noise covariance (``n x n``), or callable.
        r: Measurement noise covariance (``m x m``), or callable.
        x0: Initial state estimate (``n``,).
        p0: Initial estimate covariance (``n x n``).  Defaults to identity.

    The filter's clock starts at ``k = 0`` (the index of the *next* cycle).
    Call :meth:`predict` once per sampling instant; call :meth:`update`
    afterwards if a measurement is available for that instant.  The
    convenience method :meth:`step` does both.
    """

    # Optional telemetry span timers (see :meth:`instrument`).  A class
    # attribute so uninstrumented filters pay one attribute load and one
    # ``is None`` branch per predict/update -- nothing else.
    _timers = None

    def __init__(
        self,
        phi: MatrixLike,
        h: MatrixLike,
        q: MatrixLike,
        r: MatrixLike,
        x0: np.ndarray,
        p0: np.ndarray | None = None,
    ) -> None:
        self._phi = phi
        self._h = h
        self._q = q
        self._r = r

        x0 = np.asarray(x0, dtype=float).reshape(-1)
        phi0 = resolve_matrix(phi, 0)
        h0 = resolve_matrix(h, 0)
        n = phi0.shape[0]
        if phi0.shape != (n, n):
            raise DimensionError(f"phi must be square, got {phi0.shape}")
        if x0.shape != (n,):
            raise DimensionError(f"x0 must have shape ({n},), got {x0.shape}")
        if h0.shape[1] != n:
            raise DimensionError(
                f"H must have {n} columns to match the state, got {h0.shape}"
            )
        self._n = n
        self._m = h0.shape[0]

        q0 = resolve_matrix(q, 0)
        if q0.shape != (n, n):
            raise DimensionError(f"Q must have shape ({n},{n}), got {q0.shape}")
        r0 = resolve_matrix(r, 0)
        if r0.shape != (self._m, self._m):
            raise DimensionError(
                f"R must have shape ({self._m},{self._m}), got {r0.shape}"
            )

        if p0 is None:
            p0 = np.eye(n)
        self._x = x0.copy()
        self._p = check_covariance(p0, "P0")
        self._k = 0
        self._has_prior = False
        self._x_prior = self._x.copy()
        self._p_prior = self._p.copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state_dim(self) -> int:
        """Number of state variables ``n``."""
        return self._n

    @property
    def measurement_dim(self) -> int:
        """Number of measured variables ``m``."""
        return self._m

    @property
    def k(self) -> int:
        """Discrete time index of the next cycle."""
        return self._k

    @property
    def x(self) -> np.ndarray:
        """Current a-posteriori state estimate (copy)."""
        return self._x.copy()

    @property
    def p(self) -> np.ndarray:
        """Current a-posteriori error covariance (copy)."""
        return self._p.copy()

    @property
    def x_prior(self) -> np.ndarray:
        """A-priori state estimate from the most recent prediction (copy)."""
        return self._x_prior.copy()

    @property
    def p_prior(self) -> np.ndarray:
        """A-priori covariance from the most recent prediction (copy)."""
        return self._p_prior.copy()

    def instrument(self, timers) -> None:
        """Attach span timers to the predict/correct hot paths.

        ``timers`` is a :class:`~repro.obs.timing.SpanTimers` (or None to
        detach).  The DKF endpoints call this when telemetry is enabled;
        by default the filter carries no timers and the hot paths run at
        seed speed.
        """
        self._timers = timers

    def phi_at(self, k: int) -> np.ndarray:
        """State transition matrix at time index ``k``."""
        return resolve_matrix(self._phi, k)

    def h_at(self, k: int) -> np.ndarray:
        """Measurement matrix at time index ``k``."""
        return resolve_matrix(self._h, k)

    def q_at(self, k: int) -> np.ndarray:
        """Process noise covariance at time index ``k``."""
        return resolve_matrix(self._q, k)

    def r_at(self, k: int) -> np.ndarray:
        """Measurement noise covariance at time index ``k``."""
        return resolve_matrix(self._r, k)

    # ------------------------------------------------------------------
    # Core cycle
    # ------------------------------------------------------------------

    def predict(self) -> np.ndarray:
        """Propagate the state one step: the *prediction* half of the cycle.

        Computes ``x^- = phi_k x`` and ``P^- = phi_k P phi_k^T + Q_k`` for
        the current time index, advances the clock, and leaves the filter in
        the "prior" state.  If no measurement follows, the prior simply
        becomes the posterior (the filter coasts).

        Returns:
            The a-priori state estimate ``x^-`` (copy).
        """
        timers = self._timers
        if timers is not None:
            timers.start("kalman.predict")
        try:
            phi = resolve_matrix(self._phi, self._k)
            q = resolve_matrix(self._q, self._k)
            self._x_prior = phi @ self._x
            self._p_prior = phi @ self._p @ phi.T + q
            # Coast by default: posterior mirrors the prior until update()
            # runs.
            self._x = self._x_prior.copy()
            self._p = self._p_prior.copy()
            self._k += 1
            self._has_prior = True
            if not np.all(np.isfinite(self._x)):
                raise DivergenceError(f"state became non-finite at k={self._k}")
            return self._x_prior.copy()
        finally:
            if timers is not None:
                timers.stop("kalman.predict")

    def predict_measurement(self) -> np.ndarray:
        """Predicted measurement ``H x`` for the current estimate.

        After :meth:`predict` this is the one-step-ahead measurement
        prediction the DKF protocol compares against the sensor reading.
        """
        h = resolve_matrix(self._h, max(self._k - 1, 0))
        return h @ self._x

    def update(self, z: np.ndarray) -> np.ndarray:
        """Fold measurement ``z`` into the estimate: the *correction* half.

        Implements Eq. 8, 11 and 12.  The covariance update uses the Joseph
        form ``P = (I - K H) P^- (I - K H)^T + K R K^T``, which preserves
        symmetry and positive semi-definiteness under roundoff.

        Args:
            z: Measurement vector of shape ``(m,)`` (scalars accepted).

        Returns:
            The a-posteriori state estimate (copy).
        """
        timers = self._timers
        if timers is not None:
            timers.start("kalman.update")
        try:
            z = np.atleast_1d(np.asarray(z, dtype=float)).reshape(-1)
            if z.shape != (self._m,):
                raise DimensionError(
                    f"z must have shape ({self._m},), got {z.shape}"
                )
            if not np.all(np.isfinite(z)):
                # Reject before touching any state: the caller can discard
                # the reading and the filter remains usable.
                raise NonFiniteMeasurementError(
                    "measurement contains NaN or infinity"
                )
            k_idx = max(self._k - 1, 0)
            h = resolve_matrix(self._h, k_idx)
            r = resolve_matrix(self._r, k_idx)

            innovation = z - h @ self._x
            s = h @ self._p @ h.T + r
            # K = P H^T S^{-1}, solved without forming an explicit inverse.
            gain = np.linalg.solve(s.T, (self._p @ h.T).T).T

            self._x = self._x + gain @ innovation
            i_kh = np.eye(self._n) - gain @ h
            self._p = i_kh @ self._p @ i_kh.T + gain @ r @ gain.T
            self._p = 0.5 * (self._p + self._p.T)
            if not np.all(np.isfinite(self._x)):
                raise DivergenceError(f"state became non-finite at k={self._k}")
            return self._x.copy()
        finally:
            if timers is not None:
                timers.stop("kalman.update")

    def step(self, z: np.ndarray | None = None) -> KalmanStep:
        """Run one full predict(-correct) cycle and return a step record.

        Args:
            z: Measurement for this instant, or None to coast on prediction.
        """
        k = self._k
        x_prior = self.predict()
        z_pred = self.predict_measurement()
        if z is None:
            return KalmanStep(k=k, x_prior=x_prior, x_post=self.x, z_pred=z_pred)
        innovation = np.atleast_1d(np.asarray(z, dtype=float)) - z_pred
        h = resolve_matrix(self._h, k)
        p_prior = self._p
        r = resolve_matrix(self._r, k)
        s = h @ p_prior @ h.T + r
        gain = np.linalg.solve(s.T, (p_prior @ h.T).T).T
        self.update(z)
        return KalmanStep(
            k=k,
            x_prior=x_prior,
            x_post=self.x,
            z_pred=z_pred,
            innovation=innovation,
            updated=True,
            gain=gain,
        )

    # ------------------------------------------------------------------
    # Multi-step prediction & utilities
    # ------------------------------------------------------------------

    def forecast(self, steps: int) -> np.ndarray:
        """Extrapolate the measurement ``steps`` cycles ahead without
        mutating the filter.

        Returns an array of shape ``(steps, m)`` with the predicted
        measurements at ``k, k+1, ..., k+steps-1``.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        x = self._x.copy()
        out = np.empty((steps, self._m))
        for i in range(steps):
            k_idx = self._k + i
            x = resolve_matrix(self._phi, k_idx) @ x
            out[i] = resolve_matrix(self._h, k_idx) @ x
        return out

    def predict_k(self, steps: int) -> np.ndarray:
        """Measurement prediction ``steps`` cycles ahead, without mutation.

        Unlike :meth:`forecast` (which returns the whole horizon and always
        loops), this returns only the endpoint ``H phi^steps x`` and, for
        constant transition matrices, jumps there in a single multiply
        using the memoised :func:`phi_power` cache -- the shape the server
        hot path wants when checking whether a source's δ bound will hold
        ``steps`` ticks out.

        Time-varying models cannot reuse powers (``phi_k`` differs per
        step) and fall back to the per-step loop.

        Returns:
            Predicted measurement of shape ``(m,)`` at ``k + steps - 1``
            (``steps=0`` returns the current predicted measurement).
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if steps == 0:
            return self.predict_measurement()
        if callable(self._phi):
            x = self._x.copy()
            for i in range(steps):
                x = resolve_matrix(self._phi, self._k + i) @ x
        else:
            x = phi_power(np.asarray(self._phi, dtype=float), steps) @ self._x
        h = resolve_matrix(self._h, self._k + steps - 1)
        return h @ x

    def innovation_covariance(self) -> np.ndarray:
        """Innovation covariance ``S = H P H^T + R`` at the current step."""
        k_idx = max(self._k - 1, 0)
        h = resolve_matrix(self._h, k_idx)
        r = resolve_matrix(self._r, k_idx)
        return h @ self._p @ h.T + r

    def set_state(self, x: np.ndarray, p: np.ndarray | None = None) -> None:
        """Overwrite the posterior estimate (used when re-seeding a filter).

        Args:
            x: New state estimate of shape ``(n,)``.
            p: New covariance; kept unchanged when None.
        """
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape != (self._n,):
            raise DimensionError(f"x must have shape ({self._n},), got {x.shape}")
        self._x = x.copy()
        if p is not None:
            self._p = check_covariance(p, "P")

    def set_clock(self, k: int) -> None:
        """Move the filter's discrete clock (checkpoint restore only).

        Time-varying models resolve ``phi``/``H``/``Q``/``R`` from the
        clock, so a filter rebuilt from a checkpoint must resume at the
        checkpointed index for its arithmetic to stay deterministic.
        """
        if k < 0:
            raise ConfigurationError("filter clock must be non-negative")
        self._k = int(k)

    def copy(self) -> "KalmanFilter":
        """Deep copy of the filter, including its clock and covariances.

        The DKF protocol creates the mirror filter this way so that both
        sides start from bit-identical state.
        """
        return copy.deepcopy(self)

    def state_digest(self) -> tuple[int, bytes]:
        """Cheap fingerprint ``(k, bytes(x))`` used for desync detection."""
        return self._k, self._x.tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KalmanFilter(n={self._n}, m={self._m}, k={self._k}, "
            f"x={np.array2string(self._x, precision=4)})"
        )
