"""Information-form consensus fusion over a peer graph.

The fusion step follows the distributed-KF literature's information
(inverse-covariance) parameterisation: each peer contributes
``Y = P^-1`` and ``y = P^-1 x``, and a diffusion round replaces every
participant's pair with the Metropolis-weighted neighbourhood average.
Averaging in information space keeps the fused covariance positive
definite whenever the inputs are, and weights each contribution by its
own certainty -- a coasting replica with an inflated ``P`` moves the
average far less than a freshly corrected home filter.

The *consensus error bound* surfaced on answers is deliberately honest
rather than optimistic: it is the measured spread of the participants'
predicted measurements (how much the fused copies actually disagreed at
the last round) plus a per-tick staleness drift term for the ticks since
that round (how far they may have drifted apart since).  Both halves are
computed, never assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.kalman import KalmanFilter, resolve_matrix
from repro.filters.models import StateSpaceModel

__all__ = [
    "ConsensusRoundInfo",
    "information_form",
    "fuse_information",
    "zhat_spread",
    "staleness_drift",
]


@dataclass(frozen=True)
class ConsensusRoundInfo:
    """What a peer learned about one stream from its last fusion round.

    Attributes:
        round_index: The consensus round the figures describe.
        at_tick: Tick the fusion was applied at.
        participants: Number of estimates fused (self included).
        residual: Max per-component spread of the participants'
            predicted measurements at fusion time.
        best_last_seq: Highest stream sequence any participant had
            applied (freshness ceiling for failover ordering).
    """

    round_index: int
    at_tick: int
    participants: int
    residual: float
    best_last_seq: int

    def bound(self, now: int, drift_per_tick: float) -> float:
        """The consensus error bound as of ``now``.

        The measured residual plus ``drift_per_tick`` for every tick
        since the round -- peers that agreed then may have drifted since.
        """
        return self.residual + drift_per_tick * max(0, now - self.at_tick)


def information_form(flt: KalmanFilter) -> tuple[np.ndarray, np.ndarray]:
    """A filter's estimate as an information pair ``(P^-1, P^-1 x)``.

    Raises:
        ConfigurationError: When the covariance is singular (an
            un-invertible ``P`` cannot be averaged in information form).
    """
    try:
        y = np.linalg.inv(flt.p)
    except np.linalg.LinAlgError:
        raise ConfigurationError(
            "singular covariance cannot enter information-form consensus"
        ) from None
    return y, y @ flt.x


def fuse_information(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    weights: list[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted average of information pairs, returned as ``(x, P)``.

    Args:
        pairs: ``(Y_i, y_i)`` contributions.
        weights: Convex weights (defaults to uniform).  They are
            normalised defensively so a dropped participant cannot
            deflate the fused information.

    Raises:
        ConfigurationError: On empty input, mismatched lengths, or a
            singular fused information matrix.
    """
    if not pairs:
        raise ConfigurationError("cannot fuse an empty set of estimates")
    if weights is None:
        weights = [1.0 / len(pairs)] * len(pairs)
    if len(weights) != len(pairs):
        raise ConfigurationError(
            f"{len(pairs)} estimates but {len(weights)} weights"
        )
    total = float(sum(weights))
    if total <= 0:
        raise ConfigurationError("consensus weights must sum to a positive")
    y_bar = sum(w * y for w, (y, _) in zip(weights, pairs)) / total
    yv_bar = sum(w * yv for w, (_, yv) in zip(weights, pairs)) / total
    try:
        p = np.linalg.inv(y_bar)
    except np.linalg.LinAlgError:
        raise ConfigurationError(
            "fused information matrix is singular"
        ) from None
    return p @ yv_bar, p


def zhat_spread(zhats: list[np.ndarray]) -> float:
    """Max per-component spread across predicted measurements.

    The measured disagreement of a consensus round: 0.0 for a single
    participant (nothing to disagree with), else the largest
    ``max - min`` over any measured component.
    """
    if len(zhats) < 2:
        return 0.0
    stacked = np.stack(zhats)
    return float(np.max(stacked.max(axis=0) - stacked.min(axis=0)))


def staleness_drift(model: StateSpaceModel, k: int = 0) -> float:
    """Per-tick measurement drift scale of a coasting filter.

    One prediction step adds ``Q`` to the state covariance, which shows
    up in measurement space as ``H Q H^T``; the square root of its
    largest diagonal entry is the one-step standard-deviation growth of
    the predicted measurement.  Used to widen the consensus bound for
    every tick since the last fusion round.
    """
    h = np.atleast_2d(resolve_matrix(model.h, k))
    q = np.atleast_2d(resolve_matrix(model.q, k))
    hqh = h @ q @ h.T
    return float(np.sqrt(max(float(np.max(np.diag(hqh))), 0.0)))
