"""Peer-to-peer wire protocol for the federation layer.

Peer frames travel over the same :class:`~repro.dsms.network.NetworkFabric`
as source traffic; the fabric keys links by ``message.source_id``, so
every peer frame carries its *directed link id* (``"p0>p1"``) in that
slot and exposes the stream or peer it concerns through its own fields.
Four frame types exist:

* :class:`ReplicaFrame` -- the home peer forwarding one source message
  (update or resync) to a replica peer, payload nested verbatim.
* :class:`ConsensusShare` -- one peer's information-form estimate
  ``(Y, y)`` of one stream for a diffusion consensus round, plus its
  predicted measurement (the disagreement material for the error bound).
* :class:`PeerHeartbeat` -- peer liveness beacon with a restart epoch.
* :class:`RehomeClaim` -- the failover announcement: "stream s is now
  homed on me, at epoch e, having seen sequence numbers through q".

The codec mirrors the source protocol exactly: fixed-width fields in
network byte order, a 1-byte tag, CRC-32 ids for strings resolved
against the receiver's registration tables, and a CRC-32 trailer over
the whole frame -- a corrupt peer frame is rejected, never half-decoded.
Encoded length always equals ``size_bytes`` (a test pins this).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.dkf.protocol import (
    CRC_BYTES,
    FLOAT_BYTES,
    INT_BYTES,
    ResyncMessage,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.errors import ConfigurationError, CorruptMessageError
from repro.obs.events import trace_id

__all__ = [
    "ReplicaFrame",
    "ConsensusShare",
    "PeerHeartbeat",
    "RehomeClaim",
    "PeerFrame",
    "encode_peer_frame",
    "decode_peer_frame",
    "PEER_HEADER_BYTES",
]

#: Fixed per-frame header: type tag + link id hash + seq + k.
PEER_HEADER_BYTES = 1 + 3 * INT_BYTES

_TAG_REPLICA = 0x10
_TAG_CONSENSUS = 0x11
_TAG_PEER_HEARTBEAT = 0x12
_TAG_REHOME = 0x13


def _hash32(name: str) -> int:
    """Stable 32-bit id hash (same algorithm as the source codec)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def _seal(frame: bytes) -> bytes:
    """Append the CRC-32 trailer."""
    return frame + struct.pack("!I", zlib.crc32(frame) & 0xFFFFFFFF)


def _resolve(hash_value: int, candidates: list[str], what: str) -> str:
    matches = [c for c in candidates if _hash32(c) == hash_value]
    if len(matches) != 1:
        raise ConfigurationError(
            f"{what} hash {hash_value:#x} resolves to {len(matches)} ids"
        )
    return matches[0]


@dataclass(frozen=True)
class ReplicaFrame:
    """One source message forwarded home -> replica (nested verbatim).

    Attributes:
        link_id: Directed peer link the frame travels on.
        seq: Per-link frame counter (diagnostics; replica ordering comes
            from the nested payload's own sequence number).
        k: Sampling instant of the nested payload.
        payload: The forwarded update or resync, exactly as the home
            received it.
    """

    link_id: str
    seq: int
    k: int
    payload: UpdateMessage | ResyncMessage

    @property
    def source_id(self) -> str:
        """The fabric link key (peer frames ride source-keyed links)."""
        return self.link_id

    @property
    def stream_id(self) -> str:
        """The stream the nested payload belongs to."""
        return self.payload.source_id

    @property
    def trace_id(self) -> str:
        """The nested update's trace ID, derived -- never re-encoded.

        The payload travels verbatim, so the forward hop correlates with
        the source's original send without widening the wire format.
        """
        return trace_id(self.payload.source_id, self.payload.seq)

    @property
    def size_bytes(self) -> int:
        """Encoded size: header + length prefix + nested frame + CRC."""
        return (
            PEER_HEADER_BYTES + INT_BYTES + self.payload.size_bytes + CRC_BYTES
        )


@dataclass(frozen=True)
class ConsensusShare:
    """One peer's information-form estimate of one stream (peer -> peer).

    Attributes:
        link_id: Directed peer link the share travels on.
        seq: Per-link frame counter.
        k: Tick the share was cut at.
        stream_id: The stream the estimate concerns.
        round_index: Consensus round this share belongs to; receivers
            fuse only shares of the round they are collecting.
        y: Information matrix ``P^-1`` (symmetric, ``n x n``).
        yv: Information vector ``P^-1 x`` (``n``,).
        zhat: The sharer's predicted measurement (``m``,) -- the
            disagreement material behind the consensus error bound.
        last_seq: Highest stream sequence the sharer has applied
            (freshness; drives failover promotion ordering).
        staleness: Sharer-side ticks since it last heard the stream.
    """

    link_id: str
    seq: int
    k: int
    stream_id: str
    round_index: int
    y: np.ndarray
    yv: np.ndarray
    zhat: np.ndarray
    last_seq: int
    staleness: int

    @property
    def source_id(self) -> str:
        """The fabric link key."""
        return self.link_id

    @property
    def trace_id(self) -> str:
        """Synthetic trace correlating every share of one fusion round."""
        return f"consensus/{self.round_index}/{self.stream_id}"

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        n = self.yv.shape[0]
        m = self.zhat.shape[0]
        triangle = n * (n + 1) // 2
        return (
            PEER_HEADER_BYTES
            + 4 * INT_BYTES  # stream hash, round, last_seq, staleness
            + 2  # state and measurement dims
            + (triangle + n + m) * FLOAT_BYTES
            + CRC_BYTES
        )


@dataclass(frozen=True)
class PeerHeartbeat:
    """Peer liveness beacon (peer -> peer).

    Attributes:
        link_id: Directed peer link.
        seq: Per-link frame counter.
        k: Tick the beacon was emitted at.
        peer_id: The emitting peer.
        epoch: The emitter's restart epoch -- a jump tells receivers the
            peer died and rejoined with amnesia since they last looked.
    """

    link_id: str
    seq: int
    k: int
    peer_id: str
    epoch: int

    @property
    def source_id(self) -> str:
        """The fabric link key."""
        return self.link_id

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        return PEER_HEADER_BYTES + 2 * INT_BYTES + CRC_BYTES


@dataclass(frozen=True)
class RehomeClaim:
    """Failover announcement: a stream has a new home (peer -> peer).

    Attributes:
        link_id: Directed peer link.
        seq: Per-link frame counter.
        k: Tick the claim was cut at.
        stream_id: The re-homed stream.
        new_home: The claiming peer.
        epoch: Home epoch of the claim; receivers adopt the claim only
            when it exceeds their current epoch for the stream, so
            duplicate or stale claims reconcile deterministically.
        last_seq: Highest stream sequence the claimant had applied when
            it promoted itself (diagnostics / tie audit).
    """

    link_id: str
    seq: int
    k: int
    stream_id: str
    new_home: str
    epoch: int
    last_seq: int

    @property
    def trace_id(self) -> str:
        """Synthetic trace correlating one stream's failover re-home."""
        return f"rehome/{self.stream_id}/{self.epoch}"

    @property
    def source_id(self) -> str:
        """The fabric link key."""
        return self.link_id

    @property
    def size_bytes(self) -> int:
        """Encoded size under the fixed-width wire format."""
        return PEER_HEADER_BYTES + 4 * INT_BYTES + CRC_BYTES


PeerFrame = ReplicaFrame | ConsensusShare | PeerHeartbeat | RehomeClaim


def encode_peer_frame(frame: PeerFrame) -> bytes:
    """Serialise a peer frame; encoded length equals ``size_bytes``."""
    header = struct.pack(
        "!BIII",
        _tag_of(frame),
        _hash32(frame.link_id),
        frame.seq,
        frame.k,
    )
    if isinstance(frame, ReplicaFrame):
        inner = encode_message(frame.payload)
        return _seal(header + struct.pack("!I", len(inner)) + inner)
    if isinstance(frame, ConsensusShare):
        n = frame.yv.shape[0]
        m = frame.zhat.shape[0]
        triangle = frame.y[np.triu_indices(n)]
        body = struct.pack(
            f"!IIIIBB{triangle.shape[0]}d{n}d{m}d",
            _hash32(frame.stream_id),
            frame.round_index,
            frame.last_seq,
            frame.staleness,
            n,
            m,
            *triangle,
            *frame.yv,
            *frame.zhat,
        )
        return _seal(header + body)
    if isinstance(frame, PeerHeartbeat):
        return _seal(
            header + struct.pack("!II", _hash32(frame.peer_id), frame.epoch)
        )
    return _seal(
        header
        + struct.pack(
            "!IIII",
            _hash32(frame.stream_id),
            _hash32(frame.new_home),
            frame.epoch,
            frame.last_seq,
        )
    )


def _tag_of(frame: PeerFrame) -> int:
    if isinstance(frame, ReplicaFrame):
        return _TAG_REPLICA
    if isinstance(frame, ConsensusShare):
        return _TAG_CONSENSUS
    if isinstance(frame, PeerHeartbeat):
        return _TAG_PEER_HEARTBEAT
    if isinstance(frame, RehomeClaim):
        return _TAG_REHOME
    raise ConfigurationError(f"not a peer frame: {type(frame).__name__}")


def decode_peer_frame(
    data: bytes,
    link_ids: list[str],
    stream_ids: list[str],
    peer_ids: list[str],
    state_dim: int | None = None,
) -> PeerFrame:
    """Deserialise a peer frame, verifying its CRC-32 trailer first.

    Args:
        data: The encoded bytes.
        link_ids: Known directed peer link ids (header resolution).
        stream_ids: Registered stream ids (replica/consensus/rehome
            resolution; also resolves the nested payload's source).
        peer_ids: Known peer ids (heartbeat/rehome resolution).
        state_dim: Required to decode a nested resync payload.

    Raises:
        CorruptMessageError: When the CRC trailer does not match.
        ConfigurationError: On unknown tags or unresolvable id hashes.
    """
    if len(data) < PEER_HEADER_BYTES + CRC_BYTES:
        raise ConfigurationError("peer frame shorter than the fixed header")
    frame, trailer = data[:-CRC_BYTES], data[-CRC_BYTES:]
    (crc,) = struct.unpack("!I", trailer)
    if crc != (zlib.crc32(frame) & 0xFFFFFFFF):
        raise CorruptMessageError(
            f"CRC mismatch: trailer {crc:#010x}, "
            f"computed {zlib.crc32(frame) & 0xFFFFFFFF:#010x}"
        )
    tag, link_hash, seq, k = struct.unpack(
        "!BIII", frame[:PEER_HEADER_BYTES]
    )
    link_id = _resolve(link_hash, link_ids, "link")
    body = frame[PEER_HEADER_BYTES:]

    if tag == _TAG_REPLICA:
        (inner_len,) = struct.unpack("!I", body[:INT_BYTES])
        inner = body[INT_BYTES : INT_BYTES + inner_len]
        if len(inner) != inner_len:
            raise ConfigurationError("replica frame truncated")
        payload = decode_message(inner, stream_ids, state_dim=state_dim)
        if not isinstance(payload, (UpdateMessage, ResyncMessage)):
            raise ConfigurationError(
                "replica frames carry updates or resyncs only"
            )
        return ReplicaFrame(link_id=link_id, seq=seq, k=k, payload=payload)
    if tag == _TAG_CONSENSUS:
        head = struct.unpack("!IIIIBB", body[: 4 * INT_BYTES + 2])
        stream_hash, round_index, last_seq, staleness, n, m = head
        floats = body[4 * INT_BYTES + 2 :]
        triangle = n * (n + 1) // 2
        parts = struct.unpack(f"!{triangle + n + m}d", floats)
        y = np.zeros((n, n))
        y[np.triu_indices(n)] = parts[:triangle]
        y = y + np.triu(y, 1).T
        return ConsensusShare(
            link_id=link_id,
            seq=seq,
            k=k,
            stream_id=_resolve(stream_hash, stream_ids, "stream"),
            round_index=round_index,
            y=y,
            yv=np.array(parts[triangle : triangle + n]),
            zhat=np.array(parts[triangle + n :]),
            last_seq=last_seq,
            staleness=staleness,
        )
    if tag == _TAG_PEER_HEARTBEAT:
        peer_hash, epoch = struct.unpack("!II", body)
        return PeerHeartbeat(
            link_id=link_id,
            seq=seq,
            k=k,
            peer_id=_resolve(peer_hash, peer_ids, "peer"),
            epoch=epoch,
        )
    if tag == _TAG_REHOME:
        stream_hash, home_hash, epoch, last_seq = struct.unpack("!IIII", body)
        return RehomeClaim(
            link_id=link_id,
            seq=seq,
            k=k,
            stream_id=_resolve(stream_hash, stream_ids, "stream"),
            new_home=_resolve(home_hash, peer_ids, "peer"),
            epoch=epoch,
            last_seq=last_seq,
        )
    raise ConfigurationError(f"unknown peer frame tag {tag:#x}")
