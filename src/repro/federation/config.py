"""Configuration for a federated cluster of peer servers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsms.network import LinkConfig
from repro.errors import ConfigurationError
from repro.resilience.config import FailoverPolicy

__all__ = ["FederationConfig", "PEER_TOPOLOGIES"]

#: Peer-graph topologies understood by :class:`FederationConfig`.
PEER_TOPOLOGIES = ("full", "ring")


@dataclass(frozen=True)
class FederationConfig:
    """Shape and timing of a federated cluster.

    Attributes:
        peers: Number of peer servers (ids ``p0..p{N-1}``).
        replication: Replica count ``k`` -- each source's update stream
            is forwarded from its home peer to its ``k`` rendezvous
            successors.  Capped by ``peers - 1``.
        topology: Peer graph shape (:data:`PEER_TOPOLOGIES`): ``full``
            connects every pair, ``ring`` each peer to its two ring
            neighbours.  Replication and consensus both travel along
            graph edges only.
        consensus_every: Ticks between consensus rounds (0 disables
            fusion; answers then carry only the replication spread).
        heartbeat_every: Ticks between peer-to-peer heartbeats.
        failover: When heartbeat silence re-homes a dead peer's
            sources (see :class:`~repro.resilience.config.FailoverPolicy`).
        peer_link: Link parameters for every directed peer link
            (latency, loss).  Defaults to a 1-tick LAN hop -- peer links
            are *never* synchronous, so peer failures and partitions
            have a pipe to strand frames in.
    """

    peers: int = 3
    replication: int = 1
    topology: str = "full"
    consensus_every: int = 8
    heartbeat_every: int = 4
    failover: FailoverPolicy = field(default_factory=FailoverPolicy)
    peer_link: LinkConfig = field(
        default_factory=lambda: LinkConfig(latency_ticks=1)
    )

    def __post_init__(self) -> None:
        if self.peers < 1:
            raise ConfigurationError("a federation needs at least 1 peer")
        if not 0 <= self.replication <= self.peers - 1:
            raise ConfigurationError(
                f"replication must be in [0, peers-1], got {self.replication}"
            )
        if self.topology not in PEER_TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {PEER_TOPOLOGIES}"
            )
        if self.consensus_every < 0:
            raise ConfigurationError("consensus_every must be non-negative")
        if self.heartbeat_every < 1:
            raise ConfigurationError("heartbeat_every must be at least 1")
        if self.peer_link.latency_ticks < 1:
            raise ConfigurationError(
                "peer links need at least 1 tick of latency (a synchronous "
                "peer link could not hold frames across a partition)"
            )
        self.failover.validate()

    @property
    def peer_ids(self) -> list[str]:
        """The peer identifiers, in canonical order."""
        return [f"p{i}" for i in range(self.peers)]
