"""One federation peer: a DKF filter bank plus federation-local state.

A peer wraps a tolerant, ack-emitting :class:`~repro.dkf.server.DKFServer`
(the same bank a single-server engine runs) and layers the federation
concerns beside it: which streams it homes versus replicates, what it
believes about every stream's current home (an epoch-versioned view),
when it last heard each neighbour, and what its last consensus round
measured.  Crashing a peer destroys the bank -- restart rejoins with
amnesia at a higher epoch, exactly like a crashed source."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.server import DKFServer
from repro.federation.consensus import ConsensusRoundInfo
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["PeerNode", "HomeView"]


@dataclass(frozen=True)
class HomeView:
    """One peer's epoch-versioned belief about a stream's home.

    Attributes:
        home: The peer currently believed to home the stream.
        epoch: Home epoch; every failover increments it, and a claim is
            adopted only when its epoch is strictly higher, so competing
            or replayed claims converge identically on every peer.
    """

    home: str
    epoch: int = 0


class PeerNode:
    """One peer server in a federated cluster.

    Args:
        peer_id: The peer's identifier (``"p0"``...).
        telemetry: Optional telemetry handle shared with the cluster.
    """

    def __init__(self, peer_id: str, telemetry=None) -> None:
        self.peer_id = peer_id
        self._tel = telemetry or NULL_TELEMETRY
        self.server = self._build_server()
        self.alive = True
        #: Restart epoch: bumped every time the peer rejoins after a crash.
        self.epoch = 0
        #: Streams this peer holds a bank for, with their configs --
        #: survives crashes (configs live cluster-side in reality; the
        #: peer keeps them so rejoin can re-register without the bank).
        self.configs: dict[str, DKFConfig] = {}
        self.transports: dict[str, TransportPolicy] = {}
        #: tick each neighbour was last heard from (heartbeat or frame).
        self.last_heard: dict[str, int] = {}
        #: last known restart epoch per neighbour.
        self.peer_epochs: dict[str, int] = {}
        #: epoch-versioned home belief per stream.
        self.home_view: dict[str, HomeView] = {}
        #: what the last applied consensus round measured, per stream.
        self.consensus: dict[str, ConsensusRoundInfo] = {}
        #: shares collected for the round in progress:
        #: stream -> sender peer -> share.
        self.round_shares: dict[str, dict[str, object]] = {}
        self.crashes = 0
        self.consensus_rounds_applied = 0

    def _build_server(self) -> DKFServer:
        return DKFServer(strict=False, emit_acks=True, telemetry=self._tel)

    # Bank management ------------------------------------------------------

    def install(
        self,
        stream_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
    ) -> None:
        """(Re)register a stream's filter in this peer's bank."""
        transport = transport or TransportPolicy()
        self.configs[stream_id] = config
        self.transports[stream_id] = transport
        if stream_id in self.server.source_ids:
            self.server.deregister(stream_id)
        self.server.register(stream_id, config, transport=transport)

    def uninstall(self, stream_id: str) -> None:
        """Drop a stream's filter and every federation trace of it."""
        self.configs.pop(stream_id, None)
        self.transports.pop(stream_id, None)
        self.home_view.pop(stream_id, None)
        self.consensus.pop(stream_id, None)
        self.round_shares.pop(stream_id, None)
        if stream_id in self.server.source_ids:
            self.server.deregister(stream_id)

    def last_applied_seq(self, stream_id: str) -> int:
        """Highest stream sequence this bank has applied (-1 when none).

        ``expected_seq`` is the *next* sequence the bank will accept, so
        the last applied one is that minus one; a bank that never heard
        the stream reports -1 and loses every freshness comparison.
        """
        if stream_id not in self.server.source_ids:
            return -1
        return int(self.server.stats(stream_id)["expected_seq"]) - 1

    # Crash / rejoin -------------------------------------------------------

    def crash(self) -> None:
        """Kill the peer: the in-memory bank dies with the process."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1

    def rejoin(self, tick: int) -> None:
        """Restart with amnesia: fresh bank, higher epoch.

        Every stream this peer knew is re-registered unprimed; replica
        resyncs and (for re-homed streams) source retransmissions fill
        the bank back in.  Liveness memory restarts at the rejoin tick
        so the reborn peer does not instantly declare everyone dead.
        """
        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.server = self._build_server()
        for stream_id, config in self.configs.items():
            self.server.register(
                stream_id, config, transport=self.transports[stream_id]
            )
        self.last_heard = {peer: tick for peer in self.last_heard}
        self.consensus.clear()
        self.round_shares.clear()

    # Liveness -------------------------------------------------------------

    def note_heard(self, peer_id: str, tick: int, epoch: int | None = None) -> None:
        """Record traffic from a neighbour (heartbeat or any frame)."""
        previous = self.last_heard.get(peer_id)
        if previous is None or tick > previous:
            self.last_heard[peer_id] = tick
        if epoch is not None:
            self.peer_epochs[peer_id] = max(
                epoch, self.peer_epochs.get(peer_id, 0)
            )

    def silence(self, peer_id: str, now: int) -> int:
        """Ticks since the neighbour was last heard (``now`` if never)."""
        heard = self.last_heard.get(peer_id)
        return now if heard is None else max(0, now - heard)

    # Home view ------------------------------------------------------------

    def adopt_claim(self, stream_id: str, home: str, epoch: int) -> bool:
        """Adopt a re-home claim when its epoch is strictly newer."""
        current = self.home_view.get(stream_id)
        if current is not None and epoch <= current.epoch:
            return False
        self.home_view[stream_id] = HomeView(home=home, epoch=epoch)
        return True
