"""Peer graph: topology, rendezvous placement and consensus weights.

Placement uses rendezvous (highest-random-weight) hashing: every peer
scores ``crc32(peer "|" source)`` and the ranking by descending score is
the source's home (rank 0) and replica chain (ranks 1..k).  Rendezvous
hashing gives minimal disruption -- removing a peer re-homes only the
sources it owned, each to its next-ranked survivor -- and needs no
coordination state beyond the peer list itself.

Consensus weights are Metropolis-Hastings over the peer graph:
``w_ij = 1 / (1 + max(deg_i, deg_j))`` for each edge, self-weight the
remainder.  Metropolis weights are doubly stochastic on any undirected
graph, which is what makes repeated diffusion averaging converge to the
uniform average (the diffusion-DKF stability condition).
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigurationError

__all__ = ["PeerGraph", "peer_link_id"]


def peer_link_id(from_peer: str, to_peer: str) -> str:
    """The fabric key of the directed link ``from_peer -> to_peer``."""
    return f"{from_peer}>{to_peer}"


class PeerGraph:
    """An undirected peer graph with placement and weight queries.

    Args:
        peer_ids: Peer identifiers, in canonical order.
        topology: ``"full"`` or ``"ring"``.
    """

    def __init__(self, peer_ids: list[str], topology: str = "full") -> None:
        if len(set(peer_ids)) != len(peer_ids):
            raise ConfigurationError("peer ids must be unique")
        if not peer_ids:
            raise ConfigurationError("a peer graph needs at least one peer")
        self._peers = list(peer_ids)
        self._topology = topology
        self._neighbors: dict[str, list[str]] = {p: [] for p in peer_ids}
        n = len(peer_ids)
        if topology == "full":
            for a in peer_ids:
                self._neighbors[a] = [b for b in peer_ids if b != a]
        elif topology == "ring":
            for i, a in enumerate(peer_ids):
                if n == 1:
                    continue
                around = {peer_ids[(i - 1) % n], peer_ids[(i + 1) % n]}
                around.discard(a)
                self._neighbors[a] = sorted(around)
        else:
            raise ConfigurationError(f"unknown topology {topology!r}")

    @property
    def peer_ids(self) -> list[str]:
        """The peers, in canonical order."""
        return list(self._peers)

    @property
    def topology(self) -> str:
        """The configured topology name."""
        return self._topology

    def neighbors(self, peer_id: str) -> list[str]:
        """Direct neighbours of one peer (sorted, excludes itself)."""
        try:
            return list(self._neighbors[peer_id])
        except KeyError:
            raise ConfigurationError(f"unknown peer {peer_id!r}") from None

    def degree(self, peer_id: str) -> int:
        """Number of direct neighbours."""
        return len(self.neighbors(peer_id))

    # Placement ------------------------------------------------------------

    @staticmethod
    def _score(peer_id: str, source_id: str) -> tuple[int, str]:
        # The peer id is the tie-breaker so equal-CRC collisions (never
        # seen in practice) still rank deterministically.
        return (
            zlib.crc32(f"{peer_id}|{source_id}".encode("utf-8")),
            peer_id,
        )

    def rank(self, source_id: str) -> list[str]:
        """Every peer, ranked by rendezvous score for ``source_id``."""
        return sorted(
            self._peers,
            key=lambda p: self._score(p, source_id),
            reverse=True,
        )

    def home(self, source_id: str) -> str:
        """The source's home peer (rank 0)."""
        return self.rank(source_id)[0]

    def replicas(
        self, source_id: str, k: int, home: str | None = None
    ) -> list[str]:
        """The source's ``k`` replica peers.

        Replicas are drawn from the home's direct *neighbours* (frames
        are forwarded over single links, never relayed), ranked by their
        rendezvous score for the source.  On a full mesh this is exactly
        ranks 1..k; on sparser topologies it is the best-ranked adjacent
        peers.  ``home`` defaults to the source's rendezvous home -- pass
        the current home after a failover so the new replica chain hangs
        off the new ingress.
        """
        home = self.home(source_id) if home is None else home
        adjacent = set(self.neighbors(home))
        return [
            p for p in self.rank(source_id) if p in adjacent
        ][:k]

    # Consensus weights ----------------------------------------------------

    def metropolis_weights(self, peer_id: str) -> dict[str, float]:
        """Metropolis-Hastings weights for one peer's neighbourhood.

        Returns ``{neighbor: w}`` plus the peer's own self-weight under
        its own id; the weights sum to 1.
        """
        weights: dict[str, float] = {}
        deg_i = self.degree(peer_id)
        for other in self.neighbors(peer_id):
            weights[other] = 1.0 / (1.0 + max(deg_i, self.degree(other)))
        weights[peer_id] = 1.0 - sum(weights.values())
        return weights

    # Reachability ---------------------------------------------------------

    def components(self, link_up) -> list[set[str]]:
        """Connected components under a link predicate.

        Args:
            link_up: ``(peer_a, peer_b) -> bool``; False removes the
                edge (both directions -- components model *mutual*
                reachability, the split-brain question).

        Returns the components as sets, largest first (ties broken by
        smallest member, so the ordering is deterministic).
        """
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._peers:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self._neighbors[node]:
                    if neighbor in component:
                        continue
                    if link_up(node, neighbor) and link_up(neighbor, node):
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(component)
        return sorted(components, key=lambda c: (-len(c), min(c)))
