"""Multi-server federation: consensus fusion with partition tolerance.

A :class:`~repro.federation.cluster.FederatedCluster` runs N peer
servers, each holding its own DKF filter bank.  Every source is *homed*
on one peer (rendezvous hashing) and replicated to ``k`` further peers;
a periodic diffusion consensus round fuses the overlapping estimates in
information form, and the disagreement it measures becomes an honest
``consensus_error`` bound on every answer.  Peer heartbeats, failover
re-homing and split-brain handling make losing a server degrade service
instead of dropping streams.

See ``docs/FEDERATION.md`` for the architecture and failure-mode
semantics, and ``docs/PROTOCOL.md`` section 8 for the peer wire formats.
"""

from repro.federation.cluster import FederatedCluster, FederationReport
from repro.federation.config import FederationConfig
from repro.federation.consensus import (
    ConsensusRoundInfo,
    fuse_information,
    information_form,
    staleness_drift,
    zhat_spread,
)
from repro.federation.graph import PeerGraph
from repro.federation.peer import PeerNode

__all__ = [
    "FederatedCluster",
    "FederationReport",
    "FederationConfig",
    "PeerGraph",
    "PeerNode",
    "ConsensusRoundInfo",
    "information_form",
    "fuse_information",
    "zhat_spread",
    "staleness_drift",
]
