"""The federated cluster: N peer servers behind one engine-like facade.

A :class:`FederatedCluster` drives many DKF sources against a fleet of
peer servers instead of one.  Each source is *homed* on the peer its
rendezvous hash picks; the home runs the paper's server half unchanged
(tolerant delivery, cumulative acks, resync healing), and additionally
forwards every applied-stream frame to ``k`` replica peers over directed
peer links carried by a second :class:`~repro.dsms.network.NetworkFabric`.
A periodic diffusion consensus round fuses the overlapping estimates in
information form and measures how much they disagreed -- the measured
disagreement plus a staleness drift term is the ``consensus_error``
bound every answer carries.

Robustness semantics (the headline):

* **Peer crash** -- the in-memory bank dies.  Frames delivered to the
  dead host drop on the floor (the fabric counted them delivered; that
  is what a dead process does to packets).  Once the silence deadline
  confirms the death, each orphaned stream is re-homed to its freshest
  replica (promotion order: highest applied sequence, then highest
  epoch, then lowest peer id), paced by the failover supervisor.  The
  source heals the new home itself: its un-acked frames age out and the
  retransmitted resync snapshot lands at the new ingress -- the PR-3
  handshake, reused peer-to-peer.
* **Partition** -- links crossing the cut drop sends and hold in-pipe
  frames (still ``in_flight``).  A partitioned-but-alive home keeps its
  sources: both halves keep answering, the minority side from replica
  banks with an honestly widened bound, and on heal every peer
  reconciles deterministically (epoch-ordered claims, seeded fusion).
* **Asymmetric links** -- one direction of a peer or source link slows;
  acks and data age independently, exactly the case symmetric timeout
  tuning gets wrong.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dkf.config import TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.dkf.source import DKFSource
from repro.dsms.faults import FaultSchedule
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.dsms.query import ContinuousQuery, QueryAnswer
from repro.dsms.registry import SourceRegistry
from repro.errors import (
    ConfigurationError,
    StreamExhaustedError,
    UnknownSourceError,
)
from repro.federation.config import FederationConfig
from repro.federation.consensus import (
    ConsensusRoundInfo,
    fuse_information,
    information_form,
    staleness_drift,
    zhat_spread,
)
from repro.federation.graph import PeerGraph, peer_link_id
from repro.federation.peer import PeerNode
from repro.federation.protocol import (
    ConsensusShare,
    PeerHeartbeat,
    RehomeClaim,
    ReplicaFrame,
)
from repro.filters.models import StateSpaceModel
from repro.obs.events import trace_id
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.supervisor import StreamSupervisor
from repro.streams.base import MaterializedStream, StreamCursor

__all__ = ["FederatedCluster", "FederationReport"]


@dataclasses.dataclass(frozen=True)
class FederationReport:
    """Cluster-wide traffic and robustness summary.

    Both fabrics obey the conservation law independently:
    ``offered == delivered + lost + corrupted + in_flight``.

    Attributes:
        ticks: Sampling instants processed.
        peers: Peer count.
        source_offered: Data frames offered on source links.
        source_delivered: Data frames delivered on source links.
        source_lost: Data frames dropped by loss models / severed sends.
        source_corrupted: Data frames rejected by the CRC check.
        source_in_flight: Data frames still queued on source links.
        peer_offered: Peer frames offered on peer links.
        peer_delivered: Peer frames delivered on peer links.
        peer_lost: Peer frames dropped (loss or severed sends).
        peer_corrupted: Peer frames rejected by the CRC check.
        peer_in_flight: Peer frames still queued (held across
            partitions included -- they are ``in_flight``, not lost).
        dropped_at_dead_peer: Frames delivered to a crashed peer's host
            and dropped on the floor.
        failovers: Streams re-homed after a confirmed peer death.
        rehome_latency_ticks: Per-completed-failover latency from the
            re-home decision to the first frame applied at the new home.
        peer_crashes: Peer processes killed.
        consensus_rounds: Fusion rounds applied across all peers.
        split_brain_ticks: Ticks at least one partition was active.
    """

    ticks: int
    peers: int
    source_offered: int
    source_delivered: int
    source_lost: int
    source_corrupted: int
    source_in_flight: int
    peer_offered: int
    peer_delivered: int
    peer_lost: int
    peer_corrupted: int
    peer_in_flight: int
    dropped_at_dead_peer: int
    failovers: int
    rehome_latency_ticks: tuple[int, ...]
    peer_crashes: int
    consensus_rounds: int
    split_brain_ticks: int

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return dataclasses.asdict(self)


def _either(first, second):
    """Compose two optional loss predicates with OR (fault layering)."""
    if first is None:
        return second
    if second is None:
        return first

    def drop(index: int) -> bool:
        return bool(first(index)) or bool(second(index))

    return drop


class FederatedCluster:
    """N peer servers, consensus fusion, failover -- one facade.

    The public surface mirrors :class:`~repro.dsms.engine.StreamEngine`
    (``add_source`` / ``submit_query`` / ``inject_faults`` / ``step`` /
    ``run`` / ``answers`` / ``report``) so drills and benches can swap a
    cluster in where an engine ran.

    Args:
        config: Cluster shape and timing; defaults to 3 fully-connected
            peers with 1 replica per stream.
        telemetry: Optional telemetry handle threaded through the peer
            banks, both fabrics and the failover supervisor.
    """

    def __init__(
        self,
        config: FederationConfig | None = None,
        telemetry=None,
    ) -> None:
        self._cfg = config or FederationConfig()
        self._tel = telemetry or NULL_TELEMETRY
        self._graph = PeerGraph(self._cfg.peer_ids, self._cfg.topology)
        self._peers = {
            pid: PeerNode(pid, telemetry=self._tel)
            for pid in self._cfg.peer_ids
        }
        self.registry = SourceRegistry()
        self._sources: dict[str, DKFSource] = {}
        self._cursors: dict[str, StreamCursor] = {}
        self._links: dict[str, LinkConfig] = {}
        self._transports: dict[str, TransportPolicy] = {}
        self._drift: dict[str, float] = {}
        self._ticks = 0
        self._exhausted: set[str] = set()
        self._faults: FaultSchedule | None = None
        self._latency_overrides: dict[str, tuple[int, int]] = {}
        self._resync_prime: set[str] = set()
        self._down_now: set[str] = set()
        # Federation routing state (the cluster's ingress table).
        self._home: dict[str, str] = {}
        self._home_epoch: dict[str, int] = {}
        self._replicas: dict[str, list[str]] = {}
        self._supervisor = StreamSupervisor(
            self._cfg.failover.restart, telemetry=self._tel
        )
        self._peer_seq: dict[str, int] = {}
        self._round_index = 0
        self._consensus_rounds = 0
        self._failovers = 0
        self._rehome_latencies: list[int] = []
        self._rehome_baseline: dict[str, tuple[int, int]] = {}
        self._dropped_at_dead_peer = 0
        self._split_brain_ticks = 0
        self._source_fabric = NetworkFabric(
            deliver=self._deliver_from_source,
            deliver_ack=self._on_ack,
            telemetry=self._tel,
        )
        self._peer_fabric = NetworkFabric(
            deliver=self._deliver_peer_frame,
            telemetry=self._tel,
        )
        self._peer_links: dict[str, LinkConfig] = {}
        for a in self._cfg.peer_ids:
            for b in self._graph.neighbors(a):
                link = peer_link_id(a, b)
                self._peer_fabric.add_link(link, self._cfg.peer_link)
                self._peer_links[link] = self._cfg.peer_link
                self._peer_seq[link] = 0

    # Introspection --------------------------------------------------------

    @property
    def config(self) -> FederationConfig:
        """The cluster configuration."""
        return self._cfg

    @property
    def graph(self) -> PeerGraph:
        """The peer graph (topology, placement, weights)."""
        return self._graph

    @property
    def peers(self) -> dict[str, PeerNode]:
        """The peer nodes (live objects)."""
        return dict(self._peers)

    @property
    def sources(self) -> dict[str, DKFSource]:
        """The installed source-side DKF endpoints (live objects)."""
        return dict(self._sources)

    @property
    def ticks(self) -> int:
        """Sampling instants processed so far."""
        return self._ticks

    @property
    def faults(self) -> FaultSchedule | None:
        """The injected fault schedule, if any."""
        return self._faults

    @property
    def telemetry(self):
        """The telemetry handle."""
        return self._tel

    @property
    def source_fabric(self) -> NetworkFabric:
        """The source-to-cluster fabric (live object)."""
        return self._source_fabric

    @property
    def peer_fabric(self) -> NetworkFabric:
        """The peer-to-peer fabric (live object)."""
        return self._peer_fabric

    def peer(self, peer_id: str) -> PeerNode:
        """One peer node (raises on unknown ids)."""
        try:
            return self._peers[peer_id]
        except KeyError:
            raise ConfigurationError(f"unknown peer {peer_id!r}") from None

    def home_of(self, source_id: str) -> str:
        """The stream's current home (ingress) peer."""
        try:
            return self._home[source_id]
        except KeyError:
            raise UnknownSourceError(
                f"source {source_id!r} not registered"
            ) from None

    def replicas_of(self, source_id: str) -> list[str]:
        """The stream's current replica peers."""
        self.home_of(source_id)
        return list(self._replicas.get(source_id, []))

    # Registration ---------------------------------------------------------

    def add_source(
        self,
        source_id: str,
        model: StateSpaceModel,
        stream: MaterializedStream,
        link: LinkConfig | None = None,
        default_smoothing_r: float = 1.0,
        transport: TransportPolicy | None = None,
    ) -> None:
        """Register a source, its model, its data stream and its link.

        Placement is decided here: rendezvous hashing picks the home
        peer, and the ``k`` best-ranked graph neighbours of the home
        become the replica set.
        """
        if ">" in source_id or source_id in self._peers:
            raise ConfigurationError(
                f"source id {source_id!r} collides with the peer namespace"
            )
        self.registry.register_source(
            source_id, model, default_smoothing_r=default_smoothing_r
        )
        self._cursors[source_id] = StreamCursor(stream)
        self._source_fabric.add_link(source_id, link)
        self._links[source_id] = link or LinkConfig()
        self._transports[source_id] = transport or TransportPolicy()
        self._drift[source_id] = staleness_drift(model)
        home = self._graph.home(source_id)
        self._home[source_id] = home
        self._home_epoch[source_id] = 0
        self._replicas[source_id] = self._graph.replicas(
            source_id, self._cfg.replication, home=home
        )
        for peer in self._peers.values():
            peer.adopt_claim(source_id, home, epoch=0)

    def submit_query(self, query: ContinuousQuery) -> None:
        """Activate a continuous query, (re)installing the stream's DKF.

        The filter bank is installed on the home *and* every replica
        peer; the tightest active δ wins, exactly as on the
        single-server engine.
        """
        descriptor = self.registry.add_query(query)
        config = descriptor.build_config()
        existing = self._sources.get(query.source_id)
        if existing is not None and existing.config == config:
            return
        self._install(query.source_id, config)

    def retire_query(self, query_id: str) -> None:
        """Deactivate a query; tear down the DKF when none remain."""
        descriptor = self.registry.remove_query(query_id)
        source_id = descriptor.source_id
        if not descriptor.queries:
            if source_id in self._sources:
                del self._sources[source_id]
                for peer in self._peers.values():
                    peer.uninstall(source_id)
                self._exhausted.discard(source_id)
                self._resync_prime.discard(source_id)
            return
        config = descriptor.build_config()
        if self._sources[source_id].config != config:
            self._install(source_id, config)

    def _install(self, source_id: str, config) -> None:
        transport = self._transports.get(source_id) or TransportPolicy()
        self._sources[source_id] = DKFSource(
            source_id, config, transport=transport, telemetry=self._tel
        )
        self._resync_prime.discard(source_id)
        holders = [self._home[source_id], *self._replicas[source_id]]
        for pid in holders:
            peer = self._peers[pid]
            if peer.alive:
                peer.install(source_id, config, transport=transport)
            else:
                # A dead holder still records the config so rejoin can
                # re-register the bank.
                peer.configs[source_id] = config
                peer.transports[source_id] = transport

    # Fault injection ------------------------------------------------------

    def inject_faults(self, schedule: FaultSchedule) -> None:
        """Install a fault schedule; call after every ``add_source``.

        On top of the single-server fault classes (crash, sensor, burst
        loss, corruption -- all keyed by source id), the cluster consumes
        *peer* crash windows (``schedule.crash("p1", ...)``), partitions
        whose sides name peers and/or sources, and asymmetric windows on
        source links or directed peer links (``"p0>p1"``).
        """
        schedule.reset()
        schedule.bind_telemetry(self._tel)
        self._faults = schedule
        partitioned = (
            schedule.partitioned_nodes() if schedule.has_partitions() else set()
        )
        for source_id in self._links:
            loss = schedule.loss_fn(source_id)
            corrupt = schedule.corrupt_fn(source_id)
            sever = None
            if partitioned:
                # A source's link is severed when the cut separates it
                # from its *current* ingress peer -- the closure reads
                # the routing table live, so failover re-points it.
                def sever(_index: int, _sid: str = source_id) -> bool:
                    return schedule.link_severed(_sid, self._home[_sid])

            if loss is None and corrupt is None and sever is None:
                continue
            base = self._source_fabric.link_config(source_id)
            self._source_fabric.reconfigure_link(
                source_id,
                dataclasses.replace(
                    base,
                    loss_fn=_either(_either(base.loss_fn, loss), sever),
                    ack_loss_fn=_either(base.ack_loss_fn, sever),
                    corrupt_fn=_either(base.corrupt_fn, corrupt),
                ),
            )
        if partitioned:
            for link in self._peer_links:
                a, b = link.split(">")
                if a not in partitioned and b not in partitioned:
                    continue

                def sever_peer(_index: int, _a: str = a, _b: str = b) -> bool:
                    return schedule.link_severed(_a, _b)

                base = self._peer_fabric.link_config(link)
                self._peer_fabric.reconfigure_link(
                    link,
                    dataclasses.replace(
                        base, loss_fn=_either(base.loss_fn, sever_peer)
                    ),
                )
            self._source_fabric.set_gate(
                lambda link_id, tick: not schedule.link_severed(
                    link_id, self._home[link_id], tick
                )
            )
            self._peer_fabric.set_gate(
                lambda link_id, tick: not schedule.link_severed(
                    *link_id.split(">"), tick
                )
            )

    def _apply_latency_overrides(self, now: int) -> None:
        """Apply/clear asymmetric-link windows on both fabrics."""
        if not self._faults.asymmetric_links():
            return
        overrides = {
            lid: extras
            for lid, extras in self._faults.latency_overrides(now).items()
            if lid in self._links or lid in self._peer_links
        }
        if overrides == self._latency_overrides:
            return
        for link_id in set(self._latency_overrides) | set(overrides):
            if link_id in self._links:
                fabric, base = self._source_fabric, self._links[link_id]
            else:
                fabric, base = self._peer_fabric, self._peer_links[link_id]
            data_extra, ack_extra = overrides.get(link_id, (0, 0))
            current = fabric.link_config(link_id)
            fabric.reconfigure_link(
                link_id,
                dataclasses.replace(
                    current,
                    latency_ticks=base.latency_ticks + data_extra,
                    ack_latency_ticks=base.ack_latency_ticks + ack_extra,
                ),
            )
        self._latency_overrides = overrides

    # Peer lifecycle -------------------------------------------------------

    def crash_peer(self, peer_id: str) -> None:
        """Kill one peer server mid-run (its filter bank dies with it)."""
        peer = self.peer(peer_id)
        if not peer.alive:
            return
        peer.crash()
        if self._tel.enabled:
            self._tel.emit("federation.peer_crash", peer=peer_id)
            self._tel.count("fed_peer_crashes_total", peer_id)

    def restart_peer(self, peer_id: str) -> None:
        """Restart a crashed peer: amnesiac bank, higher epoch.

        The reborn peer rejoins as a *replica* -- streams it used to
        home stay with whoever holds the latest epoch claim (no
        automatic failback), and its empty banks heal through the
        replica resync path.
        """
        peer = self.peer(peer_id)
        if peer.alive:
            return
        peer.rejoin(self._ticks)
        self._recompute_replicas()
        if self._tel.enabled:
            self._tel.emit(
                "federation.peer_rejoin", peer=peer_id, epoch=peer.epoch
            )
            self._tel.count("fed_peer_rejoins_total", peer_id)

    def _recompute_replicas(self) -> None:
        """Refresh every stream's replica set around its current home."""
        for source_id, home in self._home.items():
            replicas = self._graph.replicas(
                source_id, self._cfg.replication, home=home
            )
            self._replicas[source_id] = replicas
            config = self._sources.get(source_id)
            if config is None:
                continue
            transport = self._transports[source_id]
            for pid in replicas:
                peer = self._peers[pid]
                if (
                    peer.alive
                    and source_id not in peer.server.source_ids
                ):
                    peer.install(
                        source_id, config.config, transport=transport
                    )

    def _apply_peer_faults(self, now: int) -> None:
        """Consume peer crash/restart windows from the fault schedule."""
        if self._faults is None:
            return
        for pid, peer in self._peers.items():
            if peer.alive and self._faults.is_down(pid, now):
                self.crash_peer(pid)
            elif not peer.alive and self._faults.restarts_at(pid, now):
                self.restart_peer(pid)

    # Stepping -------------------------------------------------------------

    def step(self) -> int:
        """Advance every queried source one sampling instant.

        The single-server step, federated: sources sample and transmit
        to their ingress; both fabrics advance; every peer's acks are
        routed (home acks back to the source, replica resync requests
        into the replica-heal path); peers heartbeat; confirmed-dead
        homes trigger failover; and on consensus cadence the previous
        round's shares fuse before the next round broadcasts.
        """
        tel = self._tel
        now = self._ticks
        tel.set_tick(now)
        with tel.timers.span("federation.step"):
            if self._faults is not None:
                self._faults.observe_tick(now)
                self._apply_latency_overrides(now)
                self._apply_peer_faults(now)
            processed = self._step_sources(now)
            self._ticks += 1
            for peer in self._peers.values():
                if peer.alive:
                    peer.server.advance_clock(self._ticks)
            self._source_fabric.advance(self._ticks)
            self._peer_fabric.advance(self._ticks)
            self._route_peer_outboxes()
            self._emit_heartbeats(self._ticks)
            self._check_failover(self._ticks)
            self._note_rehome_progress(self._ticks)
            self._maybe_consensus(self._ticks)
            if self._faults is not None and self._faults.partition_active(
                self._ticks
            ):
                self._split_brain_ticks += 1
        return processed

    def _step_sources(self, now: int) -> int:
        """Readings + transport for every source (mirrors the engine)."""
        tel = self._tel
        processed = 0
        for source_id, source in self._sources.items():
            if self._faults is not None:
                if self._faults.restarts_at(source_id, now):
                    source.reset(now)
                    self._resync_prime.add(source_id)
                    self._down_now.discard(source_id)
                    if tel.enabled:
                        tel.emit("fault.restart", source_id=source_id)
                        tel.count("restarts_total", source_id)
                if self._faults.is_down(source_id, now):
                    if source_id not in self._down_now:
                        self._down_now.add(source_id)
                        if tel.enabled:
                            tel.emit("fault.crash", source_id=source_id)
                            tel.count("crashes_total", source_id)
                    self._tick_banks(source_id, now)
                    if self._faults.is_terminal(source_id, now):
                        self._exhausted.add(source_id)
                    continue
            if source_id not in self._exhausted:
                cursor = self._cursors[source_id]
                try:
                    record = cursor.next()
                except StreamExhaustedError:
                    self._exhausted.add(source_id)
                else:
                    if self._faults is not None:
                        record = self._faults.transform(source_id, now, record)
                    self._tick_banks(source_id, record.k)
                    step = source.sample(record)
                    message = step.message
                    if message is not None:
                        if source_id in self._resync_prime:
                            self._resync_prime.discard(source_id)
                            message = source.resync_message(
                                record.k, step.value
                            )
                        self._source_fabric.send(message)
                        source.note_sent(message, now)
                    processed += 1
            for message in source.poll_transport(now):
                self._source_fabric.send(message)
        return processed

    def _tick_banks(self, source_id: str, k: int) -> None:
        """Advance every alive bank holding the stream one instant.

        Home and replicas alike predict every sampled instant -- a
        replica's filter must be time-aligned before the (1-tick-late)
        forwarded correction lands, just as the server predicts every
        instant in the single-server protocol.
        """
        for peer in self._peers.values():
            if (
                peer.alive
                and source_id in peer.server.source_ids
                and peer.server.is_primed(source_id)
            ):
                peer.server.tick(source_id, k)

    # Delivery -------------------------------------------------------------

    def _deliver_from_source(self, message) -> None:
        """Source fabric deliver: route to ingress, replicate onward."""
        source_id = message.source_id
        home = self._home[source_id]
        peer = self._peers[home]
        if not peer.alive:
            # Dead host: the packet reached the machine and died there.
            self._dropped_at_dead_peer += 1
            return
        if source_id not in peer.server.source_ids:
            # Frame raced a retire/failover; nothing holds the bank.
            self._dropped_at_dead_peer += 1
            return
        if self._tel.enabled and isinstance(
            message, (UpdateMessage, ResyncMessage)
        ):
            self._tel.emit(
                "federation.ingress",
                source_id=source_id,
                trace=trace_id(source_id, message.seq),
                home=home,
                lag_ticks=self._ticks - message.k,
            )
        peer.server.receive(message)
        if isinstance(message, (UpdateMessage, ResyncMessage)):
            for replica in self._replicas[source_id]:
                self._forward_replica(home, replica, message)

    def _forward_replica(
        self,
        home: str,
        replica: str,
        payload: UpdateMessage | ResyncMessage,
    ) -> None:
        """Forward one stream frame home -> replica over the peer fabric."""
        link = peer_link_id(home, replica)
        if link not in self._peer_links:
            return
        seq = self._peer_seq[link]
        self._peer_seq[link] = seq + 1
        frame = ReplicaFrame(
            link_id=link, seq=seq, k=payload.k, payload=payload
        )
        if self._tel.enabled:
            self._tel.emit(
                "federation.replica_forward",
                source_id=frame.stream_id,
                trace=frame.trace_id,
                home=home,
                replica=replica,
            )
        self._peer_fabric.send(frame)

    def _deliver_peer_frame(self, frame) -> None:
        """Peer fabric deliver: dispatch one peer frame at its receiver."""
        sender, receiver = frame.link_id.split(">")
        peer = self._peers[receiver]
        if not peer.alive:
            self._dropped_at_dead_peer += 1
            return
        if isinstance(frame, PeerHeartbeat):
            peer.note_heard(frame.peer_id, self._ticks, epoch=frame.epoch)
            return
        peer.note_heard(sender, self._ticks)
        if isinstance(frame, ReplicaFrame):
            if frame.stream_id in peer.server.source_ids:
                if self._tel.enabled:
                    self._tel.emit(
                        "federation.replica_apply",
                        source_id=frame.stream_id,
                        trace=frame.trace_id,
                        replica=receiver,
                        lag_ticks=self._ticks - frame.k,
                    )
                peer.server.receive(frame.payload)
            return
        if isinstance(frame, ConsensusShare):
            peer.round_shares.setdefault(frame.stream_id, {})[sender] = frame
            return
        if isinstance(frame, RehomeClaim):
            peer.adopt_claim(frame.stream_id, frame.new_home, frame.epoch)

    def _on_ack(self, ack: AckMessage) -> None:
        """Source fabric ack deliver: hand the ack to its source."""
        source = self._sources.get(ack.source_id)
        if source is not None:
            source.on_ack(ack, self._ticks)

    def _route_peer_outboxes(self) -> None:
        """Drain every bank's ack outbox to the right consumer.

        Acks cut by a stream's *home* bank travel back to the source
        over its link (the paper's ack channel).  Acks cut by a replica
        bank never reach the source -- a replica's sequence expectations
        are its own business -- but a replica's ``resync_requested``
        enters the replica-heal path: the home answers it with a full
        snapshot of its own bank, the same medicine a gap-detecting
        server prescribes a source.
        """
        for pid, peer in self._peers.items():
            if not peer.alive:
                continue
            for ack in peer.server.take_outbox():
                stream = ack.source_id
                if self._home.get(stream) == pid:
                    self._source_fabric.send_ack(ack)
                elif ack.resync_requested:
                    self._heal_replica(stream, pid)

    def _heal_replica(self, stream: str, replica: str) -> None:
        """Home -> replica snapshot after the replica detected a gap."""
        home_id = self._home.get(stream)
        if home_id is None or home_id == replica:
            return
        home = self._peers[home_id]
        if (
            not home.alive
            or stream not in home.server.source_ids
            or not home.server.is_primed(stream)
        ):
            return
        view = home.server.health_view(stream)
        stats = home.server.stats(stream)
        snapshot = ResyncMessage(
            source_id=stream,
            seq=int(stats["expected_seq"]) - 1,
            k=int(stats["last_k"]),
            x=view["x"],
            p=view["p"],
            value=home.server.value(stream),
        )
        self._forward_replica(home_id, replica, snapshot)
        if self._tel.enabled:
            self._tel.emit(
                "federation.replica_heal",
                source_id=stream,
                home=home_id,
                replica=replica,
            )
            self._tel.count("fed_replica_heals_total", stream)

    # Heartbeats and failover ----------------------------------------------

    def _emit_heartbeats(self, tick: int) -> None:
        """Every alive peer beacons its neighbours on the cadence."""
        if tick % self._cfg.heartbeat_every != 0:
            return
        for pid, peer in self._peers.items():
            if not peer.alive:
                continue
            for neighbor in self._graph.neighbors(pid):
                link = peer_link_id(pid, neighbor)
                seq = self._peer_seq[link]
                self._peer_seq[link] = seq + 1
                self._peer_fabric.send(
                    PeerHeartbeat(
                        link_id=link,
                        seq=seq,
                        k=tick,
                        peer_id=pid,
                        epoch=peer.epoch,
                    )
                )

    def _check_failover(self, now: int) -> None:
        """Re-home streams whose home is confirmed dead.

        Two conditions gate every re-home: the home process is actually
        down (a partitioned-but-alive home keeps its sources -- both
        sides answering beats a split-brain ingress fight), and the
        promotion candidate has *observed* the silence past the policy
        deadline (detection is earned through missed heartbeats, not
        read off the simulation's omniscient state).  Promotion picks
        the freshest alive replica: highest applied sequence, then
        highest epoch, then lowest peer id -- a deterministic order every
        peer computes identically.
        """
        policy = self._cfg.failover
        for source_id, home_id in list(self._home.items()):
            home = self._peers[home_id]
            if home.alive or source_id not in self._sources:
                continue
            candidates = [
                self._peers[pid]
                for pid in self._replicas.get(source_id, [])
                if self._peers[pid].alive
            ]
            if not candidates:
                # No replica holds the stream: fall back to rendezvous
                # order over the survivors; the source's own resync will
                # prime the empty bank.
                candidates = [
                    self._peers[pid]
                    for pid in self._graph.rank(source_id)
                    if self._peers[pid].alive
                ]
            if not candidates:
                continue
            best = min(
                candidates,
                key=lambda p: (
                    -p.last_applied_seq(source_id),
                    -p.epoch,
                    p.peer_id,
                ),
            )
            if best.silence(home_id, now) <= policy.dead_after_ticks:
                continue
            if not self._supervisor.request_restart(source_id, now):
                continue
            self._promote(source_id, home_id, best.peer_id, now)

    def _promote(
        self, source_id: str, old_home: str, new_home: str, now: int
    ) -> None:
        """Re-point a stream's ingress and announce the claim."""
        self._home[source_id] = new_home
        self._home_epoch[source_id] += 1
        epoch = self._home_epoch[source_id]
        peer = self._peers[new_home]
        if source_id not in peer.server.source_ids:
            config = self._sources[source_id].config
            peer.install(
                source_id, config, transport=self._transports[source_id]
            )
        peer.adopt_claim(source_id, new_home, epoch)
        self._replicas[source_id] = self._graph.replicas(
            source_id, self._cfg.replication, home=new_home
        )
        self._recompute_replicas()
        last_seq = peer.last_applied_seq(source_id)
        for neighbor in self._graph.neighbors(new_home):
            link = peer_link_id(new_home, neighbor)
            seq = self._peer_seq[link]
            self._peer_seq[link] = seq + 1
            self._peer_fabric.send(
                RehomeClaim(
                    link_id=link,
                    seq=seq,
                    k=now,
                    stream_id=source_id,
                    new_home=new_home,
                    epoch=epoch,
                    last_seq=max(0, last_seq),
                )
            )
        stats_applied = 0
        if source_id in peer.server.source_ids:
            stats = peer.server.stats(source_id)
            stats_applied = int(stats["updates_received"]) + int(
                stats["resyncs_received"]
            )
        self._rehome_baseline[source_id] = (now, stats_applied)
        self._failovers += 1
        if self._tel.enabled:
            self._tel.emit(
                "federation.failover",
                source_id=source_id,
                trace=f"rehome/{source_id}/{epoch}",
                old_home=old_home,
                new_home=new_home,
                epoch=epoch,
            )
            self._tel.count("fed_failovers_total", source_id)

    def _note_rehome_progress(self, now: int) -> None:
        """Close out re-homes once the new home applies its first frame."""
        for source_id, (started, baseline) in list(
            self._rehome_baseline.items()
        ):
            peer = self._peers[self._home[source_id]]
            if not peer.alive or source_id not in peer.server.source_ids:
                continue
            stats = peer.server.stats(source_id)
            applied = int(stats["updates_received"]) + int(
                stats["resyncs_received"]
            )
            if applied > baseline:
                latency = now - started
                self._rehome_latencies.append(latency)
                del self._rehome_baseline[source_id]
                if self._tel.enabled:
                    self._tel.emit(
                        "federation.rehome_complete",
                        source_id=source_id,
                        trace=(
                            f"rehome/{source_id}/"
                            f"{self._home_epoch[source_id]}"
                        ),
                        home=peer.peer_id,
                        latency_ticks=latency,
                    )
                    self._tel.observe(
                        "fed_rehome_latency_ticks", latency, source_id
                    )

    # Consensus ------------------------------------------------------------

    def _maybe_consensus(self, tick: int) -> None:
        """Fuse last round's shares, then broadcast the next round."""
        every = self._cfg.consensus_every
        if not every or tick % every != 0:
            return
        if self._round_index > 0:
            for peer in self._peers.values():
                if peer.alive:
                    self._fuse_round(peer, self._round_index - 1, tick)
        self._broadcast_round(self._round_index, tick)
        self._round_index += 1

    def _broadcast_round(self, round_index: int, tick: int) -> None:
        """Every alive holder shares its estimate of every held stream."""
        for pid, peer in self._peers.items():
            if not peer.alive:
                continue
            for stream in peer.server.source_ids:
                if not peer.server.is_primed(stream):
                    continue
                state = peer.server.health_view(stream)
                flt_p = state["p"]
                if flt_p is None or not bool(np.all(np.isfinite(flt_p))):
                    continue
                try:
                    holders = {
                        self._home[stream],
                        *self._replicas.get(stream, []),
                    }
                except KeyError:
                    continue
                share = self._build_share(peer, stream, round_index, tick)
                if share is None:
                    continue
                # The peer's own contribution enters its buffer directly
                # -- it does not travel the fabric.
                peer.round_shares.setdefault(stream, {})[pid] = share
                for neighbor in self._graph.neighbors(pid):
                    if neighbor not in holders:
                        continue
                    link = peer_link_id(pid, neighbor)
                    seq = self._peer_seq[link]
                    self._peer_seq[link] = seq + 1
                    self._peer_fabric.send(
                        dataclasses.replace(share, link_id=link, seq=seq)
                    )

    def _build_share(
        self, peer: PeerNode, stream: str, round_index: int, tick: int
    ) -> ConsensusShare | None:
        view = peer.server.health_view(stream)
        if view["x"] is None:
            return None
        flt = peer.server._state(stream).filter
        try:
            y, yv = information_form(flt)
        except ConfigurationError:
            return None
        return ConsensusShare(
            link_id=peer_link_id(peer.peer_id, peer.peer_id),
            seq=0,
            k=tick,
            stream_id=stream,
            round_index=round_index,
            y=y,
            yv=yv,
            zhat=flt.predict_measurement(),
            last_seq=max(0, peer.last_applied_seq(stream)),
            staleness=int(view["staleness_ticks"]),
        )

    def _fuse_round(
        self, peer: PeerNode, round_index: int, tick: int
    ) -> None:
        """Apply one collected round at one peer.

        Fusion mutates *replica* filters only: the home filter stays in
        exact lock-step with the source mirror (the paper's invariant),
        while replicas -- whose estimates drifted on late forwarded
        corrections -- are pulled onto the weighted neighbourhood
        average.  The measured ``zhat`` spread is recorded either way:
        it is the honest disagreement bound the answers advertise.
        """
        weights_by_peer = self._graph.metropolis_weights(peer.peer_id)
        for stream in list(peer.round_shares):
            shares = {
                sender: share
                for sender, share in peer.round_shares[stream].items()
                if share.round_index == round_index
            }
            # Drop consumed (and stale) shares; newer rounds stay queued.
            peer.round_shares[stream] = {
                sender: share
                for sender, share in peer.round_shares[stream].items()
                if share.round_index > round_index
            }
            if not shares or stream not in peer.server.source_ids:
                continue
            participants = sorted(shares)
            residual = zhat_spread(
                [shares[s].zhat for s in participants]
            )
            best_seq = max(shares[s].last_seq for s in participants)
            if (
                len(shares) > 1
                and self._home.get(stream) != peer.peer_id
                and peer.server.is_primed(stream)
            ):
                pairs = [
                    (shares[s].y, shares[s].yv) for s in participants
                ]
                weights = [
                    weights_by_peer.get(s, weights_by_peer[peer.peer_id])
                    for s in participants
                ]
                try:
                    x, p = fuse_information(pairs, weights)
                except ConfigurationError:
                    continue
                if bool(np.all(np.isfinite(x)) and np.all(np.isfinite(p))):
                    peer.server._state(stream).filter.set_state(x, p)
            peer.consensus[stream] = ConsensusRoundInfo(
                round_index=round_index,
                at_tick=tick,
                participants=len(participants),
                residual=residual,
                best_last_seq=best_seq,
            )
            peer.consensus_rounds_applied += 1
            self._consensus_rounds += 1
            if self._tel.enabled:
                self._tel.emit(
                    "federation.consensus_fuse",
                    source_id=stream,
                    trace=f"consensus/{round_index}/{stream}",
                    peer=peer.peer_id,
                    round_index=round_index,
                    participants=len(participants),
                    residual=residual,
                )
                self._tel.observe(
                    "fed_consensus_residual", residual, stream
                )

    # Answers --------------------------------------------------------------

    def answers(self, peer_id: str | None = None) -> list[QueryAnswer]:
        """Current answers for every active query.

        Args:
            peer_id: Serve every query from this peer's point of view
                (its own bank when it holds the stream, a proxied home
                answer when it can reach the home, nothing otherwise).
                None serves each stream from its current home -- falling
                back to the freshest alive replica, flagged degraded,
                while a death is awaiting failover.

        Every answer's guarantee is ``precision + consensus_error``:
        0.0 extra from a live home, the measured round residual plus
        staleness drift from a replica bank, and one peer hop of drift
        on proxied answers.
        """
        out = []
        for query in self.registry.active_queries:
            source = self._sources.get(query.source_id)
            if source is None:
                continue
            answer = self._answer_for(query, source, peer_id)
            if answer is not None:
                out.append(answer)
        return out

    def answer(self, query_id: str, peer_id: str | None = None) -> QueryAnswer:
        """The current answer for one query (optionally one peer's view)."""
        for candidate in self.answers(peer_id):
            if candidate.query_id == query_id:
                return candidate
        raise UnknownSourceError(f"no answer available for query {query_id!r}")

    def _answer_for(
        self, query: ContinuousQuery, source: DKFSource, peer_id: str | None
    ) -> QueryAnswer | None:
        stream = query.source_id
        home_id = self._home[stream]
        if peer_id is None:
            serving = self._serving_peer(stream)
            if serving is None:
                return None
            return self._bank_answer(
                query, source, serving, home_id, record=True
            )
        peer = self.peer(peer_id)
        if not peer.alive:
            return None
        if (
            stream in peer.server.source_ids
            and peer.server.is_primed(stream)
        ):
            return self._bank_answer(query, source, peer, home_id)
        home = self._peers[home_id]
        if (
            home.alive
            and self._peer_reachable(peer_id, home_id)
            and stream in home.server.source_ids
            and home.server.is_primed(stream)
        ):
            proxied = self._bank_answer(query, source, home, home_id)
            if proxied is None:
                return None
            hop_drift = self._drift[stream] * max(
                1, self._cfg.peer_link.latency_ticks
            )
            return dataclasses.replace(
                proxied,
                consensus_error=proxied.consensus_error + hop_drift,
            )
        return None

    def _serving_peer(self, stream: str) -> PeerNode | None:
        """The default serving bank: home, else the freshest replica."""
        home = self._peers[self._home[stream]]
        if (
            home.alive
            and stream in home.server.source_ids
            and home.server.is_primed(stream)
        ):
            return home
        holders = [
            self._peers[pid]
            for pid in self._replicas.get(stream, [])
            if self._peers[pid].alive
            and stream in self._peers[pid].server.source_ids
            and self._peers[pid].server.is_primed(stream)
        ]
        if not holders:
            return None
        return min(
            holders,
            key=lambda p: (-p.last_applied_seq(stream), -p.epoch, p.peer_id),
        )

    def _bank_answer(
        self,
        query: ContinuousQuery,
        source: DKFSource,
        peer: PeerNode,
        home_id: str,
        record: bool = False,
    ) -> QueryAnswer | None:
        stream = query.source_id
        if not peer.server.is_primed(stream):
            return None
        value = peer.server.value(stream)
        live = peer.server.liveness(stream)
        is_home = peer.peer_id == home_id and self._peers[home_id].alive
        if is_home:
            consensus_error = 0.0
        else:
            # The honest widening is the larger of two estimates: what
            # the last fusion round measured (plus drift since), and the
            # full drift over this bank's own silence -- a solo round
            # measures zero disagreement, but a bank that heard nothing
            # since the cut is stale however recently it "agreed" with
            # itself.
            drift = self._drift[stream]
            stale_bound = drift * max(1, int(live["staleness_ticks"]))
            info = peer.consensus.get(stream)
            if info is not None:
                consensus_error = max(
                    info.bound(self._ticks, drift), stale_bound
                )
            else:
                consensus_error = stale_bound
        degraded = bool(live["suspect"]) or not is_home
        if (
            self._faults is not None
            and self._faults.partition_active(self._ticks)
        ):
            degraded = degraded or not self._peers[home_id].alive
        if record and self._tel.enabled:
            # Answer-side health feed: the staleness histogram drives the
            # p99-staleness SLO, the gauge drives the consensus-error
            # bound rule and its Kalman watcher.  Only the default
            # serving view records -- per-peer diagnostic views would
            # report a replica's honest-but-wide bound as if it were the
            # answer the system served.
            self._tel.observe(
                "staleness_at_answer_ticks",
                int(live["staleness_ticks"]),
                stream,
            )
            self._tel.gauge("consensus_error", float(consensus_error), stream)
        return QueryAnswer(
            query_id=query.query_id,
            source_id=stream,
            k=int(peer.server.stats(stream)["last_k"]),
            value=tuple(float(v) for v in value),
            precision=source.effective_min_delta,
            staleness_ticks=int(live["staleness_ticks"]),
            confidence=peer.server.confidence(stream),
            degraded=degraded,
            consensus_error=float(consensus_error),
        )

    def _peer_reachable(self, from_peer: str, to_peer: str) -> bool:
        """Whether two peers are mutually reachable right now."""
        if from_peer == to_peer:
            return True

        def link_up(a: str, b: str) -> bool:
            if not (self._peers[a].alive and self._peers[b].alive):
                return False
            if self._faults is None:
                return True
            return not self._faults.link_severed(a, b, self._ticks)

        for component in self._graph.components(link_up):
            if from_peer in component:
                return to_peer in component
        return False

    # Run loop -------------------------------------------------------------

    def run(self, max_ticks: int | None = None) -> int:
        """Step until every stream is exhausted (or ``max_ticks``)."""
        executed = 0
        with self._tel.timers.span("federation.run"):
            while max_ticks is None or executed < max_ticks:
                if self._sources and len(self._exhausted) == len(
                    self._sources
                ):
                    break
                if (
                    self.step() == 0
                    and self._sources
                    and len(self._exhausted) == len(self._sources)
                ):
                    break
                executed += 1
            if self._sources and len(self._exhausted) == len(self._sources):
                self._flush_in_flight()
        return executed

    def settle(self, max_ticks: int = 256) -> int:
        """Tick until the transport quiesces (post-run grace period)."""
        executed = 0
        while executed < max_ticks:
            pending = sum(s.pending_acks for s in self._sources.values())
            if (
                pending == 0
                and self._source_fabric.total_in_flight() == 0
                and self._peer_fabric.total_in_flight() == 0
            ):
                break
            self.step()
            executed += 1
        return executed

    def _flush_in_flight(self) -> None:
        """Deliver stranded traffic on both fabrics (and resulting acks)."""
        while True:
            drained = self._source_fabric.drain()
            drained += self._peer_fabric.drain()
            before = self._source_fabric.total_in_flight()
            self._route_peer_outboxes()
            grew = self._source_fabric.total_in_flight() > before
            if drained == 0 and not grew:
                break

    # Reporting ------------------------------------------------------------

    def report(self) -> FederationReport:
        """Cluster-wide traffic and robustness summary."""
        src = [
            self._source_fabric.stats_for(sid) for sid in self._links
        ]
        peer = [
            self._peer_fabric.stats_for(lid) for lid in self._peer_links
        ]
        return FederationReport(
            ticks=self._ticks,
            peers=len(self._peers),
            source_offered=sum(s.offered + s.acks_offered for s in src),
            source_delivered=sum(
                s.delivered + s.acks_delivered for s in src
            ),
            source_lost=sum(s.lost + s.acks_lost for s in src),
            source_corrupted=sum(s.corrupted for s in src),
            source_in_flight=self._source_fabric.total_in_flight(),
            peer_offered=sum(s.offered for s in peer),
            peer_delivered=sum(s.delivered for s in peer),
            peer_lost=sum(s.lost for s in peer),
            peer_corrupted=sum(s.corrupted for s in peer),
            peer_in_flight=self._peer_fabric.total_in_flight(),
            dropped_at_dead_peer=self._dropped_at_dead_peer,
            failovers=self._failovers,
            rehome_latency_ticks=tuple(self._rehome_latencies),
            peer_crashes=sum(p.crashes for p in self._peers.values()),
            consensus_rounds=self._consensus_rounds,
            split_brain_ticks=self._split_brain_ticks,
        )
