"""Per-stream divergence watchdog with escalating remediation.

A Kalman filter fails quietly: a mis-applied resync, an unstable model
or a poisoned covariance keeps producing numbers long after they stop
meaning anything.  The watchdog inspects every primed server filter once
per tick and scores a small battery of health checks:

* non-finite state vector;
* covariance trouble -- asymmetry beyond tolerance, non-finite entries,
  a negative eigenvalue (not PSD), or trace above a ceiling (unbounded
  uncertainty growth);
* NIS runaway -- the normalized innovation squared ``y^T S^-1 y`` has
  expectation equal to the measurement dimension for a healthy filter;
  a single sample above a hard limit or a full-window mean above the
  threshold marks model/estimate disagreement;
* staleness past a limit (the stream went silent);
* a run of consecutive non-finite sensor readings (the reject counters
  feed in from the endpoints).

Failures escalate through a per-stream ladder with a grace period
between rungs, so one bad tick never jumps straight to quarantine::

    HEALTHY --trip--> RESYNCING --trip--> REPRIMED --trip--> QUARANTINED
       ^                  |                   |                   |
       +---- hysteresis: `hysteresis_ticks` consecutive clean checks

The watchdog only *decides*; the engine applies the actions (ask the
mirror for a resync, re-prime the server covariance, flag answers as
quarantined).  Exits from any non-healthy rung require a full hysteresis
window of clean checks, so a stream flapping around a threshold cannot
oscillate in and out of quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = [
    "WatchdogPolicy",
    "DivergenceWatchdog",
    "HEALTHY",
    "RESYNCING",
    "REPRIMED",
    "QUARANTINED",
]

#: Health-ladder rungs (strings so they serialise and read well in events).
HEALTHY = "healthy"
RESYNCING = "resyncing"
REPRIMED = "reprimed"
QUARANTINED = "quarantined"

_LADDER = (HEALTHY, RESYNCING, REPRIMED, QUARANTINED)
_ACTIONS = {RESYNCING: "resync", REPRIMED: "reprime", QUARANTINED: "quarantine"}


@dataclass(frozen=True)
class WatchdogPolicy:
    """Thresholds and pacing for the divergence watchdog.

    Attributes:
        nis_threshold: Windowed-mean NIS above this trips (a healthy
            filter's NIS has mean = measurement dimension, so ~9 is far
            out for the low-dimensional streams this engine runs).
        nis_hard_limit: A single NIS sample above this trips immediately
            (catches one-shot spikes the windowed mean would dilute).
        trace_ceiling: Covariance trace above this counts as unbounded
            uncertainty growth.
        staleness_limit: Ticks of server-side silence before a trip.
        reject_limit: Consecutive non-finite readings before a trip.
        escalation_grace_ticks: Minimum ticks between escalations, so a
            remediation gets a chance to land before the next rung.
        hysteresis_ticks: Consecutive clean checks required to step back
            to healthy from any rung (including quarantine).
        symmetry_tol: Relative tolerance for the symmetry check.
        psd_tol: Eigenvalues above ``-psd_tol`` still count as PSD.
    """

    nis_threshold: float = 9.0
    nis_hard_limit: float = 64.0
    trace_ceiling: float = 1e6
    staleness_limit: int = 50
    reject_limit: int = 3
    escalation_grace_ticks: int = 8
    hysteresis_ticks: int = 12
    symmetry_tol: float = 1e-6
    psd_tol: float = 1e-9

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad values."""
        if self.nis_threshold <= 0 or self.nis_hard_limit <= 0:
            raise ConfigurationError("NIS thresholds must be positive")
        if self.trace_ceiling <= 0:
            raise ConfigurationError("trace ceiling must be positive")
        if self.staleness_limit < 1:
            raise ConfigurationError("staleness limit must be at least 1")
        if self.reject_limit < 1:
            raise ConfigurationError("reject limit must be at least 1")
        if self.escalation_grace_ticks < 1 or self.hysteresis_ticks < 1:
            raise ConfigurationError(
                "grace and hysteresis windows must be at least 1 tick"
            )


@dataclass
class _StreamHealth:
    """Mutable per-stream ladder state."""

    status: str = HEALTHY
    healthy_streak: int = 0
    consecutive_rejects: int = 0
    last_action_tick: int | None = None
    trips: int = 0
    faults_seen: list[str] = field(default_factory=list)


class DivergenceWatchdog:
    """Run the health battery each tick and walk the escalation ladder.

    Args:
        policy: Thresholds and pacing.
        telemetry: Observability handle; the default no-op keeps the
            checks silent (decisions are unchanged either way).
    """

    def __init__(
        self, policy: WatchdogPolicy | None = None, telemetry=None
    ) -> None:
        self._policy = policy or WatchdogPolicy()
        self._policy.validate()
        self._tel = telemetry or NULL_TELEMETRY
        self._streams: dict[str, _StreamHealth] = {}

    @property
    def policy(self) -> WatchdogPolicy:
        """The installed policy."""
        return self._policy

    def register(self, source_id: str) -> None:
        """Start tracking a stream (idempotent)."""
        self._streams.setdefault(source_id, _StreamHealth())

    def deregister(self, source_id: str) -> None:
        """Forget a stream whose queries ended."""
        self._streams.pop(source_id, None)

    def status(self, source_id: str) -> str:
        """Current ladder rung for a stream (healthy when untracked)."""
        state = self._streams.get(source_id)
        return HEALTHY if state is None else state.status

    def is_quarantined(self, source_id: str) -> bool:
        """Whether a stream sits on the top rung."""
        return self.status(source_id) == QUARANTINED

    def note_rejection(self, source_id: str) -> None:
        """Record one non-finite sensor reading (endpoint reject)."""
        self.register(source_id)
        self._streams[source_id].consecutive_rejects += 1

    def note_accepted(self, source_id: str) -> None:
        """Record a finite reading, ending any reject run."""
        state = self._streams.get(source_id)
        if state is not None:
            state.consecutive_rejects = 0

    # Health battery ------------------------------------------------------

    def _covariance_faults(self, p: np.ndarray) -> list[str]:
        faults: list[str] = []
        if not bool(np.all(np.isfinite(p))):
            return ["covariance_nonfinite"]
        scale = max(1.0, float(np.abs(p).max()))
        if float(np.abs(p - p.T).max()) > self._policy.symmetry_tol * scale:
            faults.append("covariance_asymmetric")
        else:
            eigenvalues = np.linalg.eigvalsh(0.5 * (p + p.T))
            if float(eigenvalues.min()) < -self._policy.psd_tol * scale:
                faults.append("covariance_not_psd")
        if float(np.trace(p)) > self._policy.trace_ceiling:
            faults.append("covariance_trace_ceiling")
        return faults

    def _faults(self, state: _StreamHealth, view: dict) -> list[str]:
        faults: list[str] = []
        x = view.get("x")
        if x is not None and not bool(np.all(np.isfinite(x))):
            faults.append("state_nonfinite")
        p = view.get("p")
        if p is not None:
            faults.extend(self._covariance_faults(np.asarray(p, dtype=float)))
        window = view.get("nis_window") or []
        if window:
            if float(window[-1]) > self._policy.nis_hard_limit:
                faults.append("nis_spike")
            elif (
                len(window) >= 4
                and float(np.mean(window)) > self._policy.nis_threshold
            ):
                faults.append("nis_runaway")
        staleness = int(view.get("staleness_ticks", 0))
        if staleness > self._policy.staleness_limit:
            faults.append("stale")
        if state.consecutive_rejects >= self._policy.reject_limit:
            faults.append("rejected_readings")
        return faults

    # Ladder --------------------------------------------------------------

    def check(self, source_id: str, tick: int, view: dict) -> str | None:
        """Score one stream's health and return the action to apply.

        Args:
            source_id: Stream under inspection.
            tick: Current engine tick.
            view: Output of ``DKFServer.health_view`` (``x``, ``p``,
                ``nis_window``, ``staleness_ticks``).

        Returns:
            ``"resync"``, ``"reprime"``, ``"quarantine"`` when a trip
            escalates the ladder, else None (healthy, within hysteresis,
            or inside the escalation grace period).
        """
        self.register(source_id)
        state = self._streams[source_id]
        faults = self._faults(state, view)
        return self.apply_faults(source_id, tick, faults)

    def apply_faults(
        self, source_id: str, tick: int, faults: list[str]
    ) -> str | None:
        """Walk the escalation ladder for an externally scored battery.

        :meth:`check` computes the battery from a per-stream health view
        and delegates here; the vectorized bank engine computes the same
        battery for a whole shard in a few array reductions and feeds the
        per-row fault lists straight in.  Semantics (hysteresis, grace,
        rung order, telemetry) are identical either way.
        """
        self.register(source_id)
        state = self._streams[source_id]

        if not faults:
            state.healthy_streak += 1
            if (
                state.status != HEALTHY
                and state.healthy_streak >= self._policy.hysteresis_ticks
            ):
                was_quarantined = state.status == QUARANTINED
                state.status = HEALTHY
                state.faults_seen = []
                if self._tel.enabled:
                    if was_quarantined:
                        self._tel.emit(
                            "quarantine.exit", source_id=source_id
                        )
                        self._tel.count("quarantine_exits_total", source_id)
                    else:
                        self._tel.emit(
                            "watchdog.recovered",
                            source_id=source_id,
                        )
            return None

        state.healthy_streak = 0
        state.faults_seen = faults
        if (
            state.last_action_tick is not None
            and tick - state.last_action_tick
            < self._policy.escalation_grace_ticks
        ):
            return None
        if state.status == QUARANTINED:
            # Already at the top rung: nothing further to escalate to.
            state.last_action_tick = tick
            return None

        next_rung = _LADDER[_LADDER.index(state.status) + 1]
        state.status = next_rung
        state.last_action_tick = tick
        state.trips += 1
        action = _ACTIONS[next_rung]
        if self._tel.enabled:
            self._tel.emit(
                "watchdog.trip",
                source_id=source_id,
                faults=list(faults),
                action=action,
                rung=next_rung,
            )
            self._tel.count("watchdog_trips_total", source_id)
            if next_rung == QUARANTINED:
                self._tel.emit(
                    "quarantine.enter",
                    source_id=source_id,
                    faults=list(faults),
                )
                self._tel.count("quarantines_total", source_id)
        return action

    def report(self) -> dict[str, dict[str, object]]:
        """Per-stream ladder summary (status, trips, live faults)."""
        return {
            source_id: {
                "status": state.status,
                "trips": state.trips,
                "healthy_streak": state.healthy_streak,
                "faults": list(state.faults_seen),
            }
            for source_id, state in self._streams.items()
        }
