"""Top-level resilience configuration handed to the engine.

One frozen object selects which of the three guards run and how the
checkpoint cadence works.  Every field defaults to "off": a
``ResilienceConfig()`` with no arguments enables nothing, and an engine
built without one runs the exact pre-resilience delivery path (seeded
byte-identity is a tested invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.resilience.supervisor import OverloadPolicy, RestartPolicy
from repro.resilience.watchdog import WatchdogPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Which resilience guards to run, and their policies.

    Attributes:
        checkpoint_dir: Directory for the checkpoint + WAL pair; None
            disables durability entirely.
        checkpoint_every: Write a snapshot every N ticks (0 disables;
            requires ``checkpoint_dir``).
        watchdog: Divergence watchdog policy, or None to disable.
        restart: Crash-loop restart policy, or None to restart sources
            immediately as the fault schedule dictates.
        overload: Bounded-inbox and δ-widening policy, or None for an
            unbounded synchronous inbox.
    """

    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    watchdog: WatchdogPolicy | None = None
    restart: RestartPolicy | None = None
    overload: OverloadPolicy | None = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad combos."""
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be non-negative")
        if self.checkpoint_every and self.checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir"
            )
        if self.watchdog is not None:
            self.watchdog.validate()
        if self.restart is not None:
            self.restart.validate()
        if self.overload is not None:
            self.overload.validate()
