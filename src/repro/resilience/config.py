"""Top-level resilience configuration handed to the engine.

One frozen object selects which of the three guards run and how the
checkpoint cadence works.  Every field defaults to "off": a
``ResilienceConfig()`` with no arguments enables nothing, and an engine
built without one runs the exact pre-resilience delivery path (seeded
byte-identity is a tested invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.resilience.supervisor import OverloadPolicy, RestartPolicy
from repro.resilience.watchdog import WatchdogPolicy

__all__ = ["ResilienceConfig", "FailoverPolicy"]


@dataclass(frozen=True)
class FailoverPolicy:
    """When a federation peer's death re-homes its sources.

    A peer is *suspect* after ``suspect_after_ticks`` of heartbeat
    silence and *dead* after ``confirm_ticks`` more -- the extra
    confirmation window keeps one delayed heartbeat from triggering a
    spurious mass re-home.  Actual re-homes are additionally paced by a
    :class:`~repro.resilience.supervisor.StreamSupervisor` running
    ``restart`` (windowed budget plus exponential backoff), so a
    flapping peer cannot thrash its sources between homes.

    Attributes:
        suspect_after_ticks: Heartbeat silence before a peer is suspect.
        confirm_ticks: Further silence before the peer is declared dead
            and its sources become eligible for re-homing.
        restart: Budget/backoff pacing for per-source re-homes; None
            applies the supervisor's defaults.
    """

    suspect_after_ticks: int = 12
    confirm_ticks: int = 4
    restart: RestartPolicy | None = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad values."""
        if self.suspect_after_ticks < 1:
            raise ConfigurationError(
                "suspect_after_ticks must be at least 1"
            )
        if self.confirm_ticks < 0:
            raise ConfigurationError("confirm_ticks must be non-negative")
        if self.restart is not None:
            self.restart.validate()

    @property
    def dead_after_ticks(self) -> int:
        """Total silence after which a peer is declared dead."""
        return self.suspect_after_ticks + self.confirm_ticks


@dataclass(frozen=True)
class ResilienceConfig:
    """Which resilience guards to run, and their policies.

    Attributes:
        checkpoint_dir: Directory for the checkpoint + WAL pair; None
            disables durability entirely.
        checkpoint_every: Write a snapshot every N ticks (0 disables;
            requires ``checkpoint_dir``).
        watchdog: Divergence watchdog policy, or None to disable.
        restart: Crash-loop restart policy, or None to restart sources
            immediately as the fault schedule dictates.
        overload: Bounded-inbox and δ-widening policy, or None for an
            unbounded synchronous inbox.
    """

    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    watchdog: WatchdogPolicy | None = None
    restart: RestartPolicy | None = None
    overload: OverloadPolicy | None = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad combos."""
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be non-negative")
        if self.checkpoint_every and self.checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir"
            )
        if self.watchdog is not None:
            self.watchdog.validate()
        if self.restart is not None:
            self.restart.validate()
        if self.overload is not None:
            self.overload.validate()
