"""Crash recovery, divergence detection and overload shedding.

The adaptive-δ protocol keeps the *steady state* cheap; this package
keeps the system *alive* when the steady state breaks: a durable
checkpoint + WAL pair for the server filter bank
(:mod:`repro.resilience.checkpoint`), a per-stream divergence watchdog
with an escalation ladder (:mod:`repro.resilience.watchdog`), and a
supervisor that meters crash-loop restarts and sheds load by widening
δ under inbox pressure (:mod:`repro.resilience.supervisor`).  All three
are opt-in via :class:`repro.resilience.config.ResilienceConfig`.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    validate_checkpoint,
)
from repro.resilience.config import ResilienceConfig
from repro.resilience.supervisor import (
    BoundedInbox,
    OverloadController,
    OverloadPolicy,
    RestartPolicy,
    StreamSupervisor,
)
from repro.resilience.watchdog import (
    HEALTHY,
    QUARANTINED,
    REPRIMED,
    RESYNCING,
    DivergenceWatchdog,
    WatchdogPolicy,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "validate_checkpoint",
    "ResilienceConfig",
    "BoundedInbox",
    "OverloadController",
    "OverloadPolicy",
    "RestartPolicy",
    "StreamSupervisor",
    "DivergenceWatchdog",
    "WatchdogPolicy",
    "HEALTHY",
    "RESYNCING",
    "REPRIMED",
    "QUARANTINED",
]
