"""Stream supervision: crash-loop budgets and overload shedding.

Two independent guards live here.

:class:`StreamSupervisor` meters *restarts*.  A source that crashes and
restarts in a tight loop burns priming traffic (every restart costs a
resync snapshot) without ever delivering useful readings.  The
supervisor grants each restart only when (a) the per-window restart
budget has room and (b) the exponential backoff since the previous
restart has elapsed; denied restarts stay pending and are retried every
tick, so a stream is delayed -- never abandoned.

:class:`OverloadController` meters *inbound pressure*.  The server
drains its inbox at a bounded rate; when a burst (storm, post-outage
retransmit flood) backs the inbox up past the high watermark, the
controller widens the effective δ of the lowest-priority streams first
-- the knob the paper itself offers: a wider tolerance means fewer
transmissions, with a *known* bound on the extra answer error.  Every
widened tick is charged to an exact shed-error account
(``(scale - 1) · δ_base`` per stream per tick), so the report states
precisely how much precision was traded for survival.  When pressure
falls below the low watermark the widenings unwind LIFO -- the least
important stream widened first is restored last.

:class:`BoundedInbox` is the pressure sensor itself: a FIFO with a hard
capacity that tail-drops (and counts) what it cannot hold.  Dropping
*after* the fabric counted delivery keeps the traffic conservation law
intact -- a shed message was delivered and then discarded by an
overloaded server, which is exactly what happens on real hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = [
    "RestartPolicy",
    "StreamSupervisor",
    "OverloadPolicy",
    "OverloadController",
    "BoundedInbox",
]


@dataclass(frozen=True)
class RestartPolicy:
    """Budget and pacing for source restarts.

    Attributes:
        max_restarts: Restarts allowed inside any sliding window.
        window_ticks: Width of the sliding budget window.
        base_backoff_ticks: Backoff after the first restart in a window.
        backoff_factor: Growth factor per additional recent restart.
        max_backoff_ticks: Backoff ceiling.
    """

    max_restarts: int = 5
    window_ticks: int = 200
    base_backoff_ticks: int = 4
    backoff_factor: float = 2.0
    max_backoff_ticks: int = 64

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad values."""
        if self.max_restarts < 1:
            raise ConfigurationError("restart budget must allow at least 1")
        if self.window_ticks < 1:
            raise ConfigurationError("restart window must be at least 1 tick")
        if self.base_backoff_ticks < 0 or self.max_backoff_ticks < 0:
            raise ConfigurationError("backoff ticks must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff factor must be at least 1")


@dataclass
class _RestartState:
    recent: deque = field(default_factory=deque)
    next_allowed_tick: int = 0
    denied: int = 0
    granted: int = 0


class StreamSupervisor:
    """Grant or defer source restarts under a budget with backoff."""

    def __init__(
        self, policy: RestartPolicy | None = None, telemetry=None
    ) -> None:
        self._policy = policy or RestartPolicy()
        self._policy.validate()
        self._tel = telemetry or NULL_TELEMETRY
        self._streams: dict[str, _RestartState] = {}

    @property
    def policy(self) -> RestartPolicy:
        """The installed policy."""
        return self._policy

    def _state(self, source_id: str) -> _RestartState:
        return self._streams.setdefault(source_id, _RestartState())

    def request_restart(self, source_id: str, tick: int) -> bool:
        """Ask to restart ``source_id`` now; True when granted.

        A denial is not final -- the engine keeps the source down and
        asks again next tick.  Denials are paced by exponential backoff
        (per consecutive recent restart) and capped by the sliding
        window budget.
        """
        policy = self._policy
        state = self._state(source_id)
        while state.recent and tick - state.recent[0] >= policy.window_ticks:
            state.recent.popleft()
        if tick < state.next_allowed_tick:
            reason = "backoff"
        elif len(state.recent) >= policy.max_restarts:
            reason = "budget"
        else:
            state.granted += 1
            backoff = min(
                policy.base_backoff_ticks
                * policy.backoff_factor ** len(state.recent),
                float(policy.max_backoff_ticks),
            )
            state.recent.append(tick)
            state.next_allowed_tick = tick + int(backoff)
            if self._tel.enabled:
                self._tel.emit(
                    "supervisor.restart_allowed",
                    source_id=source_id,
                    recent=len(state.recent),
                    next_backoff_ticks=int(backoff),
                )
                self._tel.count("supervisor_restarts_total", source_id)
            return True
        state.denied += 1
        if self._tel.enabled:
            self._tel.emit(
                "supervisor.restart_deferred",
                source_id=source_id,
                reason=reason,
            )
            self._tel.count("supervisor_deferrals_total", source_id)
        return False

    def report(self) -> dict[str, dict[str, int]]:
        """Per-stream grant/denial counters."""
        return {
            source_id: {
                "granted": state.granted,
                "denied": state.denied,
                "recent": len(state.recent),
            }
            for source_id, state in self._streams.items()
        }


@dataclass(frozen=True)
class OverloadPolicy:
    """Inbox bounds and δ-widening schedule for load shedding.

    Attributes:
        inbox_capacity: Hard message cap; beyond it the inbox tail-drops.
        drain_per_tick: Messages the server processes per tick.
        high_watermark: Inbox fill fraction that triggers widening.
        low_watermark: Fill fraction below which widenings unwind.
        widen_factor: Multiplier applied to a stream's δ scale per
            widening step.
        max_widen: Ceiling on any stream's δ scale.
        cooldown_ticks: Minimum ticks between shedding adjustments.
    """

    inbox_capacity: int = 256
    drain_per_tick: int = 64
    high_watermark: float = 0.5
    low_watermark: float = 0.1
    widen_factor: float = 2.0
    max_widen: float = 8.0
    cooldown_ticks: int = 16

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad values."""
        if self.inbox_capacity < 1 or self.drain_per_tick < 1:
            raise ConfigurationError(
                "inbox capacity and drain rate must be at least 1"
            )
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigurationError(
                "watermarks must satisfy 0 < low < high <= 1"
            )
        if self.widen_factor <= 1.0:
            raise ConfigurationError("widen factor must exceed 1")
        if self.max_widen < self.widen_factor:
            raise ConfigurationError("max widen must cover one widening step")
        if self.cooldown_ticks < 1:
            raise ConfigurationError("cooldown must be at least 1 tick")


class BoundedInbox:
    """FIFO message buffer with a hard capacity and drop accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("inbox capacity must be at least 1")
        self._capacity = capacity
        self._queue: deque = deque()
        self._dropped = 0
        self._accepted = 0

    @property
    def capacity(self) -> int:
        """Hard message cap."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Messages currently queued."""
        return len(self._queue)

    @property
    def dropped(self) -> int:
        """Messages tail-dropped over capacity so far."""
        return self._dropped

    @property
    def accepted(self) -> int:
        """Messages accepted so far."""
        return self._accepted

    def offer(self, message) -> bool:
        """Enqueue a message; False when it was dropped at capacity."""
        if len(self._queue) >= self._capacity:
            self._dropped += 1
            return False
        self._queue.append(message)
        self._accepted += 1
        return True

    def drain(self, limit: int) -> list:
        """Dequeue up to ``limit`` messages in arrival order."""
        out = []
        while self._queue and len(out) < limit:
            out.append(self._queue.popleft())
        return out

    def clear(self) -> int:
        """Discard everything queued (server crash); returns the count."""
        count = len(self._queue)
        self._queue.clear()
        return count


@dataclass
class _ShedState:
    priority: int
    base_min_delta: float
    scale: float = 1.0
    shed_error: float = 0.0
    widened_ticks: int = 0
    widen_steps: int = 0
    restore_steps: int = 0
    dropped_updates: int = 0


class OverloadController:
    """Adaptive δ widening driven by inbox pressure.

    Args:
        policy: Watermarks and widening schedule.
        telemetry: Observability handle.

    The engine registers each stream with its priority (higher = more
    important) and base δ, feeds :meth:`step` the inbox depth once per
    tick, and applies the returned ``{source_id: scale}`` adjustments to
    the sources.  The controller keeps the exact shed-error account.
    """

    def __init__(
        self, policy: OverloadPolicy | None = None, telemetry=None
    ) -> None:
        self._policy = policy or OverloadPolicy()
        self._policy.validate()
        self._tel = telemetry or NULL_TELEMETRY
        self._streams: dict[str, _ShedState] = {}
        self._widen_stack: list[str] = []
        self._last_change_tick: int | None = None

    @property
    def policy(self) -> OverloadPolicy:
        """The installed policy."""
        return self._policy

    def register(
        self, source_id: str, priority: int, base_min_delta: float
    ) -> None:
        """Track a stream (re-registering updates priority and base δ)."""
        existing = self._streams.get(source_id)
        if existing is not None:
            existing.priority = priority
            existing.base_min_delta = base_min_delta
            return
        self._streams[source_id] = _ShedState(
            priority=priority, base_min_delta=base_min_delta
        )

    def deregister(self, source_id: str) -> None:
        """Forget a stream whose queries ended."""
        self._streams.pop(source_id, None)
        self._widen_stack = [s for s in self._widen_stack if s != source_id]

    def scale(self, source_id: str) -> float:
        """Current δ scale for a stream (1.0 when untracked)."""
        state = self._streams.get(source_id)
        return 1.0 if state is None else state.scale

    def _widen_candidate(self) -> str | None:
        """Least-widened stream with headroom, lowest priority first.

        Widening spreads breadth-first across the whole fleet (lowest
        current scale first): doubling a fresh stream's δ costs ``δ``
        per tick and sheds about half that stream's traffic, while
        re-doubling an already widened one charges twice as much for
        half the shed.  Priority orders streams *within* a scale band
        -- the low-priority streams take each round of pain first --
        but never forces a band to max widening while fresh streams
        idle.  Remaining ties break on the stream id, never on
        registration order, so the widen sequence -- and therefore the
        LIFO restore sequence -- is identical across runs that register
        the same streams in any order.
        """
        candidates = [
            (state.scale, state.priority, source_id)
            for source_id, state in self._streams.items()
            if state.scale < self._policy.max_widen
        ]
        if not candidates:
            return None
        return min(candidates)[2]

    def _widen_one(self, tick: int, pressure: float, planned: bool):
        """Widen the best candidate one step; returns (id, scale) or None."""
        source_id = self._widen_candidate()
        if source_id is None:
            return None
        state = self._streams[source_id]
        state.scale = min(
            state.scale * self._policy.widen_factor, self._policy.max_widen
        )
        state.widen_steps += 1
        if source_id not in self._widen_stack:
            self._widen_stack.append(source_id)
        self._last_change_tick = tick
        if self._tel.enabled:
            self._tel.emit(
                "shed.widen",
                source_id=source_id,
                scale=state.scale,
                pressure=round(pressure, 4),
                planned=planned,
            )
            self._tel.count("shed_widenings_total", source_id)
        return source_id, state.scale

    def _restore_one(self, tick: int, pressure: float, planned: bool):
        """Unwind the newest widening one step; returns (id, scale) or None.

        LIFO over the widen stack: the stream widened most recently is
        the first restored, and because widening order is deterministic
        (priority, then stream id), so is the restore order.
        """
        if not self._widen_stack:
            return None
        source_id = self._widen_stack[-1]
        state = self._streams[source_id]
        state.scale = max(1.0, state.scale / self._policy.widen_factor)
        state.restore_steps += 1
        if state.scale <= 1.0 + 1e-12:
            state.scale = 1.0
            self._widen_stack.pop()
        self._last_change_tick = tick
        if self._tel.enabled:
            self._tel.emit(
                "shed.restore",
                source_id=source_id,
                scale=state.scale,
                pressure=round(pressure, 4),
                planned=planned,
            )
            self._tel.count("shed_restores_total", source_id)
        return source_id, state.scale

    def charge_drop(self, source_id: str) -> None:
        """Charge one tail-dropped update to the shed account.

        Widening is *planned* shedding: the server coasts inside a
        known ``scale·δ`` envelope and the per-tick charge is exact.  A
        tail-drop is *unplanned* shedding -- the source only sent the
        update because its reading escaped that envelope, and until gap
        detection and retransmission repair the loss the server serves
        answers with **no** valid precision bound at all.  That is
        strictly worse than the worst degradation this controller would
        ever plan, so each drop is charged at the planned worst case,
        ``max_widen · δ_base``.  Keeping both kinds of shedding in one
        ledger is what makes "total δ-shed error" comparable across
        control strategies: a controller that never widens but lets the
        inbox drop is not error-free, it is unaudited.
        """
        state = self._streams.get(source_id)
        if state is None:
            return
        state.dropped_updates += 1
        state.shed_error += self._policy.max_widen * state.base_min_delta

    def _charge(self) -> None:
        """Charge every widened stream one tick of exact shed error."""
        for source_id, state in self._streams.items():
            if state.scale > 1.0:
                state.shed_error += (state.scale - 1.0) * state.base_min_delta
                state.widened_ticks += 1
                if self._tel.enabled:
                    self._tel.gauge(
                        "shed_delta_scale", state.scale, source_id
                    )
                    # Cumulative shed error as a gauge: the health
                    # watcher tracks its level, so a shedding episode
                    # registers as a ramp against a flat prediction.
                    self._tel.gauge(
                        "shed_error", state.shed_error, source_id
                    )

    def step(self, tick: int, depth: int) -> dict[str, float]:
        """Run one pressure evaluation; returns δ-scale changes to apply.

        Widens one stream per call at the high watermark, restores one at
        the low watermark (LIFO), both paced by the cooldown.  Also
        charges every currently-widened stream one tick of shed error.
        """
        policy = self._policy
        changes: dict[str, float] = {}
        pressure = depth / policy.inbox_capacity
        cooled = (
            self._last_change_tick is None
            or tick - self._last_change_tick >= policy.cooldown_ticks
        )
        if pressure >= policy.high_watermark and cooled:
            changed = self._widen_one(tick, pressure, planned=False)
            if changed is not None:
                changes[changed[0]] = changed[1]
        elif pressure <= policy.low_watermark and cooled and self._widen_stack:
            changed = self._restore_one(tick, pressure, planned=False)
            if changed is not None:
                changes[changed[0]] = changed[1]
        self._charge()
        return changes

    def plan_widen(self, tick: int, steps: int) -> dict[str, float]:
        """Apply up to ``steps`` planner-ordered widening steps *now*.

        The autoscaler's handoff: planned widening is not gated by the
        reactive cooldown (the planner paces itself by control
        interval), but it stamps the cooldown clock so the reactive
        loop does not immediately pile a second adjustment on top.
        Accounting is identical to reactive widening -- same stack,
        same shed-error charge, same events (flagged ``planned``).
        """
        changes: dict[str, float] = {}
        for _ in range(max(0, steps)):
            changed = self._widen_one(tick, 0.0, planned=True)
            if changed is None:
                break
            changes[changed[0]] = changed[1]
        return changes

    def plan_restore(self, tick: int, steps: int) -> dict[str, float]:
        """Apply up to ``steps`` planner-ordered LIFO restore steps now."""
        changes: dict[str, float] = {}
        for _ in range(max(0, steps)):
            changed = self._restore_one(tick, 0.0, planned=True)
            if changed is None:
                break
            changes[changed[0]] = changed[1]
        return changes

    def ledger(self) -> dict[str, object]:
        """Conservation view of the shed account.

        ``balanced`` is True exactly when every widening step has been
        matched by a restore step and no stream is left widened -- the
        surge-drill invariant (shed == restored after the surge).
        """
        widen_steps = sum(s.widen_steps for s in self._streams.values())
        restore_steps = sum(s.restore_steps for s in self._streams.values())
        outstanding = sum(
            1 for s in self._streams.values() if s.scale > 1.0
        )
        return {
            "widen_steps": widen_steps,
            "restore_steps": restore_steps,
            "outstanding": outstanding,
            "stack": list(self._widen_stack),
            "dropped_updates": sum(
                s.dropped_updates for s in self._streams.values()
            ),
            "shed_error_total": sum(
                s.shed_error for s in self._streams.values()
            ),
            "balanced": widen_steps == restore_steps and outstanding == 0,
        }

    def report(self) -> dict[str, dict[str, float]]:
        """Per-stream shedding account (scale, ticks widened, error)."""
        return {
            source_id: {
                "scale": state.scale,
                "widened_ticks": state.widened_ticks,
                "shed_error": state.shed_error,
                "dropped_updates": state.dropped_updates,
                "priority": state.priority,
            }
            for source_id, state in self._streams.items()
        }
