"""Durable server state: CRC-framed snapshots plus a write-ahead log.

The recovery story is the classic two-file design.  A *checkpoint* is an
atomic snapshot of the full server filter bank -- every source's
``(x, P, k)``, protocol counters and sequence expectations -- written as
one CRC-32-framed JSON blob and renamed into place so a crash can never
leave a half-written snapshot behind.  Between checkpoints, every update
or resync the server *applies* is appended to a JSONL write-ahead log
(WAL); recovery restores the snapshot and replays the tail.  Because the
filter arithmetic is deterministic, snapshot + replay reconstructs the
exact pre-crash estimates -- the same lock-step argument the DKF mirror
relies on, applied to durability.

A torn WAL tail is *expected* (the process died mid-append): replay
stops at the first record whose CRC or JSON fails, and everything after
is treated as never-happened.  The sources' ack timeouts recover the
difference, exactly as they recover a lossy link.  A corrupt
*checkpoint*, by contrast, raises :class:`~repro.errors.CheckpointError`
-- it was renamed into place atomically, so corruption means real
external damage, not a crash artifact.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.errors import CheckpointError

__all__ = ["CheckpointStore", "CHECKPOINT_SCHEMA", "validate_checkpoint"]

#: Schema marker embedded in (and required of) every snapshot.
CHECKPOINT_SCHEMA = "repro.ckpt-v1"

#: File magic for the framed checkpoint blob.
_MAGIC = b"RPRCKPT1"

_REQUIRED_TOP = ("schema", "tick", "server_clock", "sources")
_REQUIRED_SOURCE = (
    "expected_seq",
    "k",
    "last_contact",
    "desynced",
    "answer",
    "filter",
)


def validate_checkpoint(snapshot: dict) -> None:
    """Reject structurally broken snapshots before they touch disk or a
    live server.

    Raises:
        CheckpointError: On a wrong schema marker, missing keys, or
            malformed per-source entries.
    """
    if not isinstance(snapshot, dict):
        raise CheckpointError("checkpoint must be a JSON object")
    for key in _REQUIRED_TOP:
        if key not in snapshot:
            raise CheckpointError(f"checkpoint missing required key {key!r}")
    if snapshot["schema"] != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unknown checkpoint schema {snapshot['schema']!r}; "
            f"expected {CHECKPOINT_SCHEMA!r}"
        )
    if not isinstance(snapshot["tick"], int) or snapshot["tick"] < 0:
        raise CheckpointError("checkpoint tick must be a non-negative int")
    if not isinstance(snapshot["server_clock"], int):
        raise CheckpointError("checkpoint server_clock must be an int")
    sources = snapshot["sources"]
    if not isinstance(sources, dict):
        raise CheckpointError("checkpoint sources must be an object")
    for source_id, state in sources.items():
        if not isinstance(state, dict):
            raise CheckpointError(
                f"checkpoint source {source_id!r} must be an object"
            )
        for key in _REQUIRED_SOURCE:
            if key not in state:
                raise CheckpointError(
                    f"checkpoint source {source_id!r} missing key {key!r}"
                )
        flt = state["filter"]
        if flt is not None and not all(k in flt for k in ("x", "p", "k")):
            raise CheckpointError(
                f"checkpoint source {source_id!r} filter needs x, p, k"
            )


def _canonical(record: dict) -> str:
    """Canonical JSON used for per-record CRC computation."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """One directory holding the current checkpoint and its WAL.

    Args:
        directory: Where ``checkpoint.ckpt`` and ``wal.jsonl`` live;
            created on first use.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._wal_handle = None

    @property
    def checkpoint_path(self) -> Path:
        """Path of the current snapshot file."""
        return self._dir / "checkpoint.ckpt"

    @property
    def wal_path(self) -> Path:
        """Path of the write-ahead log."""
        return self._dir / "wal.jsonl"

    # Snapshot ------------------------------------------------------------

    def save(self, snapshot: dict) -> int:
        """Write a snapshot atomically; truncate the WAL it supersedes.

        The payload is validated, framed as ``magic + length + JSON +
        CRC-32``, written to a temporary file, fsynced, and renamed over
        the previous checkpoint -- readers see either the old snapshot or
        the new one, never a blend.  Returns the framed size in bytes.
        """
        validate_checkpoint(snapshot)
        payload = _canonical(snapshot).encode("utf-8")
        frame = (
            _MAGIC
            + len(payload).to_bytes(8, "big")
            + payload
            + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        )
        tmp = self._dir / "checkpoint.ckpt.tmp"
        with open(tmp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)
        # Everything the WAL recorded is now inside the snapshot.
        self.wal_truncate()
        return len(frame)

    def load(self) -> dict | None:
        """Read and verify the current snapshot.

        Returns None when no checkpoint has ever been written.

        Raises:
            CheckpointError: When the file exists but its magic, length,
                CRC or schema is wrong.
        """
        try:
            blob = self.checkpoint_path.read_bytes()
        except FileNotFoundError:
            return None
        if len(blob) < len(_MAGIC) + 12 or not blob.startswith(_MAGIC):
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} is not a framed snapshot"
            )
        offset = len(_MAGIC)
        length = int.from_bytes(blob[offset : offset + 8], "big")
        offset += 8
        payload = blob[offset : offset + length]
        trailer = blob[offset + length : offset + length + 4]
        if len(payload) != length or len(trailer) != 4:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} is truncated"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != int.from_bytes(trailer, "big"):
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} failed its CRC check"
            )
        try:
            snapshot = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} holds invalid JSON: {exc}"
            ) from None
        validate_checkpoint(snapshot)
        return snapshot

    # Write-ahead log -----------------------------------------------------

    def wal_append(self, record: dict) -> None:
        """Append one applied-message record, flushed to the OS per line.

        Each line carries a ``crc`` field over the canonical JSON of the
        rest of the record, so replay can tell a torn tail from a clean
        one.
        """
        body = dict(record)
        body.pop("crc", None)
        body["crc"] = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
        if self._wal_handle is None:
            self._wal_handle = open(self.wal_path, "a", encoding="utf-8")
        self._wal_handle.write(_canonical(body) + "\n")
        self._wal_handle.flush()

    def wal_records(self) -> list[dict]:
        """Every intact WAL record, in append order.

        Reading stops at the first line that fails to parse or whose CRC
        mismatches: a torn tail is the normal shape of a crash, and every
        record after the tear is untrustworthy.
        """
        try:
            lines = self.wal_path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []
        records: list[dict] = []
        for line in lines:
            if not line.strip():
                break
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(record, dict) or "crc" not in record:
                break
            claimed = record.pop("crc")
            actual = zlib.crc32(_canonical(record).encode("utf-8")) & 0xFFFFFFFF
            if claimed != actual:
                break
            records.append(record)
        return records

    def wal_truncate(self) -> None:
        """Discard the WAL (its contents are covered by a snapshot)."""
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        with open(self.wal_path, "w", encoding="utf-8"):
            pass

    def close(self) -> None:
        """Release the WAL file handle (tests and engine teardown)."""
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
