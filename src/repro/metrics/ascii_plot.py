"""ASCII rendering of figure series (no plotting dependencies).

The reproduction environment is text-only, so the experiment harness
renders each figure's series as a fixed-grid ASCII chart: one mark per
scheme, x-axis the swept parameter, y-axis the metric.  This is
deliberately simple -- enough to *see* the crossovers and orderings the
paper's figures show, next to the exact numbers in the tables.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.compare import SweepTable

__all__ = ["render_series", "render_sweep_table", "sparkline"]

#: Marks assigned to successive series.
_MARKS = "ox+*#@%&"

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line character density plot of a series (dataset overviews).

    Args:
        values: 1-D series.
        width: Output width; the series is block-averaged down to it.
    """
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        return ""
    if values.size > width:
        # Block-average to the target width.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * values.size
    indices = ((values - lo) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def render_series(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Multi-series ASCII line chart.

    Args:
        series: Mapping ``name -> (x_values, y_values)``; each series gets
            the next mark character and a legend row.
        width: Plot-area character width.
        height: Plot-area character height.
        x_label: X-axis caption.
        y_label: Y-axis caption.
        log_x: Place x positions on a log scale (smoothing-factor sweeps).

    Returns:
        The rendered chart as a multi-line string.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    if len(series) > len(_MARKS):
        raise ConfigurationError(f"at most {len(_MARKS)} series supported")

    def x_transform(x: np.ndarray) -> np.ndarray:
        if not log_x:
            return x
        if np.any(x <= 0):
            raise ConfigurationError("log_x requires positive x values")
        return np.log10(x)

    all_x = np.concatenate([x_transform(np.asarray(x, float)) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), mark in zip(series.items(), _MARKS):
        xs = x_transform(np.asarray(xs, dtype=float))
        ys = np.asarray(ys, dtype=float)
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_lo_label = f"{10**x_lo:g}" if log_x else f"{x_lo:g}"
    x_hi_label = f"{10**x_hi:g}" if log_x else f"{x_hi:g}"
    axis_row = (
        " " * (margin + 1)
        + x_lo_label
        + x_label.center(width - len(x_lo_label) - len(x_hi_label))
        + x_hi_label
    )
    lines.append(axis_row)
    legend = "   ".join(
        f"{mark}={name}" for (name, _), mark in zip(series.items(), _MARKS)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)


def render_sweep_table(
    table: SweepTable,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
) -> str:
    """Render a :class:`SweepTable` as an ASCII chart (one mark/scheme)."""
    xs = np.array(table.values, dtype=float)
    series = {
        scheme: (xs, np.array(table.column(scheme)))
        for scheme in table.columns
    }
    y_label = {"update_percentage": "%upd", "average_error": "err"}.get(
        table.metric, table.metric[:6]
    )
    return render_series(
        series,
        width=width,
        height=height,
        x_label=table.parameter,
        y_label=y_label,
        log_x=log_x,
    )


def _self_check() -> str:  # pragma: no cover - manual aid
    xs = np.linspace(1, 10, 10)
    return render_series(
        {"a": (xs, xs**1.5), "b": (xs, 30 - xs)},
        x_label="delta",
        y_label="y",
    )


if __name__ == "__main__":  # pragma: no cover
    print(_self_check())
    print(sparkline(np.sin(np.linspace(0, 4 * math.pi, 200))))
