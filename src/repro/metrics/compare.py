"""Tabular comparison of schemes across sweep parameters.

The experiment harness sweeps a parameter (precision width δ, smoothing
factor F) over a set of schemes and renders the same rows the paper's
figures plot.  :class:`SweepTable` holds the grid;
:func:`format_table` renders it as fixed-width text for benches and
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.evaluation import EvaluationResult

__all__ = ["SweepTable", "format_table", "format_results"]


@dataclass
class SweepTable:
    """Results grid: one row per sweep value, one column per scheme.

    Attributes:
        parameter: Name of the swept parameter (e.g. ``"delta"``).
        values: The sweep values, in row order.
        metric: Which :class:`EvaluationResult` attribute the cells hold.
        columns: Scheme names, in column order.
        cells: ``cells[row][column]`` metric values.
        results: The full result objects, same layout.
    """

    parameter: str
    values: list[float]
    metric: str
    columns: list[str] = field(default_factory=list)
    cells: list[list[float]] = field(default_factory=list)
    results: list[list[EvaluationResult]] = field(default_factory=list)

    def add_row(self, value: float, row_results: list[EvaluationResult]) -> None:
        """Append one sweep point's results (column order must be stable)."""
        names = [r.scheme for r in row_results]
        if not self.columns:
            self.columns = names
        elif names != self.columns:
            raise ValueError(
                f"column mismatch: expected {self.columns}, got {names}"
            )
        self.values.append(value)
        self.results.append(row_results)
        self.cells.append([getattr(r, self.metric) for r in row_results])

    def column(self, scheme: str) -> list[float]:
        """One scheme's metric series across the sweep."""
        idx = self.columns.index(scheme)
        return [row[idx] for row in self.cells]

    def row(self, value: float) -> dict[str, float]:
        """One sweep point's metric per scheme."""
        idx = self.values.index(value)
        return dict(zip(self.columns, self.cells[idx]))


def format_table(table: SweepTable, precision: int = 2) -> str:
    """Fixed-width text rendering of a sweep table (figure data as rows)."""
    header = [table.parameter] + table.columns
    rows = [
        [f"{v:g}"] + [f"{c:.{precision}f}" for c in cells]
        for v, cells in zip(table.values, table.cells)
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.rjust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


def format_results(results: list[EvaluationResult], precision: int = 2) -> str:
    """Fixed-width text rendering of a flat result list."""
    header = ["scheme", "stream", "updates", "update%", "avg_err", "max_err"]
    rows = [
        [
            r.scheme,
            r.stream,
            str(r.updates),
            f"{r.update_percentage:.{precision}f}",
            f"{r.average_error:.{precision}f}",
            f"{r.max_error:.{precision}f}",
        ]
        for r in results
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)
