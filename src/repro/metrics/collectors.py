"""Per-step trace collection for schemes under evaluation.

Where :mod:`repro.metrics.evaluation` reduces a run to two numbers, the
collectors keep the whole story: every decision, error, and update instant.
The experiment modules use them to emit figure *series* (e.g. which
sampling instants transmitted), and the tests use them to check structural
claims (updates cluster at manoeuvres, errors never exceed δ, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import MaterializedStream

__all__ = ["RunTrace", "collect_trace"]


@dataclass
class RunTrace:
    """Complete per-step record of one scheme run.

    Attributes:
        scheme: Scheme display name.
        stream: Stream name.
        decisions: The raw per-record decisions.
    """

    scheme: str
    stream: str
    decisions: list[SchemeDecision] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.decisions)

    @property
    def update_instants(self) -> np.ndarray:
        """Sample indices ``k`` at which updates were transmitted."""
        return np.array([d.k for d in self.decisions if d.sent], dtype=int)

    @property
    def sent_mask(self) -> np.ndarray:
        """Boolean mask over steps: True where an update was sent."""
        return np.array([d.sent for d in self.decisions], dtype=bool)

    def errors(self, raw: bool = False) -> np.ndarray:
        """Per-step error series (``sum_components |source - server|``)."""
        out = np.empty(len(self.decisions))
        for i, d in enumerate(self.decisions):
            reference = d.raw_value if raw else d.source_value
            out[i] = float(np.sum(np.abs(reference - d.server_value)))
        return out

    def server_values(self) -> np.ndarray:
        """Server-side value series, shape ``(steps, dim)``."""
        return np.stack([d.server_value for d in self.decisions])

    def source_values(self) -> np.ndarray:
        """Source-side (possibly smoothed) value series."""
        return np.stack([d.source_value for d in self.decisions])

    def raw_values(self) -> np.ndarray:
        """Raw sensor reading series."""
        return np.stack([d.raw_value for d in self.decisions])

    def inter_update_gaps(self) -> np.ndarray:
        """Numbers of suppressed instants between consecutive updates.

        Long gaps are the bandwidth win; their distribution shows *when*
        the model predicts well (e.g. within linear segments of the
        moving-object trace).
        """
        instants = self.update_instants
        if len(instants) < 2:
            return np.array([], dtype=int)
        return np.diff(instants) - 1

    def summary(self) -> dict[str, float | int | str]:
        """One-row digest of the run (counts, errors, gaps).

        Each derived series (``errors``, ``inter_update_gaps``,
        ``sent_mask``) is materialized exactly once -- they re-walk the
        decision list on every call, which adds up when summarizing the
        experiment grids.
        """
        errors = self.errors()
        gaps = self.inter_update_gaps()
        sent = self.sent_mask
        return {
            "scheme": self.scheme,
            "stream": self.stream,
            "steps": len(self.decisions),
            "updates": int(sent.sum()),
            "update_percentage": 100.0 * float(sent.mean())
            if len(self.decisions)
            else 0.0,
            "average_error": float(errors.mean()) if len(errors) else 0.0,
            "max_error": float(errors.max()) if len(errors) else 0.0,
            "median_gap": float(np.median(gaps)) if len(gaps) else 0.0,
        }


def collect_trace(
    scheme: SuppressionScheme,
    stream: MaterializedStream,
    reset_first: bool = True,
) -> RunTrace:
    """Run a scheme over a stream, keeping every decision."""
    if reset_first:
        scheme.reset()
    return RunTrace(
        scheme=scheme.name,
        stream=stream.name,
        decisions=scheme.run(stream),
    )
