"""Evaluation metrics (paper Section 5): percentage of updates, average
error value, per-step traces, and sweep tables."""

from repro.metrics.ascii_plot import render_series, render_sweep_table, sparkline
from repro.metrics.collectors import RunTrace, collect_trace
from repro.metrics.compare import SweepTable, format_results, format_table
from repro.metrics.evaluation import (
    EvaluationResult,
    error_series,
    evaluate_scheme,
)

__all__ = [
    "EvaluationResult",
    "RunTrace",
    "SweepTable",
    "collect_trace",
    "error_series",
    "evaluate_scheme",
    "format_results",
    "format_table",
    "render_series",
    "render_sweep_table",
    "sparkline",
]
