"""The paper's two evaluation metrics (Section 5).

* **Percentage of updates** -- "the ratio of updates that are actually sent
  to the main server to the number of readings taken by the remote source".
* **Average error value** -- "the average error within the precision
  constraint encountered during the query": at each step the error is
  ``|v_source - v_server|``; for the 2-D moving object the paper sums the
  per-coordinate errors (``|dx| + |dy|``, Section 5.1); the average divides
  by the number of readings.

:func:`evaluate_scheme` scores any
:class:`~repro.scheme.SuppressionScheme` over a stream and returns an
:class:`EvaluationResult` carrying both metrics plus traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import MaterializedStream

__all__ = ["EvaluationResult", "evaluate_scheme", "error_series"]


@dataclass(frozen=True)
class EvaluationResult:
    """Scorecard of one scheme over one stream.

    Attributes:
        scheme: Scheme display name.
        stream: Stream name.
        readings: Number of readings taken at the source (``n``).
        updates: Number of updates transmitted to the server.
        update_fraction: ``updates / readings`` in ``[0, 1]``.
        average_error: Mean over steps of the per-step error
            ``sum_components |v_source - v_server|``.
        max_error: Largest per-step error observed.
        average_raw_error: Same as ``average_error`` but measured against
            the *raw* (unsmoothed) readings; differs only when a smoothing
            filter is in the loop.
        payload_floats: Total floats transmitted (network accounting).
    """

    scheme: str
    stream: str
    readings: int
    updates: int
    update_fraction: float
    average_error: float
    max_error: float
    average_raw_error: float
    payload_floats: int

    @property
    def update_percentage(self) -> float:
        """Percentage of updates, as plotted in Figures 4, 7, 11, 12."""
        return 100.0 * self.update_fraction

    @property
    def suppression_percentage(self) -> float:
        """Share of readings *not* transmitted -- the bandwidth saved."""
        return 100.0 * (1.0 - self.update_fraction)

    def as_dict(self) -> dict[str, float | int | str]:
        """The scorecard as a plain dict (export/serialisation)."""
        return {
            "scheme": self.scheme,
            "stream": self.stream,
            "readings": self.readings,
            "updates": self.updates,
            "update_percentage": self.update_percentage,
            "average_error": self.average_error,
            "max_error": self.max_error,
            "average_raw_error": self.average_raw_error,
            "payload_floats": self.payload_floats,
        }


def _step_error(decision: SchemeDecision, raw: bool) -> float:
    """Per-step error: sum of per-component absolute errors (Section 5.1)."""
    reference = decision.raw_value if raw else decision.source_value
    return float(np.sum(np.abs(reference - decision.server_value)))


def evaluate_scheme(
    scheme: SuppressionScheme,
    stream: MaterializedStream,
    reset_first: bool = True,
) -> EvaluationResult:
    """Score a scheme over a stream with the paper's two metrics.

    Args:
        scheme: Any suppression scheme (DKF session or baseline).
        stream: The stream to replay through the scheme.
        reset_first: Reset the scheme before scoring (default), so a
            scheme instance can be reused across sweep points.
    """
    if reset_first:
        scheme.reset()
    decisions = scheme.run(stream)
    n = len(decisions)
    updates = sum(1 for d in decisions if d.sent)
    errors = np.array([_step_error(d, raw=False) for d in decisions])
    raw_errors = np.array([_step_error(d, raw=True) for d in decisions])
    payload = sum(d.payload_floats for d in decisions)
    return EvaluationResult(
        scheme=scheme.name,
        stream=stream.name,
        readings=n,
        updates=updates,
        update_fraction=updates / n if n else 0.0,
        average_error=float(errors.mean()) if n else 0.0,
        max_error=float(errors.max()) if n else 0.0,
        average_raw_error=float(raw_errors.mean()) if n else 0.0,
        payload_floats=payload,
    )


def error_series(
    scheme: SuppressionScheme,
    stream: MaterializedStream,
    reset_first: bool = True,
) -> np.ndarray:
    """Per-step error trace of a scheme over a stream (diagnostics)."""
    if reset_first:
        scheme.reset()
    return np.array([_step_error(d, raw=False) for d in scheme.run(stream)])
