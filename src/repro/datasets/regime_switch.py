"""Regime-switching synthetic stream (extension dataset).

Exercises the paper's Section 6 item "updating the state transition
matrices online as the streaming data trend changes": the stream cycles
through regimes that each favour a different state-space model --

* **flat** -- a constant level (constant model's home turf);
* **ramp** -- a linear trend (linear model);
* **sine** -- a sinusoidal oscillation (sinusoidal model);

with jumps between regimes.  No single fixed model is right everywhere,
which is exactly the situation the model-bank DKF is built for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream, stream_from_values

__all__ = ["regime_switch_dataset", "REGIME_CYCLE", "DEFAULT_SEED"]

DEFAULT_SEED = 271828
#: Regime order within one cycle.
REGIME_CYCLE = ("flat", "ramp", "sine")


def regime_switch_dataset(
    n: int = 3000,
    segment: int = 250,
    level: float = 100.0,
    ramp_slope: float = 2.0,
    sine_amplitude: float = 40.0,
    sine_period: float = 50.0,
    noise_std: float = 0.5,
    seed: int = DEFAULT_SEED,
) -> MaterializedStream:
    """A scalar stream cycling flat -> ramp -> sine regimes.

    Args:
        n: Total samples.
        segment: Samples per regime before switching.
        level: Baseline level the regimes orbit.
        ramp_slope: Slope during ramp regimes (sign alternates per cycle).
        sine_amplitude: Amplitude during sine regimes.
        sine_period: Period (in samples) during sine regimes.
        noise_std: Additive measurement noise.
        seed: Random seed for the noise.

    Returns:
        A scalar stream named ``regime-switch``.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if segment < 2:
        raise ConfigurationError("segment must be at least 2")
    rng = np.random.default_rng(seed)
    values = np.empty(n)
    current = level
    cycle_index = 0
    i = 0
    while i < n:
        regime = REGIME_CYCLE[cycle_index % len(REGIME_CYCLE)]
        length = min(segment, n - i)
        if regime == "flat":
            chunk = np.full(length, current)
        elif regime == "ramp":
            direction = 1.0 if (cycle_index // len(REGIME_CYCLE)) % 2 == 0 else -1.0
            chunk = current + direction * ramp_slope * np.arange(length)
        else:  # sine
            k = np.arange(length)
            chunk = current + sine_amplitude * np.sin(
                2.0 * np.pi * k / sine_period
            )
        values[i : i + length] = chunk
        current = float(chunk[-1])
        i += length
        cycle_index += 1
    if noise_std > 0:
        values = values + rng.normal(0.0, noise_std, size=n)
    return stream_from_values(values, name="regime-switch")


def regime_labels(n: int = 3000, segment: int = 250) -> list[str]:
    """Per-sample regime labels matching :func:`regime_switch_dataset`."""
    labels: list[str] = []
    cycle_index = 0
    while len(labels) < n:
        regime = REGIME_CYCLE[cycle_index % len(REGIME_CYCLE)]
        labels.extend([regime] * min(segment, n - len(labels)))
        cycle_index += 1
    return labels


__all__.append("regime_labels")
