"""Example 2 dataset: average zonal electric power load (paper Section 5.2,
Figure 6).

**Substitution note.**  The paper used one month of hourly zonal load from
the New Jersey Basic Generation Services data room [22]; that source is no
longer available (and this environment is offline).  We synthesise a series
with the documented characteristics instead:

* 5831 data points (the paper's count) at an hourly cadence;
* a dominant *diurnal sinusoid* -- "the load reaches its peak value during
  the working hours and drops during the night and early morning hours";
* weekday/weekend modulation and slow seasonal drift, as real zonal load
  exhibits;
* mild measurement noise.

The substitution preserves what Figures 7-8 actually measure: a stream
whose trend is periodic, so a sinusoidal-model KF can exploit it while a
linear model cannot, with the caching scheme as the no-model baseline.

Note the paper's 5831 hourly points span ~8 months, not one month; we keep
the paper's explicit point count since that is what the experiments ran on.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import MaterializedStream, stream_from_values

__all__ = [
    "power_load_dataset",
    "DEFAULT_SEED",
    "N_POINTS",
    "DIURNAL_PERIOD_HOURS",
]

DEFAULT_SEED = 58310
#: Paper: "contains 5831 data points".
N_POINTS = 5831
#: Hourly data with a 24-hour dominant cycle.
DIURNAL_PERIOD_HOURS = 24.0


def power_load_dataset(
    n: int = N_POINTS,
    base_load: float = 1100.0,
    diurnal_amplitude: float = 350.0,
    weekly_amplitude: float = 90.0,
    seasonal_amplitude: float = 120.0,
    noise_std: float = 25.0,
    seed: int = DEFAULT_SEED,
) -> MaterializedStream:
    """The Example 2 hourly power-load stream (Figure 6 stand-in).

    Value model (hour index ``k``)::

        load_k = base
               + diurnal * sin(2 pi (k - 6) / 24)        # peak mid-working-day
               + weekly  * weekday_factor(k)             # weekend dip
               + seasonal* sin(2 pi k / (24 * 365 / 4))  # slow drift
               + noise

    Args:
        n: Number of hourly samples (paper: 5831).
        base_load: Mean zonal load (arbitrary MW-ish units).
        diurnal_amplitude: Peak-to-mean amplitude of the daily cycle.
        weekly_amplitude: Depth of the weekend dip.
        seasonal_amplitude: Amplitude of the slow seasonal component.
        noise_std: Measurement noise standard deviation.
        seed: Random seed.

    Returns:
        A scalar stream named ``power-load`` with a 3600 s sampling
        interval.
    """
    rng = np.random.default_rng(seed)
    k = np.arange(n, dtype=float)
    hours_of_day = k % 24.0
    day_index = (k // 24.0).astype(int)
    weekday = day_index % 7  # 0..6; treat 5, 6 as the weekend

    # Shift the sinusoid so its peak lands in the afternoon (~14:00) and its
    # trough in the early morning, per the paper's description.
    diurnal = diurnal_amplitude * np.sin(
        2.0 * np.pi * (hours_of_day - 8.0) / DIURNAL_PERIOD_HOURS
    )
    weekend_dip = np.where(weekday >= 5, -weekly_amplitude, 0.0)
    seasonal = seasonal_amplitude * np.sin(2.0 * np.pi * k / (24.0 * 91.0))
    noise = rng.normal(0.0, noise_std, size=n)

    values = base_load + diurnal + weekend_dip + seasonal + noise
    stream = stream_from_values(
        values, name="power-load", sampling_interval=3600.0
    )
    return stream


def dominant_period(stream: MaterializedStream) -> float:
    """Dominant period of a scalar stream in samples, via the FFT.

    Used by tests to confirm the synthetic load really is diurnal, and by
    the model-fitting example to pick ``omega`` for the sinusoidal model.
    """
    values = stream.component(0)
    centred = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centred))
    spectrum[0] = 0.0
    freqs = np.fft.rfftfreq(len(centred), d=1.0)
    peak = int(np.argmax(spectrum))
    if freqs[peak] == 0:
        return float("inf")
    return float(1.0 / freqs[peak])


__all__.append("dominant_period")
