"""Example 3 dataset: HTTP traffic counts (paper Section 5.3, Figure 9).

**Substitution note.**  The paper processed the DEC HTTP trace from the
LBL Internet Traffic Archive [31] into "the number of HTTP packets between
Digital Equipment Corporation and the rest of the world sampled at an
interval of 10 time-stamp units".  The archive is unreachable offline, so
we synthesise a series with the documented characteristics:

* non-negative packet counts per interval;
* "extremely noisy, revealing no visually-identifiable trend";
* bursty, heavy-tailed structure typical of aggregate web traffic
  (Poisson base load + random bursts + occasional spikes).

The substitution preserves what Figures 10-12 measure: a stream where raw
prediction is hopeless and the value of the smoothing filter ``KF_c``
(parameter ``F``) is what determines update traffic.
"""

from __future__ import annotations

from repro.streams.base import MaterializedStream
from repro.streams.replay import subsample
from repro.streams.synthetic import bursty_count_series

__all__ = ["http_traffic_dataset", "DEFAULT_SEED", "N_POINTS", "RAW_STRIDE"]

DEFAULT_SEED = 19950909  # The DEC trace was collected September 1995.
#: Post-sampling length used throughout the Example 3 experiments.
N_POINTS = 4000
#: Paper: counts "sampled at an interval of 10 time-stamp units".
RAW_STRIDE = 10


def http_traffic_dataset(
    n: int = N_POINTS,
    base_rate: float = 60.0,
    burst_rate: float = 320.0,
    burst_probability: float = 0.03,
    spike_probability: float = 0.008,
    seed: int = DEFAULT_SEED,
    presample_stride: int = RAW_STRIDE,
) -> MaterializedStream:
    """The Example 3 HTTP packet-count stream (Figure 9 stand-in).

    A raw trace of ``n * presample_stride`` intervals is generated and then
    subsampled by ``presample_stride``, mirroring the paper's preprocessing
    (aggregate counts sampled every 10 time-stamp units).  Subsampling a
    bursty series preserves its noisy, trendless appearance while thinning
    burst auto-correlation -- exactly the "collection of noisy measurements"
    of Figure 9.

    Args:
        n: Number of post-sampling records.
        base_rate: Poisson packet rate outside bursts.
        burst_rate: Poisson packet rate during bursts.
        burst_probability: Per-interval probability of starting a burst.
        spike_probability: Per-interval probability of a large spike.
        seed: Random seed.
        presample_stride: Subsampling stride (paper: 10).

    Returns:
        A scalar count stream named ``http-traffic``.
    """
    raw = bursty_count_series(
        n=n * presample_stride,
        base_rate=base_rate,
        burst_rate=burst_rate,
        burst_probability=burst_probability,
        burst_min=4,
        burst_max=40,
        spike_probability=spike_probability,
        spike_scale=4.0,
        sampling_interval=1.0,
        seed=seed,
    )
    sampled = subsample(raw, presample_stride)
    return MaterializedStream(
        list(sampled), name="http-traffic", sampling_interval=float(presample_stride)
    )


def coefficient_of_variation(stream: MaterializedStream) -> float:
    """Std/mean of a scalar stream -- a one-number 'noisiness' summary.

    Tests assert this is high for the HTTP stand-in (no clean trend) and
    low for the power-load series, confirming the two datasets occupy the
    regimes the paper assigns them.
    """
    values = stream.component(0)
    mean = float(values.mean())
    if mean == 0:
        return float("inf")
    return float(values.std() / abs(mean))


__all__.append("coefficient_of_variation")
