"""Example 1 dataset: simulated moving-object trajectory (paper Section 5.1,
Figure 3).

The paper's generator, reproduced faithfully: the object moves in 2-D along
straight line segments; at random times it picks a new heading (arbitrary
slope) and a new speed (uniform, capped at 500 units), then continues on
the new linear path for a random duration.  4000 samples at a 100 ms
sampling rate.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import MaterializedStream
from repro.streams.noise import add_gaussian_noise
from repro.streams.synthetic import piecewise_linear_trajectory

__all__ = ["moving_object_dataset", "DEFAULT_SEED", "N_POINTS", "SAMPLING_DT"]

#: Seed fixed so figure regeneration is reproducible run to run.
DEFAULT_SEED = 20040613  # SIGMOD 2004 opened June 13.
#: Paper: "a dataset ... containing 4000 data points".
N_POINTS = 4000
#: Paper: "at a sampling rate of 100 ms".
SAMPLING_DT = 0.1
#: Paper: "The maximum speed of the object was limited to 500 units".
MAX_SPEED = 500.0


def moving_object_dataset(
    n: int = N_POINTS,
    max_speed: float = MAX_SPEED,
    dt: float = SAMPLING_DT,
    noise_std: float = 0.0,
    seed: int = DEFAULT_SEED,
) -> MaterializedStream:
    """The Example 1 trajectory stream (Figure 3).

    Args:
        n: Number of samples (paper: 4000).
        max_speed: Speed cap in units/second (paper: 500).
        dt: Sampling interval in seconds (paper: 0.1).
        noise_std: Optional measurement noise; the paper's Example 1 data
            "does not have high noise", so the default is clean.
        seed: Random seed.

    Returns:
        A 2-D position stream named ``moving-object``.
    """
    stream = piecewise_linear_trajectory(
        n=n,
        max_speed=max_speed,
        min_segment=25,
        max_segment=250,
        dt=dt,
        seed=seed,
    )
    if noise_std > 0:
        stream = add_gaussian_noise(stream, noise_std, seed=seed + 1)
    return MaterializedStream(
        list(stream), name="moving-object", sampling_interval=dt
    )


def segment_change_points(stream: MaterializedStream, tol: float = 1e-9) -> np.ndarray:
    """Indices where the trajectory's velocity changes (manoeuvre points).

    Diagnostic helper used by tests: DKF updates should cluster around
    these indices, since between manoeuvres the linear model predicts
    perfectly.
    """
    values = stream.values()
    if len(values) < 3:
        return np.array([], dtype=int)
    velocity = np.diff(values, axis=0)
    accel = np.diff(velocity, axis=0)
    changed = np.linalg.norm(accel, axis=1) > tol
    return np.nonzero(changed)[0] + 1


__all__.append("segment_change_points")
__all__.append("MAX_SPEED")
