"""The paper's three experimental workloads (Section 4/5).

Example 1 is synthetic in the paper and regenerated from its description;
Examples 2 and 3 used real traces that are no longer available, so this
package ships synthetic stand-ins with the documented characteristics (see
each module's substitution note and DESIGN.md Section 2).
"""

from repro.datasets.http_traffic import (
    coefficient_of_variation,
    http_traffic_dataset,
)
from repro.datasets.moving_object import (
    moving_object_dataset,
    segment_change_points,
)
from repro.datasets.power_load import dominant_period, power_load_dataset
from repro.datasets.regime_switch import regime_labels, regime_switch_dataset

__all__ = [
    "coefficient_of_variation",
    "dominant_period",
    "http_traffic_dataset",
    "moving_object_dataset",
    "power_load_dataset",
    "regime_labels",
    "regime_switch_dataset",
    "segment_change_points",
]
