"""Batch stream engine: the scalar engine's API over sharded filter banks.

:class:`BatchStreamEngine` presents the same surface as
:class:`~repro.dsms.engine.StreamEngine` -- ``add_source`` /
``submit_query`` / ``step`` / ``run`` / ``answers`` / ``report`` /
``checkpoint`` / ``crash_server`` / ``recover`` / ``obs_snapshot`` -- but
runs every stream inside a :class:`~repro.scale.shard.ShardRuntime`,
where the per-stream Kalman arithmetic and protocol bookkeeping are
batched numpy operations over all rows of a shard at once.

The contract is *report equality*: a seeded run produces the same
transmissions, the same traffic ledger and the same query answers (to
float accumulation noise) as the scalar engine.  What the batch engine
deliberately does not support raises
:class:`~repro.errors.ConfigurationError` up front rather than silently
diverging:

* time-varying models (callable matrices) -- cannot batch;
* source-side smoothing (``KF_c``), mirror digests, outlier gates --
  scalar per-row features the bank does not replicate;
* latent or ack-lossy links -- the batch transport is synchronous;
* overload shedding (bounded inbox) -- there is no inbox; deliveries
  apply inside the sending step.

Loss/corruption fault schedules, crash/restart faults, checkpoints, WAL
replay, the divergence watchdog and server crash/recovery are all
supported: faulty rows drop to a per-row slow path while the healthy
rest of the shard stays vectorized.

Scaling controls on top of the scalar API:

* ``max_shard_rows`` caps shard width (placement is by model
  signature, see :func:`~repro.scale.shard.model_signature`);
* ``latency_budget_us`` arms DRS-style rebalancing -- a shard whose
  per-step latency EMA exceeds the budget is split in half;
* ``workers`` runs independent shards through a
  :class:`~repro.scale.pool.WorkerPool` during :meth:`run` (process
  parallelism; falls back to inline stepping whenever cross-shard
  state -- faults, resilience, telemetry -- must stay coherent).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autoscale.config import AutoscalePolicy
from repro.autoscale.controller import ShardAutoscaler
from repro.dkf.config import TransportPolicy
from repro.dsms.energy import EnergyModel
from repro.dsms.engine import EngineReport
from repro.dsms.faults import FaultSchedule
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery, QueryAnswer
from repro.dsms.registry import SourceRegistry
from repro.errors import ConfigurationError, UnknownSourceError
from repro.filters.models import StateSpaceModel
from repro.obs.exporters import build_snapshot
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.resilience.config import ResilienceConfig
from repro.resilience.supervisor import StreamSupervisor
from repro.resilience.watchdog import DivergenceWatchdog
from repro.scale.pool import WorkerPool
from repro.scale.shard import ShardRouter, ShardRuntime, model_signature
from repro.streams.base import MaterializedStream

__all__ = ["BatchStreamEngine"]

#: EMA smoothing for the per-shard step-latency estimate.
_EMA_ALPHA = 0.2


def _compose(first, second):
    """OR two optional loss predicates (fault layering on one link)."""
    if first is None:
        return second
    if second is None:
        return first

    def drop(index: int) -> bool:
        return bool(first(index)) or bool(second(index))

    return drop


class BatchStreamEngine:
    """Sharded, vectorized drop-in for :class:`StreamEngine`.

    Args:
        energy_model: Cost model for the per-source energy report.
        telemetry: Observability handle (omit for the silent default).
        resilience: Optional guards -- checkpoints, watchdog, restart
            supervisor.  An ``overload`` policy is rejected: the batch
            engine has no server inbox to bound.
        max_shard_rows: Widest shard the router will build.
        workers: Process count for :meth:`run`'s shard parallelism
            (``0``/``1`` = inline).
        latency_budget_us: Per-step shard latency budget; when a shard's
            EMA exceeds it the shard splits in two (None disables).
        autoscale: Optional
            :class:`~repro.autoscale.config.AutoscalePolicy` arming the
            predictive control loop: Kalman forecasts of per-shard step
            latency drive shard splits, state-preserving merges and
            worker-pool resizes ahead of the budget, with the reactive
            EMA split as backstop.  Requires ``latency_budget_us`` (the
            SLO the planner sizes against).
    """

    def __init__(
        self,
        energy_model: EnergyModel | None = None,
        telemetry=None,
        resilience: ResilienceConfig | None = None,
        max_shard_rows: int = 4096,
        workers: int = 0,
        latency_budget_us: float | None = None,
        autoscale: AutoscalePolicy | None = None,
    ) -> None:
        self.registry = SourceRegistry()
        self._tel = telemetry or NULL_TELEMETRY
        self._resilience = resilience
        if resilience is not None:
            resilience.validate()
            if resilience.overload is not None:
                raise ConfigurationError(
                    "the batch engine applies deliveries synchronously and "
                    "has no server inbox; overload shedding requires the "
                    "scalar StreamEngine"
                )
        self._track_health = (
            resilience is not None and resilience.watchdog is not None
        )
        self._router = ShardRouter(
            max_shard_rows=max_shard_rows, track_health=self._track_health
        )
        self._pool = WorkerPool(workers)
        self._latency_budget_us = latency_budget_us
        self._shard_ema_us: dict[str, float] = {}
        self._rebalances = 0
        self._merges = 0
        self._autoscaler: ShardAutoscaler | None = None
        if autoscale is not None:
            autoscale.validate()
            if latency_budget_us is None:
                raise ConfigurationError(
                    "the shard autoscaler plans against the per-step "
                    "latency budget; pass latency_budget_us alongside "
                    "the autoscale policy"
                )
            self._autoscaler = ShardAutoscaler(
                autoscale, telemetry=self._tel
            )

        self._energy = energy_model or EnergyModel()
        self._where: dict[str, tuple[ShardRuntime, int]] = {}
        self._models: dict[str, StateSpaceModel] = {}
        self._streams: dict[str, MaterializedStream] = {}
        self._transports: dict[str, TransportPolicy] = {}
        self._priorities: dict[str, int] = {}
        self._ticks = 0
        self._server_clock = 0
        self._faults: FaultSchedule | None = None

        self._server_down = False
        self._dropped_recovered = 0
        self._recoveries = 0
        self._ckpt: CheckpointStore | None = None
        self._watchdog: DivergenceWatchdog | None = None
        self._supervisor: StreamSupervisor | None = None
        if resilience is not None:
            if resilience.checkpoint_dir is not None:
                self._ckpt = CheckpointStore(resilience.checkpoint_dir)
            if resilience.watchdog is not None:
                self._watchdog = DivergenceWatchdog(
                    resilience.watchdog, telemetry=self._tel
                )
            if resilience.restart is not None:
                self._supervisor = StreamSupervisor(
                    resilience.restart, telemetry=self._tel
                )

    # ------------------------------------------------------------------
    # Introspection (scalar-parity properties)
    # ------------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Sampling instants processed so far."""
        return self._ticks

    @property
    def faults(self) -> FaultSchedule | None:
        """The installed fault schedule, if any."""
        return self._faults

    @property
    def telemetry(self):
        """The telemetry handle this engine reports through."""
        return self._tel

    @property
    def resilience(self) -> ResilienceConfig | None:
        """The resilience configuration, if any."""
        return self._resilience

    @property
    def server_down(self) -> bool:
        """Whether the central server is currently crashed."""
        return self._server_down

    @property
    def checkpoint_store(self) -> CheckpointStore | None:
        """The durable checkpoint store, if configured."""
        return self._ckpt

    @property
    def watchdog(self) -> DivergenceWatchdog | None:
        """The divergence watchdog, if configured."""
        return self._watchdog

    @property
    def supervisor(self) -> StreamSupervisor | None:
        """The restart supervisor, if configured."""
        return self._supervisor

    @property
    def shards(self) -> list[ShardRuntime]:
        """Live shard runtimes (read-only view for tests and tooling)."""
        return list(self._router.shards)

    @property
    def autoscaler(self) -> ShardAutoscaler | None:
        """The predictive shard autoscaler, if armed."""
        return self._autoscaler

    @property
    def server(self):
        """Unavailable here: batched server state has no DKFServer object."""
        raise ConfigurationError(
            "the batch engine has no DKFServer object -- server state "
            "lives in the shard filter banks; use engine.stats(), "
            ".value(), .forecast() and .answers() instead"
        )

    @property
    def fabric(self):
        """Unavailable here: link counters live in the shard arrays."""
        raise ConfigurationError(
            "the batch engine has no NetworkFabric -- link counters live "
            "in the shard arrays; use engine.report() instead"
        )

    @property
    def sources(self):
        """Unavailable here: mirror state has no DKFSource objects."""
        raise ConfigurationError(
            "the batch engine has no DKFSource objects -- mirror state "
            "lives in the shard filter banks; use engine.stats() instead"
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_source(
        self,
        source_id: str,
        model: StateSpaceModel,
        stream: MaterializedStream,
        link: LinkConfig | None = None,
        default_smoothing_r: float = 1.0,
        transport: TransportPolicy | None = None,
        priority: int = 0,
    ) -> None:
        """Register a source, its model and its data stream.

        The batch transport is synchronous and lossless by construction
        (fault schedules layer loss back in per row), so only the default
        zero-latency :class:`LinkConfig` is accepted.
        """
        if link is not None and (
            link.latency_ticks != 0
            or link.ack_latency_ticks != 0
            or link.loss_fn is not None
            or link.ack_loss_fn is not None
            or link.corrupt_fn is not None
        ):
            raise ConfigurationError(
                "the batch engine supports only the default synchronous "
                "link; inject loss/corruption through a FaultSchedule, or "
                "use the scalar StreamEngine for latent links"
            )
        self.registry.register_source(
            source_id, model, default_smoothing_r=default_smoothing_r
        )
        self._models[source_id] = model
        self._streams[source_id] = stream
        self._transports[source_id] = transport or TransportPolicy()
        self._priorities[source_id] = priority

    def inject_faults(self, schedule: FaultSchedule) -> None:
        """Install a fault schedule; call after every ``add_source``."""
        if schedule.has_partitions() or schedule.asymmetric_links():
            raise ConfigurationError(
                "partition and asymmetric-link faults are scalar-only; "
                "the batch transport is synchronous and has no link "
                "pipeline to sever — use the scalar StreamEngine or a "
                "FederatedCluster"
            )
        schedule.reset()
        schedule.bind_telemetry(self._tel)
        self._faults = schedule
        for source_id, (shard, row) in self._where.items():
            self._bind_row_faults(shard, row, source_id)

    def _bind_row_faults(
        self, shard: ShardRuntime, row: int, source_id: str
    ) -> None:
        schedule = self._faults
        if schedule is None:
            return
        loss = schedule.loss_fn(source_id)
        corrupt = schedule.corrupt_fn(source_id)
        if loss is not None or corrupt is not None:
            shard.set_link_faults(
                row,
                _compose(shard.loss_fns.get(row), loss),
                _compose(shard.corrupt_fns.get(row), corrupt),
            )
        if source_id in schedule.crash_sources():
            shard.crash_rows.add(row)
        if source_id in schedule.sensor_sources():
            shard.sensor_rows.add(row)

    @staticmethod
    def _validate_config(config) -> None:
        if config.smoothed:
            raise ConfigurationError(
                "source-side smoothing (KF_c) is scalar-only; drop "
                "smoothing_f or use the scalar StreamEngine"
            )
        if config.check_mirror:
            raise ConfigurationError(
                "mirror digests are scalar-only; the batch transport "
                "never diverges silently (it is synchronous)"
            )
        if config.outlier_gate_factor is not None:
            raise ConfigurationError(
                "the outlier gate is scalar-only; use the scalar "
                "StreamEngine for glitch-gated sources"
            )

    def submit_query(self, query: ContinuousQuery) -> None:
        """Activate a continuous query, (re)installing the source's row."""
        descriptor = self.registry.add_query(query)
        config = descriptor.build_config()
        where = self._where.get(query.source_id)
        if where is not None and not where[0].retired[where[1]]:
            if where[0].configs[where[1]] == config:
                return
        self._install(query.source_id, config)

    def retire_query(self, query_id: str) -> None:
        """Deactivate a query; park the row when none remain."""
        descriptor = self.registry.remove_query(query_id)
        source_id = descriptor.source_id
        if not descriptor.queries:
            where = self._where.get(source_id)
            if where is not None:
                shard, row = where
                shard.retired[row] = True
                shard.exhausted[row] = False
                shard.restart_pending.discard(row)
                shard.resync_prime[row] = False
                if self._watchdog is not None:
                    self._watchdog.deregister(source_id)
            return
        config = descriptor.build_config()
        shard, row = self._where[source_id]
        if shard.configs[row] != config:
            self._install(source_id, config)

    def _install(self, source_id: str, config) -> None:
        self._validate_config(config)
        transport = self._transports.get(source_id) or TransportPolicy()
        where = self._where.get(source_id)
        if where is None:
            model = self._models[source_id]
            shard = self._router.place(model)
            stream = self._streams[source_id]
            row = shard.add_row(
                source_id,
                config,
                transport,
                stream.values(),
                stream.timestamps(),
                register_clock=self._server_clock,
            )
            self._where[source_id] = (shard, row)
            self._bind_row_faults(shard, row, source_id)
        else:
            shard, row = where
            shard.reconfigure_row(row, config, self._server_clock)
            shard.retired[row] = False
        if self._watchdog is not None:
            self._watchdog.register(source_id)

    # ------------------------------------------------------------------
    # Tick loop
    # ------------------------------------------------------------------

    def _wal(self):
        if self._ckpt is None:
            return None
        append = self._ckpt.wal_append
        tel = self._tel
        if not tel.enabled:
            return append

        def append_and_count(record: dict) -> None:
            append(record)
            tel.count("wal_records_total", record["source_id"])

        return append_and_count

    def step(self) -> int:
        """Advance every queried source one sampling instant."""
        tel = self._tel
        now = self._ticks
        tel.set_tick(now)
        with tel.timers.span("engine.step"):
            processed = 0
            wal = self._wal()
            for shard in self._router.shards:
                started = time.perf_counter()
                processed += shard.step(
                    now,
                    server_down=self._server_down,
                    faults=self._faults,
                    supervisor=self._supervisor,
                    wal=wal,
                )
                self._note_latency(
                    shard, (time.perf_counter() - started) * 1e6
                )
            self._ticks += 1
            if not self._server_down:
                self._server_clock = self._ticks
            for shard in self._router.shards:
                if self._server_down:
                    shard._ack_queue.clear()
                else:
                    shard.flush_acks()
            self._run_watchdog()
            self._maybe_checkpoint()
            self._maybe_rebalance()
            self._maybe_autoscale(now)
        return processed

    def _all_exhausted(self) -> bool:
        for shard in self._router.shards:
            if np.any(~shard.exhausted & ~shard.retired):
                return False
        return True

    def run(self, max_ticks: int | None = None) -> int:
        """Run until every stream is exhausted (or ``max_ticks``)."""
        if self._pool.parallel and self._pool_eligible():
            return self._run_pooled(max_ticks)
        executed = 0
        while max_ticks is None or executed < max_ticks:
            if self._all_exhausted():
                break
            processed = self.step()
            if processed == 0 and self._all_exhausted():
                break
            executed += 1
        return executed

    def _pool_eligible(self) -> bool:
        """Whether shards can step independently in worker processes.

        Anything that couples shards through engine-level state each tick
        -- fault schedules, resilience guards, live telemetry, lossy rows
        -- forces the inline path.
        """
        if self._faults is not None or self._resilience is not None:
            return False
        if getattr(self._tel, "enabled", False):
            return False
        return not any(s.lossy.any() for s in self._router.shards)

    def _run_pooled(self, max_ticks: int | None) -> int:
        remaining: list[int] = []
        for shard in self._router.shards:
            shard._ensure_padded()
            live = ~shard.exhausted & ~shard.retired
            if live.any():
                remaining.append(
                    int((shard.lengths[live] - shard.pos[live]).max())
                )
        if not remaining:
            return 0
        # One extra step: the scalar run loop only discovers exhaustion
        # by attempting (and failing) a read past the end.
        full = max(max(remaining), 0) + 1
        steps = full if max_ticks is None else min(full, max_ticks)
        if steps <= 0:
            return 0
        if self._autoscaler is None:
            self._pooled_chunk(steps)
        else:
            # The predictive control loop must keep running while the
            # pool does the stepping -- otherwise the autoscaler's own
            # pool resize would disarm it (run() takes this path as
            # soon as workers > 1).  Chunk the run so each chunk ends
            # on a control tick, note the workers' per-step timings,
            # then plan exactly as the inline loop would.
            interval = self._autoscaler.policy.control_interval
            executed = 0
            while executed < steps:
                # Next tick on which the inline loop would plan (the
                # control fires after stepping tick c, c % interval == 0).
                lag = self._ticks % interval
                control = self._ticks + (interval - lag if lag else 0)
                chunk = min(steps - executed, control + 1 - self._ticks)
                self._pooled_chunk(chunk)
                executed += chunk
                now = self._ticks - 1
                for shard in self._router.shards:
                    if shard.last_step_us is not None:
                        self._note_latency(shard, shard.last_step_us)
                self._maybe_autoscale(now)
        self._server_clock = self._ticks
        return steps if steps < full else full - 1

    def _pooled_chunk(self, steps: int) -> None:
        """One pooled dispatch: advance every shard ``steps`` ticks."""
        self._router.shards[:] = self._pool.run(
            self._router.shards, self._ticks, steps
        )
        self._where = {}
        for shard in self._router.shards:
            for source_id, row in shard.index.items():
                self._where[source_id] = (shard, row)
        self._ticks += steps

    def settle(self, max_ticks: int = 256) -> int:
        """Step until the transport goes quiet (no pending acks)."""
        executed = 0
        while executed < max_ticks:
            if sum(s.pending_acks() for s in self._router.shards) == 0:
                break
            self.step()
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Watchdog (batched battery, scalar ladder)
    # ------------------------------------------------------------------

    def _run_watchdog(self) -> None:
        if self._watchdog is None or self._server_down:
            return
        policy = self._watchdog.policy
        for shard in self._router.shards:
            rows = np.flatnonzero(shard.server.primed & ~shard.retired)
            if rows.size == 0:
                continue
            battery = shard.server.health_battery(
                rows, policy.symmetry_tol, policy.psd_tol
            )
            staleness = np.maximum(
                0, self._server_clock - shard.last_contact[rows]
            )
            for i, row_i in enumerate(rows):
                row = int(row_i)
                faults: list[str] = []
                if battery["state_nonfinite"][i]:
                    faults.append("state_nonfinite")
                if battery["covariance_nonfinite"][i]:
                    faults.append("covariance_nonfinite")
                else:
                    if battery["asymmetric"][i]:
                        faults.append("covariance_asymmetric")
                    elif battery["not_psd"][i]:
                        faults.append("covariance_not_psd")
                    if battery["trace"][i] > policy.trace_ceiling:
                        faults.append("covariance_trace_ceiling")
                window = shard.nis_windows[row]
                if window:
                    if float(window[-1]) > policy.nis_hard_limit:
                        faults.append("nis_spike")
                    elif (
                        len(window) >= 4
                        and float(np.mean(window)) > policy.nis_threshold
                    ):
                        faults.append("nis_runaway")
                if staleness[i] > policy.staleness_limit:
                    faults.append("stale")
                if shard.consec_rejects[row] >= policy.reject_limit:
                    faults.append("rejected_readings")
                action = self._watchdog.apply_faults(
                    shard.ids[row], self._ticks, faults
                )
                if action is None:
                    continue
                if action == "resync":
                    if shard.mirror.is_primed(row):
                        shard.resync_requested[row] = True
                elif action == "reprime":
                    shard.reprime_row(row)
                    if shard.mirror.is_primed(row):
                        shard.resync_requested[row] = True
                # "quarantine": answers() reads the watchdog rung.

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def _note_latency(self, shard: ShardRuntime, micros: float) -> None:
        prev = self._shard_ema_us.get(shard.shard_id)
        self._shard_ema_us[shard.shard_id] = (
            micros if prev is None
            else (1 - _EMA_ALPHA) * prev + _EMA_ALPHA * micros
        )
        if self._autoscaler is not None:
            self._autoscaler.note(self._ticks, shard.shard_id, micros)

    def _maybe_rebalance(self) -> None:
        if self._latency_budget_us is None:
            return
        for shard in list(self._router.shards):
            ema = self._shard_ema_us.get(shard.shard_id)
            if ema is None or ema <= self._latency_budget_us:
                continue
            if shard.rows < 2:
                continue
            low, high = shard.split()
            self._router.replace(shard, (low, high))
            self._shard_ema_us.pop(shard.shard_id, None)
            self._shard_ema_us[low.shard_id] = ema / 2
            self._shard_ema_us[high.shard_id] = ema / 2
            for part in (low, high):
                for source_id, row in part.index.items():
                    self._where[source_id] = (part, row)
            self._rebalances += 1
            if self._tel.enabled:
                self._tel.emit(
                    "scale.rebalance",
                    shard=shard.shard_id,
                    rows=shard.rows,
                    ema_us=ema,
                )
                self._tel.count("shard_splits_total")

    def _split_shard(self, shard: ShardRuntime, ema: float) -> None:
        """Replace ``shard`` with its halves (shared split bookkeeping)."""
        low, high = shard.split()
        self._router.replace(shard, (low, high))
        self._shard_ema_us.pop(shard.shard_id, None)
        self._shard_ema_us[low.shard_id] = ema / 2
        self._shard_ema_us[high.shard_id] = ema / 2
        if self._autoscaler is not None:
            self._autoscaler.forget(shard.shard_id)
        for part in (low, high):
            for source_id, row in part.index.items():
                self._where[source_id] = (part, row)

    def _maybe_autoscale(self, now: int) -> None:
        """Run the predictive control loop (split/merge/pool resize)."""
        if self._autoscaler is None:
            return
        plan = self._autoscaler.control(
            now,
            budget_us=self._latency_budget_us,
            rows={s.shard_id: s.rows for s in self._router.shards},
            signatures={
                s.shard_id: model_signature(s.model)
                for s in self._router.shards
            },
            workers=self._pool.workers,
        )
        if plan is None:
            return
        by_id = {s.shard_id: s for s in self._router.shards}
        for shard_id in plan.split_shards:
            shard = by_id.get(shard_id)
            # A reactive rebalance may have raced the plan; stale ids
            # are skipped rather than actuated blind.
            if shard is None or shard.rows < 2:
                continue
            ema = self._shard_ema_us.get(shard_id) or 0.0
            self._split_shard(shard, ema)
            self._rebalances += 1
            if self._tel.enabled:
                self._tel.emit(
                    "scale.rebalance",
                    shard=shard_id,
                    rows=shard.rows,
                    ema_us=ema,
                    planned=True,
                )
                self._tel.count("shard_splits_total")
        by_id = {s.shard_id: s for s in self._router.shards}
        for first_id, second_id in plan.merge_pairs:
            first = by_id.get(first_id)
            second = by_id.get(second_id)
            if first is None or second is None or first is second:
                continue
            if first.rows + second.rows > self._router.max_shard_rows:
                continue
            merged = self._router.combine(first, second)
            by_id.pop(first_id, None)
            by_id.pop(second_id, None)
            by_id[merged.shard_id] = merged
            emas = [
                self._shard_ema_us.pop(sid, None)
                for sid in (first_id, second_id)
            ]
            known = [e for e in emas if e is not None]
            if known:
                self._shard_ema_us[merged.shard_id] = sum(known)
            self._autoscaler.forget(first_id)
            self._autoscaler.forget(second_id)
            for source_id, row in merged.index.items():
                self._where[source_id] = (merged, row)
            self._merges += 1
            if self._tel.enabled:
                self._tel.emit(
                    "scale.merge",
                    first=first_id,
                    second=second_id,
                    merged=merged.shard_id,
                    rows=merged.rows,
                )
                self._tel.count("shard_merges_total")
        if plan.workers is not None:
            self._pool.resize(plan.workers)
            if self._tel.enabled:
                self._tel.emit("scale.pool_resize", workers=plan.workers)
                self._tel.gauge("autoscale_workers", plan.workers)

    def scale_report(self) -> dict[str, object]:
        """Shard layout, latency estimates and rebalance count."""
        report: dict[str, object] = {
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "rows": s.rows,
                    "model": s.model.name,
                    "ema_us": self._shard_ema_us.get(s.shard_id),
                }
                for s in self._router.shards
            ],
            "rebalances": self._rebalances,
            "merges": self._merges,
            "workers": self._pool.workers,
        }
        if self._autoscaler is not None:
            report["autoscale"] = self._autoscaler.report()
        return report

    # ------------------------------------------------------------------
    # Answers and per-source lookups
    # ------------------------------------------------------------------

    def _locate(self, source_id: str) -> tuple[ShardRuntime, int]:
        where = self._where.get(source_id)
        if where is None or where[0].retired[where[1]]:
            raise UnknownSourceError(f"unknown source {source_id!r}")
        return where

    def stats(self, source_id: str) -> dict[str, int | bool]:
        """Per-source protocol counters (``DKFServer.stats`` shape)."""
        shard, row = self._locate(source_id)
        return {
            "updates_received": int(shard.updates_received[row]),
            "resyncs_received": int(shard.resyncs_received[row]),
            "heartbeats_received": int(shard.heartbeats_received[row]),
            "gaps_detected": int(shard.gaps_detected[row]),
            "duplicates_ignored": int(shard.duplicates_ignored[row]),
            "rejected_nonfinite": int(shard.rejected_nonfinite[row]),
            "desynced": bool(shard.desynced[row]),
            "last_k": int(shard.last_k[row]),
            "last_contact": int(shard.last_contact[row]),
            "expected_seq": int(shard.expected_seq[row]),
        }

    def value(self, source_id: str) -> np.ndarray:
        """The server's current best value for a source."""
        shard, row = self._locate(source_id)
        if not shard.has_answer[row]:
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        return shard.answer[row].copy()

    def forecast(self, source_id: str, steps: int) -> np.ndarray:
        """Extrapolate a source's measurements ``steps`` instants ahead.

        Returns the same ``(steps, m)`` horizon as
        :meth:`repro.dkf.server.DKFServer.forecast`; each entry comes from
        the bank's memoised endpoint form.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        shard, row = self._locate(source_id)
        if not shard.server.is_primed(row):
            raise UnknownSourceError(
                f"source {source_id!r} has not delivered its priming update"
            )
        rows = np.array([row])
        out = np.empty((steps, shard.model.measurement_dim))
        for i in range(steps):
            out[i] = shard.server.forecast_k(rows, i + 1)[0]
        return out

    def confidence(self, source_id: str) -> float:
        """``delta / (delta + sigma)`` from the coasting covariance."""
        shard, row = self._locate(source_id)
        if not shard.server.is_primed(row):
            return 0.0
        s = shard.server.innovation_covariance(np.array([row]))[0]
        sigma = float(np.sqrt(max(np.max(np.diag(s)), 0.0)))
        delta = shard.configs[row].min_delta
        return delta / (delta + sigma)

    def answers(self) -> list[QueryAnswer]:
        """Current answers for every active query (scalar semantics)."""
        out = []
        for query in self.registry.active_queries:
            where = self._where.get(query.source_id)
            if where is None:
                continue
            shard, row = where
            if shard.retired[row] or not shard.server.is_primed(row):
                continue
            staleness = max(
                0, self._server_clock - int(shard.last_contact[row])
            )
            if self._tel.enabled:
                self._tel.observe(
                    "staleness_at_answer_ticks",
                    staleness,
                    source_id=query.source_id,
                )
            out.append(
                QueryAnswer(
                    query_id=query.query_id,
                    source_id=query.source_id,
                    k=int(shard.last_k[row]),
                    value=tuple(float(v) for v in shard.answer[row]),
                    precision=shard.configs[row].min_delta,
                    staleness_ticks=staleness,
                    confidence=self.confidence(query.source_id),
                    degraded=(
                        staleness > int(shard.suspect_after[row])
                        or self._server_down
                    ),
                    quarantined=(
                        self._watchdog is not None
                        and self._watchdog.is_quarantined(query.source_id)
                    ),
                )
            )
        return out

    def answer(self, query_id: str) -> QueryAnswer:
        """The current answer for one query."""
        for candidate in self.answers():
            if candidate.query_id == query_id:
                return candidate
        raise UnknownSourceError(f"no answer available for query {query_id!r}")

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _live_rows(self):
        for shard in self._router.shards:
            for row in range(shard.rows):
                if not shard.retired[row]:
                    yield shard, row

    def _maybe_checkpoint(self) -> None:
        if (
            self._resilience is None
            or not self._resilience.checkpoint_every
            or self._ckpt is None
            or self._server_down
        ):
            return
        if self._ticks % self._resilience.checkpoint_every == 0:
            self.checkpoint()

    def checkpoint(self) -> int:
        """Snapshot the server filter bank (``repro.ckpt-v1``)."""
        if self._ckpt is None:
            raise ConfigurationError(
                "checkpointing requires a ResilienceConfig with a "
                "checkpoint_dir"
            )
        if self._server_down:
            raise ConfigurationError("cannot checkpoint a dead server")
        snapshot = {
            "schema": CHECKPOINT_SCHEMA,
            "tick": self._ticks,
            "server_clock": self._server_clock,
            "sources": {
                shard.ids[row]: shard.export_row(row)
                for shard, row in self._live_rows()
            },
            "meta": {"recoveries": self._recoveries},
        }
        size = self._ckpt.save(snapshot)
        if self._tel.enabled:
            self._tel.emit(
                "checkpoint.write",
                bytes=size,
                sources=len(snapshot["sources"]),
            )
            self._tel.count("checkpoint_writes_total")
            self._tel.gauge("checkpoint_bytes", size)
        return size

    def crash_server(self) -> int:
        """Kill the central server; deliveries drop until :meth:`recover`."""
        if self._resilience is None:
            raise ConfigurationError("crash_server requires a ResilienceConfig")
        if self._server_down:
            return 0
        self._server_down = True
        if self._tel.enabled:
            self._tel.emit("server.crash", inbox_lost=0)
            self._tel.count("server_crashes_total")
        return 0

    def recover(self) -> dict[str, int]:
        """Rebuild the server rows from checkpoint + WAL replay."""
        if self._resilience is None:
            raise ConfigurationError("recover requires a ResilienceConfig")
        dropped = sum(s.dropped_while_down for s in self._router.shards)
        self._server_down = False
        self._server_clock = 0
        for shard in self._router.shards:
            shard.dropped_while_down = 0
            shard._ack_queue.clear()
            for row in range(shard.rows):
                if not shard.retired[row]:
                    shard._reset_server_row(row, register_clock=0)
        snapshot = self._ckpt.load() if self._ckpt is not None else None
        restored = 0
        if snapshot is not None:
            for source_id, data in snapshot["sources"].items():
                where = self._where.get(source_id)
                if where is None or where[0].retired[where[1]]:
                    continue
                where[0].import_row(where[1], data)
                restored += 1
        replayed = self._replay_wal() if self._ckpt is not None else 0
        # Roll forward: the mirror predicted once per sampled instant
        # while the server was dead; the restored filter has not.
        for shard, row in self._live_rows():
            if not (
                shard.server.is_primed(row) and shard.mirror.is_primed(row)
            ):
                continue
            behind = shard.mirror.k_row(row) - shard.server.k_row(row)
            last_k = int(shard.last_k[row])
            for i in range(max(0, behind)):
                shard.server_tick_row(row, last_k + i + 1)
        self._server_clock = max(self._server_clock, self._ticks)
        for shard in self._router.shards:
            shard._ack_queue.clear()
        resyncs = 0
        for shard, row in self._live_rows():
            if not shard.mirror.is_primed(row):
                continue
            if int(shard.seq_next[row]) != int(shard.expected_seq[row]):
                shard.resync_requested[row] = True
                resyncs += 1
        self._recoveries += 1
        if self._tel.enabled:
            self._tel.emit(
                "recovery.replay",
                restored_sources=restored,
                wal_replayed=replayed,
                resync_requests=resyncs,
                dropped_while_down=dropped,
            )
            self._tel.count("recoveries_total")
        return {
            "restored_sources": restored,
            "wal_replayed": replayed,
            "resync_requests": resyncs,
            "dropped_while_down": dropped,
        }

    def _replay_wal(self) -> int:
        count = 0
        for record in self._ckpt.wal_records():
            where = self._where.get(record.get("source_id"))
            if where is None or where[0].retired[where[1]]:
                continue
            shard, row = where
            k = int(record["k"])
            last_k = int(shard.last_k[row])
            for t in range(last_k + 1, k + 1):
                shard.server_tick_row(row, t)
            self._server_clock = max(self._server_clock, k)
            shard.replay_apply(
                row,
                record["kind"],
                int(record["seq"]),
                k,
                record["value"],
                x=record.get("x"),
                p=record.get("p"),
            )
            count += 1
        return count

    def resilience_report(self) -> dict[str, object]:
        """Summary of every resilience guard's activity this run."""
        report: dict[str, object] = {
            "enabled": self._resilience is not None,
            "recoveries": self._recoveries,
            "server_down": self._server_down,
            "dropped_while_down": sum(
                s.dropped_while_down for s in self._router.shards
            ),
        }
        if self._watchdog is not None:
            report["watchdog"] = self._watchdog.report()
        if self._supervisor is not None:
            report["supervisor"] = self._supervisor.report()
        return report

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> EngineReport:
        """System-wide traffic and energy summary (scalar shape)."""
        per_source_energy = {}
        readings = updates = retransmits = heartbeats = 0
        corrupted = acks = bytes_total = lost = 0
        for shard, row in self._live_rows():
            source_id = shard.ids[row]
            per_source_energy[source_id] = self._energy.report(
                bytes_sent=int(shard.bytes_delivered[row]),
                filter_steps=int(shard.samples_seen[row]),
                state_dim=shard.n,
                measurement_dim=shard.m,
                smoothing_steps=0,
            )
            readings += int(shard.samples_seen[row])
            updates += int(
                shard.offered[row]
                - shard.link_resyncs[row]
                - shard.link_heartbeats[row]
            )
            retransmits += int(shard.link_resyncs[row])
            heartbeats += int(shard.link_heartbeats[row])
            corrupted += int(shard.corrupted[row])
            acks += int(shard.acks_delivered[row])
            bytes_total += int(shard.bytes_delivered[row])
            lost += int(shard.lost[row])
        return EngineReport(
            ticks=self._ticks,
            readings=readings,
            updates_sent=updates,
            bytes_delivered=bytes_total,
            messages_lost=lost,
            in_flight=0,
            retransmits=retransmits,
            heartbeats=heartbeats,
            corrupted=corrupted,
            acks_delivered=acks,
            per_source_energy=per_source_energy,
        )

    def obs_snapshot(self, meta: dict | None = None) -> dict:
        """Telemetry snapshot of this run (``repro.obs/v2`` schema)."""
        merged = {
            "ticks": self._ticks,
            "report": self.report().to_dict(),
            "scale": self.scale_report(),
        }
        if self._resilience is not None:
            merged["resilience"] = self.resilience_report()
        if meta:
            merged.update(meta)
        return build_snapshot(self._tel, meta=merged)
