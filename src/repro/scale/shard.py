"""Shard runtime: the DKF protocol state machine over array-of-streams.

A shard holds every per-stream quantity of the scalar engine --
sequence numbers, pending-ack buffers, link counters, server
expectations, answers -- as parallel numpy arrays over N homogeneous
rows (same model signature), plus two :class:`VectorKalmanBank`
instances for the mirror (source-side) and server-side filter banks.
One :meth:`ShardRuntime.step` call advances every row one sampling
instant with a handful of batched array operations.

Semantic parity with the scalar stack is the design constraint, not an
afterthought; each phase below names the scalar code it mirrors
(``StreamEngine._step_sources``, ``DKFSource.sample``/``poll_transport``,
``DKFServer.receive``/``tick``, ``NetworkFabric.send``).  Rows fall into
two transport regimes:

* **fast rows** -- lossless link, server up, empty pending buffer, no
  resync request.  A transmitted update is delivered, applied and acked
  within the same step, and the scalar pending-ack entry it would have
  created is observably inert (its deadline is in the future and the
  same-step ack removes it), so the fast path skips the per-row buffer
  entirely and applies the server side as one batched bank update.
* **slow rows** -- anything with a loss/corruption predicate, a live
  pending buffer, a resync request, or a dead server.  These walk the
  exact per-row scalar transport state machine (timeout scan, backoff,
  resync cut, heartbeat) so fault semantics match bit for bit.

A row moves between regimes as its pending buffer drains, so a healthy
shard pays the slow path only for the rows that are actually unhealthy.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import HeartbeatMessage, ResyncMessage, UpdateMessage
from repro.errors import ConfigurationError
from repro.filters.models import StateSpaceModel
from repro.scale.vector_bank import VectorKalmanBank, require_static_model
from repro.streams.base import StreamRecord

__all__ = ["ShardRuntime", "ShardRouter", "model_signature"]

#: Server-side NIS window length (matches ``DKFServer``'s deque maxlen).
NIS_WINDOW = 16

_UPDATE, _RESYNC, _HEARTBEAT = 0, 1, 2

#: Per-row int64 state arrays (order irrelevant; used for subset/split).
_ROW_INTS = (
    "pos", "m_k", "seq_next", "last_send",
    "samples_seen", "updates_sent", "readings_rejected",
    "src_retransmits", "heartbeats_sent",
    "offered", "delivered", "lost", "corrupted",
    "link_resyncs", "link_heartbeats",
    "acks_offered", "acks_delivered", "bytes_delivered",
    "expected_seq", "last_k", "last_contact",
    "updates_received", "resyncs_received", "heartbeats_received",
    "gaps_detected", "duplicates_ignored", "rejected_nonfinite",
    "consec_rejects", "hb_interval", "suspect_after",
)
#: Per-row bool state arrays.
_ROW_BOOLS = (
    "has_last", "desynced", "resync_requested", "exhausted", "retired",
    "lossy", "has_pending", "has_answer", "resync_prime",
)


def model_signature(model: StateSpaceModel) -> tuple:
    """Hashable batching key: rows with equal signatures share a shard.

    Two models batch together exactly when every filter matrix is
    byte-identical (same F/H/Q/R values and shapes) and any custom
    initializer is the same object.  Time-varying models have no
    signature -- they cannot batch.
    """
    require_static_model(model)
    parts: list = [model.state_dim, model.measurement_dim]
    for name in ("phi", "h", "q", "r"):
        a = np.ascontiguousarray(np.asarray(getattr(model, name), dtype=float))
        parts.append((a.shape, a.tobytes()))
    if model.initializer is not None:
        parts.append(id(model.initializer))
    return tuple(parts)


class ShardRuntime:
    """N homogeneous DKF stream pairs advanced in lockstep.

    Rows are appended with :meth:`add_row` (engine install time) and
    addressed by index.  The runtime is self-contained and picklable
    when no closure-valued loss predicates are attached, which is what
    lets the worker pool ship whole shards to subprocesses.
    """

    def __init__(
        self, shard_id: str, model: StateSpaceModel, track_health: bool = False
    ) -> None:
        require_static_model(model)
        self.shard_id = shard_id
        self.model = model
        self.track_health = track_health
        self.mirror = VectorKalmanBank(model)
        self.server = VectorKalmanBank(model)
        self.n = model.state_dim
        self.m = model.measurement_dim
        # Wire frame sizes are constant across a homogeneous shard.
        zed = np.zeros(self.m)
        self.update_bytes = UpdateMessage("_", 0, 0, zed).size_bytes
        self.resync_bytes = ResyncMessage(
            "_", 0, 0, np.zeros(self.n), np.zeros((self.n, self.n)), zed
        ).size_bytes
        self.heartbeat_bytes = HeartbeatMessage("_", 0, 0).size_bytes

        self.ids: list[str] = []
        self.index: dict[str, int] = {}
        self.policies: list[TransportPolicy] = []
        self.configs: list[DKFConfig] = []
        self.streams: list[np.ndarray] = []
        self.stream_ts: list[np.ndarray] = []
        self.pending: list[dict[int, tuple[int, int]]] = []
        self.nis_windows: list[deque | None] = []
        self.loss_fns: dict[int, object] = {}
        self.corrupt_fns: dict[int, object] = {}
        self.crash_rows: set[int] = set()
        self.sensor_rows: set[int] = set()
        self.restart_pending: set[int] = set()
        self.dropped_while_down = 0
        # Mean per-step wall time of the last pooled chunk, µs; stamped
        # by the worker so the parent's autoscaler can keep its latency
        # models fed across process boundaries.
        self.last_step_us: float | None = None
        self._ack_queue: list[tuple[int, int, bool]] = []
        self._padded: np.ndarray | None = None
        self._pad_ts: np.ndarray | None = None
        self.lengths = np.zeros(0, dtype=np.int64)

        for name in _ROW_INTS:
            setattr(self, name, np.zeros(0, dtype=np.int64))
        for name in _ROW_BOOLS:
            setattr(self, name, np.zeros(0, dtype=bool))
        self.delta = np.zeros((0, self.m))
        self.last_value = np.zeros((0, self.m))
        self.answer = np.zeros((0, self.m))

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Number of stream pairs in this shard."""
        return len(self.ids)

    def add_row(
        self,
        source_id: str,
        config: DKFConfig,
        policy: TransportPolicy,
        values: np.ndarray,
        timestamps: np.ndarray,
        register_clock: int = 0,
        loss_fn=None,
        corrupt_fn=None,
    ) -> int:
        """Append one stream pair; returns its row index."""
        if source_id in self.index:
            raise ConfigurationError(f"row {source_id!r} already in shard")
        row = self.rows
        self.ids.append(source_id)
        self.index[source_id] = row
        self.policies.append(policy)
        self.configs.append(config)
        v = np.asarray(values, dtype=float)
        if v.ndim == 1:
            v = v[:, None]
        if v.shape[1] != self.m:
            raise ConfigurationError(
                f"stream for {source_id!r} has dim {v.shape[1]}, "
                f"model wants {self.m}"
            )
        self.streams.append(v)
        self.stream_ts.append(np.asarray(timestamps, dtype=float))
        self.pending.append({})
        self.nis_windows.append(
            deque(maxlen=NIS_WINDOW) if self.track_health else None
        )
        self._padded = None

        for name in _ROW_INTS:
            setattr(
                self, name,
                np.concatenate([getattr(self, name), [0]]).astype(np.int64),
            )
        for name in _ROW_BOOLS:
            setattr(
                self, name,
                np.concatenate(
                    [getattr(self, name), np.zeros(1, dtype=bool)]
                ),
            )
        self.delta = np.concatenate([self.delta, [config.delta_vector()]])
        self.last_value = np.concatenate(
            [self.last_value, np.zeros((1, self.m))]
        )
        self.answer = np.concatenate([self.answer, np.zeros((1, self.m))])

        self.m_k[row] = -1
        self.last_k[row] = -1
        self.last_contact[row] = register_clock
        self.hb_interval[row] = policy.heartbeat_interval_ticks
        self.suspect_after[row] = policy.suspect_after_ticks
        self.mirror.add_row(config.p0_scale)
        self.server.add_row(config.p0_scale)
        if loss_fn is not None or corrupt_fn is not None:
            self.set_link_faults(row, loss_fn, corrupt_fn)
        return row

    def set_link_faults(self, row: int, loss_fn, corrupt_fn) -> None:
        """Attach loss/corruption predicates; the row turns slow-path."""
        if loss_fn is not None:
            self.loss_fns[row] = loss_fn
        if corrupt_fn is not None:
            self.corrupt_fns[row] = corrupt_fn
        self.lossy[row] = (
            row in self.loss_fns or row in self.corrupt_fns
        )

    def reconfigure_row(
        self, row: int, config: DKFConfig, register_clock: int
    ) -> None:
        """Reinstall a row under a new config (query tightened its δ).

        Mirrors ``StreamEngine._install``: a fresh source endpoint and a
        fresh server registration -- both filters reset, sequence space
        restarts at zero, link counters survive (they live in the
        fabric, not the endpoints).  The stream cursor keeps its place.
        """
        self.configs[row] = config
        self.delta[row] = config.delta_vector()
        self._reset_source_row(row, now=0)
        self.last_send[row] = 0
        self._reset_server_row(row, register_clock)
        self.resync_prime[row] = False
        self.restart_pending.discard(row)

    def _reset_source_row(self, row: int, now: int) -> None:
        """``DKFSource.reset``: crash wipes all source-side state."""
        self.mirror.reset_row(row)
        self.pending[row].clear()
        self.has_pending[row] = False
        self.resync_requested[row] = False
        self.seq_next[row] = 0
        self.m_k[row] = -1
        self.has_last[row] = False
        self.last_value[row] = 0.0
        self.last_send[row] = now
        for name in (
            "samples_seen", "updates_sent", "readings_rejected",
            "src_retransmits", "heartbeats_sent",
        ):
            getattr(self, name)[row] = 0

    def _reset_server_row(self, row: int, register_clock: int) -> None:
        """Fresh ``DKFServer.register`` state for one row."""
        self.server.reset_row(row)
        self.expected_seq[row] = 0
        self.last_k[row] = -1
        self.last_contact[row] = register_clock
        self.desynced[row] = False
        self.has_answer[row] = False
        self.answer[row] = 0.0
        for name in (
            "updates_received", "resyncs_received", "heartbeats_received",
            "gaps_detected", "duplicates_ignored", "rejected_nonfinite",
        ):
            getattr(self, name)[row] = 0
        if self.nis_windows[row] is not None:
            self.nis_windows[row].clear()

    def _ensure_padded(self) -> None:
        if self._padded is not None:
            return
        count = self.rows
        longest = max((len(s) for s in self.streams), default=0)
        self.lengths = np.array(
            [len(s) for s in self.streams], dtype=np.int64
        )
        self._padded = np.full((count, longest, self.m), np.nan)
        self._pad_ts = np.zeros((count, longest))
        for i, s in enumerate(self.streams):
            self._padded[i, : len(s)] = s
            self._pad_ts[i, : len(s)] = self.stream_ts[i]

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------

    def step(
        self,
        now: int,
        *,
        server_down: bool = False,
        faults=None,
        supervisor=None,
        wal=None,
    ) -> int:
        """Advance every row one sampling instant; returns readings taken.

        Phases mirror ``StreamEngine._step_sources`` + the step tail:
        crash/restart handling, bulk read + sensor faults, server tick,
        mirror suppression decision, sends, transport poll, ack flush.
        """
        self._ensure_padded()
        down = np.zeros(self.rows, dtype=bool)

        # -- Phase A: crash/restart faults (affected rows only) ----------
        if faults is not None and (self.crash_rows or self.restart_pending):
            for row in sorted(self.crash_rows | self.restart_pending):
                sid = self.ids[row]
                if faults.restarts_at(sid, now) or row in self.restart_pending:
                    if supervisor is None or supervisor.request_restart(
                        sid, now
                    ):
                        self.restart_pending.discard(row)
                        self._reset_source_row(row, now)
                        self.resync_prime[row] = True
                    else:
                        self.restart_pending.add(row)
                if faults.is_down(sid, now) or row in self.restart_pending:
                    down[row] = True
                    if not server_down and self.server.is_primed(row):
                        self._server_tick(np.array([row]), now)
                    if faults.is_terminal(sid, now):
                        self.exhausted[row] = True

        # -- Phase B: bulk read ------------------------------------------
        active = ~self.exhausted & ~self.retired & ~down
        rows_a = np.flatnonzero(active)
        have = self.pos[rows_a] < self.lengths[rows_a]
        self.exhausted[rows_a[~have]] = True
        read_rows = rows_a[have]
        processed = int(read_rows.size)
        if processed:
            k_rows = self.pos[read_rows].copy()
            z = self._padded[read_rows, k_rows].copy()
            if faults is not None and self.sensor_rows:
                for i, row in enumerate(read_rows):
                    if int(row) in self.sensor_rows:
                        rec = StreamRecord(
                            k=int(k_rows[i]),
                            timestamp=float(self._pad_ts[row, k_rows[i]]),
                            value=z[i],
                        )
                        rec = faults.transform(self.ids[int(row)], now, rec)
                        z[i] = np.asarray(rec.value, dtype=float)
            self.pos[read_rows] += 1
            self.m_k[read_rows] = k_rows
            self.samples_seen[read_rows] += 1

            # -- Phase C: server tick at each row's sampling instant -----
            if not server_down:
                self._server_tick(read_rows, k_rows)

            # -- Phase D: mirror sample (reject / prime / suppress) ------
            finite = np.isfinite(z).all(axis=1)
            rej = read_rows[~finite]
            if rej.size:
                self.readings_rejected[rej] += 1
                self.consec_rejects[rej] += 1
                m_primed = self.mirror.primed
                self.mirror.predict(rej[m_primed[rej]])
            acc = read_rows[finite]
            z_acc = z[finite]
            if acc.size:
                self.consec_rejects[acc] = 0
                self.last_value[acc] = z_acc
                self.has_last[acc] = True
                m_primed = self.mirror.primed
                new_mask = ~m_primed[acc]
                prime_rows = acc[new_mask]
                steady = acc[~new_mask]
                if prime_rows.size:
                    self.mirror.prime(prime_rows, z_acc[new_mask])
                tx_rows = np.zeros(0, dtype=np.intp)
                z_tx = np.zeros((0, self.m))
                if steady.size:
                    self.mirror.predict(steady)
                    pred = self.mirror.measurement(steady)
                    z_st = z_acc[~new_mask]
                    over = (
                        np.abs(pred - z_st) > self.delta[steady]
                    ).any(axis=1)
                    tx_rows = steady[over]
                    z_tx = z_st[over]
                    if tx_rows.size:
                        self.mirror.update(tx_rows, z_tx)

                # -- Phase E/F: build + send this tick's messages --------
                self._send_sampled(
                    prime_rows, z_acc[new_mask], tx_rows, z_tx,
                    now, server_down, wal,
                )

        # -- Phase G: transport poll (retransmits + heartbeats) ----------
        self._poll(now, down, server_down, wal)
        return processed

    # ------------------------------------------------------------------
    # Server-side batched operations
    # ------------------------------------------------------------------

    def _server_tick(self, rows: np.ndarray, k) -> None:
        """``DKFServer.tick`` per row: clock the state, coast if primed."""
        self.last_k[rows] = k
        primed = self.server.primed
        coasting = rows[primed[rows]]
        if coasting.size:
            self.server.predict(coasting)
            self.answer[coasting] = self.server.measurement(coasting)

    def _observe_nis(self, rows: np.ndarray, z: np.ndarray) -> None:
        """``DKFServer._observe_nis``: batched y^T S^-1 y per row."""
        if not self.track_health or rows.size == 0:
            return
        innovation = z - self.server.measurement(rows)
        s = self.server.innovation_covariance(rows)
        try:
            sol = np.linalg.solve(s, innovation[..., None])[..., 0]
            nis = np.einsum("ri,ri->r", innovation, sol)
        except np.linalg.LinAlgError:
            nis = np.empty(rows.size)
            for i in range(rows.size):
                try:
                    nis[i] = float(
                        innovation[i]
                        @ np.linalg.solve(s[i], innovation[i])
                    )
                except np.linalg.LinAlgError:
                    nis[i] = np.inf
        for i, row in enumerate(rows):
            self.nis_windows[row].append(float(nis[i]))

    # ------------------------------------------------------------------
    # Sends
    # ------------------------------------------------------------------

    def _send_sampled(
        self,
        prime_rows: np.ndarray,
        z_prime: np.ndarray,
        tx_rows: np.ndarray,
        z_tx: np.ndarray,
        now: int,
        server_down: bool,
        wal,
    ) -> None:
        """Offer this tick's sampled messages to the link.

        Priming rows flagged ``resync_prime`` (post-restart) consume two
        sequence numbers -- the discarded update plus the resync snapshot
        -- exactly like the scalar engine's resync-prime conversion.
        """
        fastable = (
            ~self.lossy
            & ~self.has_pending
            & ~self.resync_requested
        ) if not server_down else np.zeros(self.rows, dtype=bool)

        # Updates: plain primings + over-δ transmissions.
        plain_prime = prime_rows[~self.resync_prime[prime_rows]]
        z_plain = z_prime[~self.resync_prime[prime_rows]]
        upd_rows = np.concatenate([plain_prime, tx_rows]).astype(np.intp)
        z_upd = np.concatenate([z_plain, z_tx])
        if upd_rows.size:
            seqs = self.seq_next[upd_rows].copy()
            self.seq_next[upd_rows] += 1
            self.updates_sent[upd_rows] += 1
            fast = fastable[upd_rows] & (seqs == self.expected_seq[upd_rows])
            f_rows, f_z, f_seq = upd_rows[fast], z_upd[fast], seqs[fast]
            if f_rows.size:
                self._fast_apply_updates(f_rows, f_z, f_seq, now, wal)
            for i in np.flatnonzero(~fast):
                row = int(upd_rows[i])
                self._send_slow(
                    row, _UPDATE, int(seqs[i]), int(self.m_k[row]),
                    z_upd[i], now, server_down, wal,
                )
                self._note_sent(row, int(seqs[i]), now)

        # Resync primings (seq_next was consumed by the discarded update).
        rs_rows = prime_rows[self.resync_prime[prime_rows]]
        z_rs = z_prime[self.resync_prime[prime_rows]]
        if rs_rows.size:
            self.updates_sent[rs_rows] += 1
            seqs = self.seq_next[rs_rows] + 1
            self.seq_next[rs_rows] += 2
            self.resync_prime[rs_rows] = False
            fast = fastable[rs_rows]
            f_rows, f_z, f_seq = rs_rows[fast], z_rs[fast], seqs[fast]
            if f_rows.size:
                self._fast_apply_resyncs(f_rows, f_z, f_seq, now, wal)
            for i in np.flatnonzero(~fast):
                row = int(rs_rows[i])
                self._send_slow(
                    row, _RESYNC, int(seqs[i]), int(self.m_k[row]),
                    z_rs[i], now, server_down, wal,
                    x=self.mirror.x_row(row), p=self.mirror.p_row(row),
                )
                self._note_sent(row, int(seqs[i]), now)

    def _note_sent(self, row: int, seq: int, now: int) -> None:
        """``DKFSource.note_sent``: arm the ack deadline for a send."""
        deadline = now + self.policies[row].retry_timeout(0)
        self.pending[row][seq] = (deadline, 0)
        self.has_pending[row] = True
        self.last_send[row] = now

    def _fast_apply_updates(
        self, rows, z, seqs, now: int, wal
    ) -> None:
        """Lossless same-step delivery + apply + ack for update rows."""
        self.offered[rows] += 1
        self.delivered[rows] += 1
        self.bytes_delivered[rows] += self.update_bytes
        self.last_contact[rows] = now
        self.last_send[rows] = now
        primed = self.server.primed
        new_mask = ~primed[rows]
        if new_mask.any():
            self.server.prime(rows[new_mask], z[new_mask])
        seasoned = rows[~new_mask]
        if seasoned.size:
            self._observe_nis(seasoned, z[~new_mask])
            self.server.update(seasoned, z[~new_mask])
        self.answer[rows] = z
        self.has_answer[rows] = True
        self.updates_received[rows] += 1
        self.expected_seq[rows] = seqs + 1
        self.last_k[rows] = self.m_k[rows]
        self.acks_offered[rows] += 1
        self.acks_delivered[rows] += 1
        if wal is not None:
            for i, row in enumerate(rows):
                wal({
                    "kind": "update",
                    "source_id": self.ids[int(row)],
                    "seq": int(seqs[i]),
                    "k": int(self.m_k[row]),
                    "value": z[i].tolist(),
                })

    def _fast_apply_resyncs(self, rows, z, seqs, now: int, wal) -> None:
        """Lossless same-step delivery of resync-prime snapshots."""
        self.offered[rows] += 1
        self.link_resyncs[rows] += 1
        self.delivered[rows] += 1
        self.bytes_delivered[rows] += self.resync_bytes
        self.last_contact[rows] = now
        self.last_send[rows] = now
        x = self.mirror._x[rows]
        p = self.mirror._p[rows]
        self.server.set_state(rows, x, p)
        self.answer[rows] = z
        self.has_answer[rows] = True
        self.expected_seq[rows] = seqs + 1
        self.resyncs_received[rows] += 1
        self.desynced[rows] = False
        self.last_k[rows] = self.m_k[rows]
        for row in rows:
            if self.nis_windows[row] is not None:
                self.nis_windows[row].clear()
        self.acks_offered[rows] += 1
        self.acks_delivered[rows] += 1
        if wal is not None:
            for i, row in enumerate(rows):
                wal({
                    "kind": "resync",
                    "source_id": self.ids[int(row)],
                    "seq": int(seqs[i]),
                    "k": int(self.m_k[row]),
                    "value": z[i].tolist(),
                    "x": x[i].tolist(),
                    "p": p[i].tolist(),
                })

    def _send_slow(
        self,
        row: int,
        kind: int,
        seq: int,
        k: int,
        value,
        now: int,
        server_down: bool,
        wal,
        x=None,
        p=None,
    ) -> None:
        """One message through the full fabric + server receive path.

        Mirrors ``NetworkFabric.send`` (offered index, kind counters
        before loss, loss then corruption, bytes on delivery) and
        ``DKFServer.receive`` (touch, gap/dup bookkeeping, apply, ack).
        """
        index = int(self.offered[row])
        self.offered[row] += 1
        if kind == _RESYNC:
            self.link_resyncs[row] += 1
        elif kind == _HEARTBEAT:
            self.link_heartbeats[row] += 1
        loss = self.loss_fns.get(row)
        if loss is not None and loss(index):
            self.lost[row] += 1
            return
        corrupt = self.corrupt_fns.get(row)
        if corrupt is not None and corrupt(index):
            # A flipped bit always trips the CRC-32 trailer, so the
            # receiver rejects the frame; equivalent to a counted drop.
            self.corrupted[row] += 1
            return
        self.delivered[row] += 1
        self.bytes_delivered[row] += (
            self.update_bytes if kind == _UPDATE
            else self.resync_bytes if kind == _RESYNC
            else self.heartbeat_bytes
        )
        if server_down:
            self.dropped_while_down += 1
            return
        self.last_contact[row] = now
        if kind == _HEARTBEAT:
            self.heartbeats_received[row] += 1
            return
        if kind == _UPDATE:
            expected = int(self.expected_seq[row])
            if seq < expected:
                self.duplicates_ignored[row] += 1
                self._ack_queue.append((row, expected, False))
                return
            if seq > expected:
                self.desynced[row] = True
                self.gaps_detected[row] += 1
                self._ack_queue.append((row, expected, True))
                return
            arr = np.array([row], dtype=np.intp)
            zv = np.asarray(value, dtype=float)[None, :]
            if not self.server.is_primed(row):
                self.server.prime(arr, zv)
            else:
                self._observe_nis(arr, zv)
                self.server.update(arr, zv)
            self.answer[row] = value
            self.has_answer[row] = True
            self.updates_received[row] += 1
            self.expected_seq[row] = seq + 1
            self.last_k[row] = k
            self._ack_queue.append((row, seq + 1, False))
            if wal is not None:
                wal({
                    "kind": "update",
                    "source_id": self.ids[row],
                    "seq": seq,
                    "k": k,
                    "value": np.asarray(value, dtype=float).tolist(),
                })
            return
        # Resync: full state injection, applied regardless of seq.
        arr = np.array([row], dtype=np.intp)
        self.server.set_state(
            arr,
            np.asarray(x, dtype=float)[None, :],
            np.asarray(p, dtype=float)[None, :, :],
        )
        self.answer[row] = value
        self.has_answer[row] = True
        self.expected_seq[row] = seq + 1
        self.resyncs_received[row] += 1
        self.desynced[row] = False
        self.last_k[row] = k
        if self.nis_windows[row] is not None:
            self.nis_windows[row].clear()
        self._ack_queue.append((row, seq + 1, False))
        if wal is not None:
            wal({
                "kind": "resync",
                "source_id": self.ids[row],
                "seq": seq,
                "k": k,
                "value": np.asarray(value, dtype=float).tolist(),
                "x": np.asarray(x, dtype=float).tolist(),
                "p": np.asarray(p, dtype=float).tolist(),
            })

    # ------------------------------------------------------------------
    # Transport poll
    # ------------------------------------------------------------------

    def _poll(
        self, now: int, down: np.ndarray, server_down: bool, wal
    ) -> None:
        """``DKFSource.poll_transport`` for every live row.

        Slow rows (live pending buffer or a resync request) walk the
        scalar timeout/backoff/resync logic per row; everyone else is a
        single vectorized heartbeat check.
        """
        m_primed = self.mirror.primed
        eligible = ~down & ~self.retired & m_primed & self.has_last
        slow = np.flatnonzero(
            eligible & (self.has_pending | self.resync_requested)
        )
        for row_i in slow:
            row = int(row_i)
            pend = self.pending[row]
            retry_attempt = None
            if pend and min(d for d, _ in pend.values()) <= now:
                retry_attempt = 1 + max(a for _, a in pend.values())
            elif self.resync_requested[row]:
                retry_attempt = 0
            if retry_attempt is not None:
                seq = int(self.seq_next[row])
                self.seq_next[row] += 1
                self.src_retransmits[row] += 1
                self._send_slow(
                    row, _RESYNC, seq, int(self.m_k[row]),
                    self.last_value[row].copy(), now, server_down, wal,
                    x=self.mirror.x_row(row), p=self.mirror.p_row(row),
                )
                pend.clear()
                deadline = now + self.policies[row].retry_timeout(
                    retry_attempt
                )
                pend[seq] = (deadline, retry_attempt)
                self.has_pending[row] = True
                self.resync_requested[row] = False
                self.last_send[row] = now
            # A row with an armed (not yet due) pending entry never
            # heartbeats -- same as the scalar `not pending` guard.

        hb = (
            eligible
            & ~self.has_pending
            & ~self.resync_requested
            & (now - self.last_send >= self.hb_interval)
        )
        hb_rows = np.flatnonzero(hb)
        if hb_rows.size == 0:
            return
        self.heartbeats_sent[hb_rows] += 1
        self.last_send[hb_rows] = now
        hb_lossy = hb_rows[self.lossy[hb_rows]]
        for row in hb_lossy:
            self._send_slow(
                int(row), _HEARTBEAT, int(self.seq_next[row]),
                int(self.m_k[row]), None, now, server_down, wal,
            )
        hb_fast = hb_rows[~self.lossy[hb_rows]]
        if hb_fast.size:
            self.offered[hb_fast] += 1
            self.link_heartbeats[hb_fast] += 1
            self.delivered[hb_fast] += 1
            self.bytes_delivered[hb_fast] += self.heartbeat_bytes
            if server_down:
                self.dropped_while_down += int(hb_fast.size)
            else:
                self.heartbeats_received[hb_fast] += 1
                self.last_contact[hb_fast] = now

    def flush_acks(self) -> None:
        """Deliver queued acks (end of step, like ``fabric.send_ack``)."""
        for row, ack_seq, resync_flag in self._ack_queue:
            self.acks_offered[row] += 1
            self.acks_delivered[row] += 1
            pend = self.pending[row]
            if pend:
                for seq in [s for s in pend if s < ack_seq]:
                    del pend[seq]
                self.has_pending[row] = bool(pend)
            if resync_flag:
                self.resync_requested[row] = True
        self._ack_queue.clear()

    def pending_acks(self) -> int:
        """Total armed pending-ack entries (settle loop predicate)."""
        return sum(len(p) for p in self.pending)

    # ------------------------------------------------------------------
    # Checkpoint / recovery support
    # ------------------------------------------------------------------

    def export_row(self, row: int) -> dict:
        """``DKFServer.export_source_state`` shape for one row."""
        return {
            "expected_seq": int(self.expected_seq[row]),
            "k": int(self.last_k[row]),
            "last_contact": int(self.last_contact[row]),
            "updates_received": int(self.updates_received[row]),
            "resyncs_received": int(self.resyncs_received[row]),
            "heartbeats_received": int(self.heartbeats_received[row]),
            "gaps_detected": int(self.gaps_detected[row]),
            "duplicates_ignored": int(self.duplicates_ignored[row]),
            "rejected_nonfinite": int(self.rejected_nonfinite[row]),
            "desynced": bool(self.desynced[row]),
            "answer": (
                self.answer[row].tolist() if self.has_answer[row] else None
            ),
            "filter": self.server.export_row(row),
        }

    def import_row(self, row: int, data: dict) -> None:
        """``DKFServer.import_source_state`` for one row."""
        self.expected_seq[row] = int(data["expected_seq"])
        self.last_k[row] = int(data["k"])
        self.last_contact[row] = int(data["last_contact"])
        self.updates_received[row] = int(data["updates_received"])
        self.resyncs_received[row] = int(data["resyncs_received"])
        self.heartbeats_received[row] = int(data["heartbeats_received"])
        self.gaps_detected[row] = int(data["gaps_detected"])
        self.duplicates_ignored[row] = int(data["duplicates_ignored"])
        self.rejected_nonfinite[row] = int(data["rejected_nonfinite"])
        self.desynced[row] = bool(data["desynced"])
        answer = data.get("answer")
        if answer is not None:
            self.answer[row] = np.asarray(answer, dtype=float)
            self.has_answer[row] = True
        filt = data.get("filter")
        if filt is not None:
            self.server.import_row(row, filt)

    def replay_apply(
        self, row: int, kind: str, seq: int, k: int, value, x=None, p=None
    ) -> None:
        """WAL replay: the receive half only (no fabric, no acks).

        The caller interleaves the prediction ticks; ``last_contact``
        lands on the record's sampling instant exactly like the scalar
        replay's ``advance_clock(k)`` + zero-latency delivery.
        """
        self.last_contact[row] = k
        arr = np.array([row], dtype=np.intp)
        zv = np.asarray(value, dtype=float)[None, :]
        if kind == "resync":
            self.server.set_state(
                arr,
                np.asarray(x, dtype=float)[None, :],
                np.asarray(p, dtype=float)[None, :, :],
            )
            self.answer[row] = zv[0]
            self.has_answer[row] = True
            self.expected_seq[row] = seq + 1
            self.resyncs_received[row] += 1
            self.desynced[row] = False
            self.last_k[row] = k
            if self.nis_windows[row] is not None:
                self.nis_windows[row].clear()
            return
        expected = int(self.expected_seq[row])
        if seq < expected:
            self.duplicates_ignored[row] += 1
            return
        if seq > expected:
            self.desynced[row] = True
            self.gaps_detected[row] += 1
            return
        if not self.server.is_primed(row):
            self.server.prime(arr, zv)
        else:
            self._observe_nis(arr, zv)
            self.server.update(arr, zv)
        self.answer[row] = zv[0]
        self.has_answer[row] = True
        self.updates_received[row] += 1
        self.expected_seq[row] = seq + 1
        self.last_k[row] = k

    def server_tick_row(self, row: int, k: int) -> None:
        """Single-row server tick (WAL replay / recovery roll-forward)."""
        self._server_tick(np.array([row], dtype=np.intp), k)

    def reprime_row(self, row: int) -> None:
        """``DKFServer.reprime``: re-anchor a wedged filter's covariance."""
        arr = np.array([row], dtype=np.intp)
        x = self.server.x_row(row)
        p0 = np.eye(self.n)[None] * self.configs[row].p0_scale
        if np.isfinite(x).all():
            self.server.set_state(arr, x[None, :], p0)
        else:
            seed = (
                self.answer[row].copy()
                if self.has_answer[row]
                and np.isfinite(self.answer[row]).all()
                else np.zeros(self.m)
            )
            keep_k = self.server.k_row(row)
            self.server.prime(arr, seed[None, :])
            self.server.set_clock(arr, keep_k)
            if not (
                self.has_answer[row]
                and np.isfinite(self.answer[row]).all()
            ):
                self.answer[row] = self.server.measurement(arr)[0]
                self.has_answer[row] = True
        if self.nis_windows[row] is not None:
            self.nis_windows[row].clear()

    # ------------------------------------------------------------------
    # Splitting (DRS-style rebalance)
    # ------------------------------------------------------------------

    def subset(self, rows: np.ndarray, shard_id: str) -> "ShardRuntime":
        """A new runtime holding copies of ``rows`` (in the given order)."""
        rows = np.asarray(rows, dtype=np.intp)
        out = ShardRuntime(shard_id, self.model, self.track_health)
        out.mirror = self.mirror.take_rows(rows)
        out.server = self.server.take_rows(rows)
        out.dropped_while_down = 0
        for new_i, old in enumerate(rows):
            old = int(old)
            out.ids.append(self.ids[old])
            out.index[self.ids[old]] = new_i
            out.policies.append(self.policies[old])
            out.configs.append(self.configs[old])
            out.streams.append(self.streams[old])
            out.stream_ts.append(self.stream_ts[old])
            out.pending.append(dict(self.pending[old]))
            out.nis_windows.append(
                deque(self.nis_windows[old], maxlen=NIS_WINDOW)
                if self.nis_windows[old] is not None
                else None
            )
            if old in self.loss_fns:
                out.loss_fns[new_i] = self.loss_fns[old]
            if old in self.corrupt_fns:
                out.corrupt_fns[new_i] = self.corrupt_fns[old]
            if old in self.crash_rows:
                out.crash_rows.add(new_i)
            if old in self.sensor_rows:
                out.sensor_rows.add(new_i)
            if old in self.restart_pending:
                out.restart_pending.add(new_i)
        for name in _ROW_INTS:
            setattr(out, name, getattr(self, name)[rows].copy())
        for name in _ROW_BOOLS:
            setattr(out, name, getattr(self, name)[rows].copy())
        out.delta = self.delta[rows].copy()
        out.last_value = self.last_value[rows].copy()
        out.answer = self.answer[rows].copy()
        return out

    def split(self) -> tuple["ShardRuntime", "ShardRuntime"]:
        """Split into two halves (latency budget breached)."""
        if self.rows < 2:
            raise ConfigurationError("cannot split a shard with < 2 rows")
        cut = self.rows // 2
        low = self.subset(np.arange(cut), f"{self.shard_id}a")
        high = self.subset(np.arange(cut, self.rows), f"{self.shard_id}b")
        return low, high

    def merge(
        self, other: "ShardRuntime", shard_id: str | None = None
    ) -> "ShardRuntime":
        """State-preserving inverse of :meth:`split`.

        Returns a new runtime holding this shard's rows followed by
        ``other``'s, with every piece of per-row state -- filter banks,
        transport counters, pending retransmission buffers, NIS
        windows, fault predicates, crash/sensor/restart sets, queued
        acks -- carried across verbatim (row indices renumbered).  A
        merged shard continues exactly where the two parts left off,
        including rows mid-way through slow-path loss recovery.
        """
        if other is self:
            raise ConfigurationError("cannot merge a shard with itself")
        if model_signature(self.model) != model_signature(other.model):
            raise ConfigurationError(
                "cannot merge shards with different model signatures"
            )
        if self.track_health != other.track_health:
            raise ConfigurationError(
                "cannot merge shards with different health tracking"
            )
        overlap = self.index.keys() & other.index.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate rows across merge: {sorted(overlap)}"
            )
        out = ShardRuntime(
            shard_id or f"{self.shard_id}+{other.shard_id}",
            self.model,
            self.track_health,
        )
        out.mirror = self.mirror.concat(other.mirror)
        out.server = self.server.concat(other.server)
        out.dropped_while_down = (
            self.dropped_while_down + other.dropped_while_down
        )
        base = 0
        for part in (self, other):
            for old in range(part.rows):
                new_i = base + old
                out.ids.append(part.ids[old])
                out.index[part.ids[old]] = new_i
                out.policies.append(part.policies[old])
                out.configs.append(part.configs[old])
                out.streams.append(part.streams[old])
                out.stream_ts.append(part.stream_ts[old])
                out.pending.append(dict(part.pending[old]))
                out.nis_windows.append(
                    deque(part.nis_windows[old], maxlen=NIS_WINDOW)
                    if part.nis_windows[old] is not None
                    else None
                )
                if old in part.loss_fns:
                    out.loss_fns[new_i] = part.loss_fns[old]
                if old in part.corrupt_fns:
                    out.corrupt_fns[new_i] = part.corrupt_fns[old]
                if old in part.crash_rows:
                    out.crash_rows.add(new_i)
                if old in part.sensor_rows:
                    out.sensor_rows.add(new_i)
                if old in part.restart_pending:
                    out.restart_pending.add(new_i)
            out._ack_queue.extend(
                (row + base, seq, ok) for row, seq, ok in part._ack_queue
            )
            base += part.rows
        for name in _ROW_INTS:
            setattr(
                out, name,
                np.concatenate(
                    [getattr(self, name), getattr(other, name)]
                ).astype(np.int64),
            )
        for name in _ROW_BOOLS:
            setattr(
                out, name,
                np.concatenate([getattr(self, name), getattr(other, name)]),
            )
        out.delta = np.concatenate([self.delta, other.delta])
        out.last_value = np.concatenate([self.last_value, other.last_value])
        out.answer = np.concatenate([self.answer, other.answer])
        return out


class ShardRouter:
    """Partition streams into shards by model signature (DRS placement).

    Streams whose models share a byte-identical F/H/Q/R signature batch
    into the same shard (up to ``max_shard_rows``); a new signature
    opens a new shard.  The router owns no tick loop -- the engine (or
    worker pool) drives the runtimes it hands out.
    """

    def __init__(
        self, max_shard_rows: int = 4096, track_health: bool = False
    ) -> None:
        if max_shard_rows < 1:
            raise ConfigurationError("max_shard_rows must be positive")
        self.max_shard_rows = max_shard_rows
        self.track_health = track_health
        self.shards: list[ShardRuntime] = []
        self._open: dict[tuple, int] = {}
        self._counter = 0

    def place(self, model: StateSpaceModel) -> ShardRuntime:
        """The shard a stream of this model should join (creating one)."""
        sig = model_signature(model)
        idx = self._open.get(sig)
        if idx is not None and self.shards[idx].rows < self.max_shard_rows:
            return self.shards[idx]
        shard = ShardRuntime(
            f"shard-{self._counter}", model, self.track_health
        )
        self._counter += 1
        self.shards.append(shard)
        self._open[sig] = len(self.shards) - 1
        return shard

    def replace(
        self, old: ShardRuntime, parts: tuple[ShardRuntime, ...]
    ) -> None:
        """Swap a split shard for its halves (rebalance bookkeeping)."""
        idx = self.shards.index(old)
        self.shards[idx : idx + 1] = list(parts)
        # Replacing one shard with several shifts every later shard's
        # index, so the whole open-shard map is rebuilt (last shard of
        # each signature wins -- future placements go there).
        self._reindex()

    def combine(
        self, first: ShardRuntime, second: ShardRuntime
    ) -> ShardRuntime:
        """Merge two sibling shards back into one (scale-down).

        The merged runtime takes ``first``'s slot; ``second``'s slot is
        removed.  Returns the merged shard.
        """
        merged = first.merge(second)
        idx = self.shards.index(first)
        self.shards[idx] = merged
        self.shards.remove(second)
        self._reindex()
        return merged

    def _reindex(self) -> None:
        """Rebuild the signature -> open-shard index after surgery."""
        self._open = {
            model_signature(shard.model): i
            for i, shard in enumerate(self.shards)
        }
