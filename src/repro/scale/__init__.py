"""Vectorized filter-bank scale layer.

Stacks N homogeneous DKF stream pairs into batched numpy state
(:class:`~repro.scale.vector_bank.VectorKalmanBank`), partitions them
into shards by model signature (:class:`~repro.scale.shard.ShardRouter`)
and drives everything through a scalar-API-compatible engine
(:class:`~repro.scale.engine.BatchStreamEngine`).  See docs/SCALING.md.
"""

from repro.scale.engine import BatchStreamEngine
from repro.scale.pool import WorkerPool
from repro.scale.shard import ShardRouter, ShardRuntime, model_signature
from repro.scale.vector_bank import VectorKalmanBank, require_static_model

__all__ = [
    "BatchStreamEngine",
    "WorkerPool",
    "ShardRouter",
    "ShardRuntime",
    "model_signature",
    "VectorKalmanBank",
    "require_static_model",
]
