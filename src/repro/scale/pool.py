"""Worker pool: step independent shards in parallel processes.

Shards are self-contained -- each owns its rows' streams, filter banks
and transport state, and a clean (fault-free, lossless, resilience-off)
run exchanges nothing between shards.  That makes the tick loop
embarrassingly parallel at shard granularity: ship each shard to a
worker, step it ``steps`` times, ship it back.

Determinism contract: a shard's trajectory depends only on its initial
state and the tick range, never on scheduling.  ``Pool.map`` preserves
input order, so the pooled result list is positionally identical to the
inline one and every counter, estimate and answer is bit-equal
regardless of worker count.  (The property test in
``tests/scale/test_pool.py`` pins inline == pooled.)

The pool prefers ``fork`` (cheap, inherits the parent's loaded numpy)
and falls back to ``spawn`` where fork is unavailable.  If dispatch
fails entirely -- unpicklable model initializer, restricted sandbox --
the shards are stepped inline; with fork the parent's objects were
never mutated by a worker, so the fallback is always safe.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.scale.shard import ShardRuntime

__all__ = ["WorkerPool", "run_shard"]


def run_shard(payload: tuple[ShardRuntime, int, int]) -> ShardRuntime:
    """Step one shard ``steps`` ticks from tick ``t0`` (worker entry).

    Module-level so it pickles under both fork and spawn start methods.
    Acks flush once per step, matching the engine's inline loop.
    """
    shard, t0, steps = payload
    started = time.perf_counter()
    for i in range(steps):
        shard.step(t0 + i)
        shard.flush_acks()
    if steps > 0:
        shard.last_step_us = (
            (time.perf_counter() - started) / steps * 1e6
        )
    return shard


class WorkerPool:
    """Map shards over worker processes (or inline when ``workers<=1``)."""

    def __init__(self, workers: int = 0) -> None:
        self.workers = max(0, int(workers))

    @property
    def parallel(self) -> bool:
        """Whether this pool would actually spawn processes."""
        return self.workers > 1

    def resize(self, workers: int) -> int:
        """Grow or shrink the pool (autoscaler actuation); returns it.

        Workers are spawned per :meth:`run` call, so a resize takes
        effect on the next run with zero teardown cost.  Determinism is
        unaffected: a shard's trajectory depends only on its initial
        state and tick range, never on how many processes stepped the
        batch (``tests/scale/test_pool.py`` pins inline == pooled).
        """
        self.workers = max(0, int(workers))
        return self.workers

    def run(
        self, shards: list[ShardRuntime], t0: int, steps: int
    ) -> list[ShardRuntime]:
        """Advance every shard ``steps`` ticks; returns them in order."""
        payloads = [(shard, t0, steps) for shard in shards]
        if not self.parallel or len(shards) < 2:
            return [run_shard(p) for p in payloads]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context("spawn")
        try:
            with ctx.Pool(min(self.workers, len(shards))) as pool:
                return pool.map(run_shard, payloads)
        except Exception:
            # Dispatch failed (pickling, sandbox limits). The parent's
            # shard objects are untouched, so stepping inline is safe.
            return [run_shard(p) for p in payloads]
