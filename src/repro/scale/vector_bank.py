"""Vectorized Kalman filter bank: N homogeneous streams in stacked arrays.

The scalar :class:`~repro.filters.kalman.KalmanFilter` spends most of its
per-reading budget on Python dispatch, not arithmetic: the matrices for the
paper's models are tiny (2x2 for the linear model), so the ~20 numpy calls
per predict/update cycle dominate.  :class:`VectorKalmanBank` stacks the
state of N streams that share one :class:`~repro.filters.models.StateSpaceModel`
into ``(N, n)`` / ``(N, n, n)`` arrays and runs the *same* arithmetic --
identical operation order, identical associativity -- as batched matmul and
einsum calls, so the per-stream Python overhead is amortised across the
whole bank.

Exactness contract: every batched expression below mirrors the scalar
filter's evaluation order (e.g. ``(phi @ P) @ phi.T + Q`` rather than an
algebraically equal regrouping), so a bank row and an independent scalar
filter fed the same inputs stay within a few ULP of each other.  The
property test in ``tests/scale/test_vector_bank.py`` pins this at 1e-10
over hundreds of ticks with random masked updates.

Only constant-matrix models are supported: a time-varying ``phi_k`` (the
sinusoidal power-load model) would need per-row matrix resolution, which
defeats batching.  Such models stay on the scalar engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    DimensionError,
    DivergenceError,
    NonFiniteMeasurementError,
    NotPositiveDefiniteError,
)
from repro.filters.kalman import phi_power
from repro.filters.models import StateSpaceModel

__all__ = ["VectorKalmanBank", "require_static_model"]

#: PSD tolerance matching :func:`repro.filters.kalman.check_covariance`.
_PSD_TOL = 1e-9


def require_static_model(model: StateSpaceModel) -> None:
    """Reject models the bank cannot batch (callable matrices)."""
    for name in ("phi", "h", "q", "r"):
        if callable(getattr(model, name)):
            raise ConfigurationError(
                f"model {model.name!r} has a time-varying {name!r} matrix; "
                "the vector bank batches constant-matrix models only -- "
                "use the scalar StreamEngine for this model"
            )


class VectorKalmanBank:
    """Batched Kalman filters over one shared state-space model.

    Rows are appended with :meth:`add_row` and addressed by integer index
    everywhere else.  All mutating methods take a ``rows`` index array and
    touch only those rows (the masked-update path), so a tick where only a
    handful of streams transmitted pays correction cost for exactly that
    subset.

    Row lifecycle mirrors the scalar DKF filters: a row starts *unprimed*
    (no state), is primed from its first finite measurement exactly like
    ``StateSpaceModel.build_filter``, and then cycles predict/update.
    """

    def __init__(self, model: StateSpaceModel) -> None:
        require_static_model(model)
        self._model = model
        self._phi = np.asarray(model.phi, dtype=float)
        self._h = np.asarray(model.h, dtype=float)
        self._q = np.asarray(model.q, dtype=float)
        self._r = np.asarray(model.r, dtype=float)
        n = self._phi.shape[0]
        m = self._h.shape[0]
        if self._phi.shape != (n, n) or self._h.shape[1] != n:
            raise DimensionError(
                f"inconsistent model shapes: phi {self._phi.shape}, "
                f"h {self._h.shape}"
            )
        self._n = n
        self._m = m
        self._phi_t = self._phi.T.copy()
        self._h_t = self._h.T.copy()
        self._eye = np.eye(n)
        self._pinv_h = np.linalg.pinv(self._h)

        self._x = np.zeros((0, n))
        self._p = np.zeros((0, n, n))
        self._k = np.zeros(0, dtype=np.int64)
        self._primed = np.zeros(0, dtype=bool)
        self._p0_scale = np.zeros(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def model(self) -> StateSpaceModel:
        """The shared state-space model every row runs."""
        return self._model

    @property
    def state_dim(self) -> int:
        """State dimension ``n`` of the shared model."""
        return self._n

    @property
    def measurement_dim(self) -> int:
        """Measurement dimension ``m`` of the shared model."""
        return self._m

    @property
    def rows(self) -> int:
        """Number of rows in the bank."""
        return self._x.shape[0]

    @property
    def x(self) -> np.ndarray:
        """Stacked state estimates ``(N, n)`` (copy)."""
        return self._x.copy()

    @property
    def p(self) -> np.ndarray:
        """Stacked covariances ``(N, n, n)`` (copy)."""
        return self._p.copy()

    @property
    def k(self) -> np.ndarray:
        """Per-row discrete clocks ``(N,)`` (copy)."""
        return self._k.copy()

    @property
    def primed(self) -> np.ndarray:
        """Per-row primed mask ``(N,)`` (copy)."""
        return self._primed.copy()

    def x_row(self, row: int) -> np.ndarray:
        """One row's state estimate ``(n,)`` (copy)."""
        return self._x[row].copy()

    def p_row(self, row: int) -> np.ndarray:
        """One row's covariance ``(n, n)`` (copy)."""
        return self._p[row].copy()

    def k_row(self, row: int) -> int:
        """One row's discrete filter clock."""
        return int(self._k[row])

    def is_primed(self, row: int) -> bool:
        """Whether the row has absorbed its priming measurement."""
        return bool(self._primed[row])

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------

    def add_row(self, p0_scale: float = 1.0) -> int:
        """Append an unprimed row; returns its index."""
        if p0_scale <= 0:
            raise ConfigurationError("p0_scale must be positive")
        self._x = np.concatenate([self._x, np.zeros((1, self._n))])
        self._p = np.concatenate([self._p, np.zeros((1, self._n, self._n))])
        self._k = np.concatenate([self._k, np.zeros(1, dtype=np.int64)])
        self._primed = np.concatenate([self._primed, np.zeros(1, dtype=bool)])
        self._p0_scale = np.concatenate([self._p0_scale, [float(p0_scale)]])
        return self.rows - 1

    def reset_row(self, row: int) -> None:
        """Return a row to the unprimed state (source restart)."""
        self._x[row] = 0.0
        self._p[row] = 0.0
        self._k[row] = 0
        self._primed[row] = False

    def take_rows(self, rows: np.ndarray) -> "VectorKalmanBank":
        """New bank holding copies of ``rows`` (shard splitting)."""
        rows = np.asarray(rows, dtype=np.intp)
        out = VectorKalmanBank(self._model)
        out._x = self._x[rows].copy()
        out._p = self._p[rows].copy()
        out._k = self._k[rows].copy()
        out._primed = self._primed[rows].copy()
        out._p0_scale = self._p0_scale[rows].copy()
        return out

    def concat(self, other: "VectorKalmanBank") -> "VectorKalmanBank":
        """New bank with this bank's rows followed by ``other``'s.

        The inverse of :meth:`take_rows` (shard merging).  Both banks
        must run byte-identical model matrices -- the same condition
        :func:`~repro.scale.shard.model_signature` enforces for shard
        placement.
        """
        for name in ("_phi", "_h", "_q", "_r"):
            if not np.array_equal(getattr(self, name), getattr(other, name)):
                raise ConfigurationError(
                    "cannot concat banks with different model matrices"
                )
        out = VectorKalmanBank(self._model)
        out._x = np.concatenate([self._x, other._x])
        out._p = np.concatenate([self._p, other._p])
        out._k = np.concatenate([self._k, other._k])
        out._primed = np.concatenate([self._primed, other._primed])
        out._p0_scale = np.concatenate([self._p0_scale, other._p0_scale])
        return out

    # ------------------------------------------------------------------
    # Core cycle (masked)
    # ------------------------------------------------------------------

    def prime(self, rows: np.ndarray, z: np.ndarray) -> None:
        """Seed ``rows`` from their first measurements.

        Matches ``StateSpaceModel.build_filter``: ``x0`` from the model's
        initializer (pseudo-inverse embedding by default) and
        ``P0 = I * p0_scale``.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return
        z = np.asarray(z, dtype=float).reshape(rows.size, self._m)
        if self._model.initializer is not None:
            x0 = np.stack(
                [self._model.initial_state(z[i]) for i in range(rows.size)]
            )
        else:
            # pinv(H) @ z per row, same contraction order as the scalar path.
            x0 = z @ self._pinv_h.T
        self._x[rows] = x0
        self._p[rows] = self._eye * self._p0_scale[rows, None, None]
        self._k[rows] = 0
        self._primed[rows] = True

    def predict(self, rows: np.ndarray) -> None:
        """Batched prediction half-cycle for ``rows``.

        ``x^- = phi x`` and ``P^- = (phi P) phi^T + Q``, clock advanced,
        exactly as the scalar :meth:`KalmanFilter.predict`.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return
        # x @ phi.T contracts over the same index order as phi @ x.
        self._x[rows] = self._x[rows] @ self._phi_t
        self._p[rows] = (self._phi @ self._p[rows]) @ self._phi_t + self._q
        self._k[rows] += 1
        bad = ~np.isfinite(self._x[rows]).all(axis=1)
        if bad.any():
            first = int(rows[bad][0])
            raise DivergenceError(
                f"state became non-finite at k={int(self._k[first])} "
                f"(bank row {first})"
            )

    def update(self, rows: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Batched Joseph-form correction for ``rows``; returns the gains.

        Mirrors the scalar :meth:`KalmanFilter.update` term by term:
        ``S = (H P) H^T + R``, ``K`` via ``solve(S^T, (P H^T)^T)^T``,
        ``P = ((I-KH) P)(I-KH)^T + (K R) K^T``, then symmetrisation.

        Returns:
            Gain stack of shape ``(len(rows), n, m)`` -- the property-test
            hook for gain parity with scalar filters.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return np.zeros((0, self._n, self._m))
        z = np.asarray(z, dtype=float).reshape(rows.size, self._m)
        if not np.isfinite(z).all():
            raise NonFiniteMeasurementError(
                "measurement contains NaN or infinity"
            )
        x = self._x[rows]
        p = self._p[rows]
        innovation = z - x @ self._h_t
        s = (self._h @ p) @ self._h_t + self._r
        pht = p @ self._h_t
        gain = np.linalg.solve(
            np.swapaxes(s, 1, 2), np.swapaxes(pht, 1, 2)
        )
        gain = np.swapaxes(gain, 1, 2)
        x = x + np.einsum("rij,rj->ri", gain, innovation)
        i_kh = self._eye - gain @ self._h
        p = (i_kh @ p) @ np.swapaxes(i_kh, 1, 2) + (
            gain @ self._r
        ) @ np.swapaxes(gain, 1, 2)
        p = 0.5 * (p + np.swapaxes(p, 1, 2))
        bad = ~np.isfinite(x).all(axis=1)
        if bad.any():
            first = int(rows[bad][0])
            raise DivergenceError(
                f"state became non-finite at k={int(self._k[first])} "
                f"(bank row {first})"
            )
        self._x[rows] = x
        self._p[rows] = p
        return gain

    def measurement(self, rows: np.ndarray) -> np.ndarray:
        """Predicted measurements ``H x`` for ``rows``, shape ``(len, m)``."""
        rows = np.asarray(rows, dtype=np.intp)
        return self._x[rows] @ self._h_t

    def innovation_covariance(self, rows: np.ndarray) -> np.ndarray:
        """``S = (H P) H^T + R`` per row, shape ``(len, m, m)``."""
        rows = np.asarray(rows, dtype=np.intp)
        return (self._h @ self._p[rows]) @ self._h_t + self._r

    def forecast_k(self, rows: np.ndarray, steps: int) -> np.ndarray:
        """Measurement predictions ``steps`` cycles ahead, no mutation.

        ``H (phi^steps x)`` per row via the shared memoised
        :func:`~repro.filters.kalman.phi_power` cache -- one power
        computation serves the whole bank (and every scalar filter of the
        same model).  Matches :meth:`KalmanFilter.predict_k`.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        rows = np.asarray(rows, dtype=np.intp)
        if steps == 0:
            return self.measurement(rows)
        power = phi_power(self._phi, steps)
        return (self._x[rows] @ power.T) @ self._h_t

    # ------------------------------------------------------------------
    # State injection / extraction
    # ------------------------------------------------------------------

    def set_state(
        self, rows: np.ndarray, x: np.ndarray, p: np.ndarray
    ) -> None:
        """Overwrite posterior state for ``rows`` (resync / reprime).

        Covariances are validated and symmetrised exactly like
        :func:`~repro.filters.kalman.check_covariance` (batched eigvalsh).
        Clocks are left unchanged, matching ``KalmanFilter.set_state``.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return
        x = np.asarray(x, dtype=float).reshape(rows.size, self._n)
        p = np.asarray(p, dtype=float).reshape(rows.size, self._n, self._n)
        sym = 0.5 * (p + np.swapaxes(p, 1, 2))
        eigvals = np.linalg.eigvalsh(sym)
        tol = _PSD_TOL * np.maximum(
            1.0, np.abs(sym).reshape(rows.size, -1).max(axis=1)
        )
        bad = eigvals[:, 0] < -tol
        if bad.any():
            worst = float(eigvals[bad, 0].min())
            raise NotPositiveDefiniteError(
                f"covariance has negative eigenvalue {worst:.3e}"
            )
        self._x[rows] = x
        self._p[rows] = sym
        self._primed[rows] = True

    def set_clock(self, rows: np.ndarray, k: np.ndarray | int) -> None:
        """Move per-row clocks (checkpoint restore / resync)."""
        rows = np.asarray(rows, dtype=np.intp)
        k = np.asarray(k, dtype=np.int64)
        if np.any(k < 0):
            raise ConfigurationError("filter clock must be non-negative")
        self._k[rows] = k

    def export_row(self, row: int) -> dict | None:
        """Checkpoint payload for one row: ``{"x", "p", "k"}`` or None.

        Shape-compatible with the scalar server's per-source filter export
        so batch and scalar checkpoints interchange.
        """
        if not self._primed[row]:
            return None
        return {
            "x": self._x[row].tolist(),
            "p": self._p[row].tolist(),
            "k": int(self._k[row]),
        }

    def import_row(self, row: int, payload: dict) -> None:
        """Restore one row from an :meth:`export_row` payload."""
        self.set_state(
            np.array([row]),
            np.asarray(payload["x"], dtype=float)[None, :],
            np.asarray(payload["p"], dtype=float)[None, :, :],
        )
        self.set_clock(np.array([row]), int(payload["k"]))

    # ------------------------------------------------------------------
    # Vectorized health battery (watchdog support)
    # ------------------------------------------------------------------

    def health_battery(
        self, rows: np.ndarray, symmetry_tol: float, psd_tol: float
    ) -> dict[str, np.ndarray]:
        """Divergence-watchdog reductions for ``rows``, fully vectorized.

        Returns boolean arrays (aligned with ``rows``) for each covariance
        and state check the scalar watchdog performs per stream:
        ``state_nonfinite``, ``covariance_nonfinite``, ``asymmetric``,
        ``not_psd``, plus the covariance traces for the ceiling check.
        ``asymmetric``/``not_psd`` are False wherever the covariance is
        non-finite (the scalar battery short-circuits there too).
        """
        rows = np.asarray(rows, dtype=np.intp)
        cnt = rows.size
        if cnt == 0:
            zero = np.zeros(0, dtype=bool)
            return {
                "state_nonfinite": zero,
                "covariance_nonfinite": zero.copy(),
                "asymmetric": zero.copy(),
                "not_psd": zero.copy(),
                "trace": np.zeros(0),
            }
        x = self._x[rows]
        p = self._p[rows]
        state_nf = ~np.isfinite(x).all(axis=1)
        cov_nf = ~np.isfinite(p).reshape(cnt, -1).all(axis=1)
        scale = np.maximum(
            1.0,
            np.where(
                cov_nf, 1.0, np.abs(np.where(np.isfinite(p), p, 0.0))
                .reshape(cnt, -1).max(axis=1),
            ),
        )
        resid = np.abs(p - np.swapaxes(p, 1, 2)).reshape(cnt, -1)
        asym = np.zeros(cnt, dtype=bool)
        finite = ~cov_nf
        asym[finite] = resid[finite].max(axis=1) > symmetry_tol * scale[finite]
        not_psd = np.zeros(cnt, dtype=bool)
        check = finite & ~asym
        if check.any():
            sym = 0.5 * (p[check] + np.swapaxes(p[check], 1, 2))
            eigvals = np.linalg.eigvalsh(sym)
            not_psd[check] = eigvals[:, 0] < -psd_tol * scale[check]
        trace = np.where(
            cov_nf, np.inf, np.trace(p, axis1=1, axis2=2)
        )
        return {
            "state_nonfinite": state_nf,
            "covariance_nonfinite": cov_nf,
            "asymmetric": asym,
            "not_psd": not_psd,
            "trace": trace,
        }
