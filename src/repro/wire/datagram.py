"""UDP encapsulation of the PROTOCOL.md §5 frames (one frame, one datagram).

The wire layer adds **no** framing of its own: every datagram payload is
exactly one CRC-32-sealed frame from :mod:`repro.dkf.protocol`, unchanged
(PROTOCOL.md §9).  The codec's trailer already gives per-datagram
integrity, UDP gives per-datagram boundaries, and datagram loss maps
onto the protocol's existing loss story -- a missing ack triggers the
source's resync retransmission exactly as it does on the simulated
fabric.

What this module owns is the *mechanics* of moving those datagrams fast
on one box:

* :func:`open_udp_socket` -- a non-blocking socket with enlarged kernel
  buffers (loopback bursts overflow the default buffers long before the
  CPU saturates).
* :class:`BatchDatagramReceiver` -- a ``loop.add_reader`` callback that
  drains *many* datagrams per wakeup.  asyncio's DatagramProtocol reads
  one datagram per event-loop pass, which measures out at a few thousand
  datagrams/second; batch-draining the same socket sustains several
  hundred thousand.
* :func:`corrupt_datagram` -- the deterministic single-bit flip the
  in-process :class:`~repro.dsms.network.NetworkFabric` uses, applied to
  a real payload so CRC rejection can be exercised over real sockets.
* :class:`WireCounters` -- receiver-side traffic ledger with the exact
  conservation law the soak harness asserts.
* :class:`PoisonLedger` -- the typed rejection ledger behind
  ``frames_rejected_total{reason=...}`` (PROTOCOL.md §9): every datagram
  or query line the runtime refuses lands here under a stable reason
  label, so adversarial input is *observable*, never merely swallowed.
"""

from __future__ import annotations

import socket
import zlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.telemetry import NULL_TELEMETRY

__all__ = [
    "MAX_DATAGRAM_BYTES",
    "WireCounters",
    "PoisonLedger",
    "BatchDatagramReceiver",
    "open_udp_socket",
    "corrupt_datagram",
]

#: Largest frame the receiver accepts; a resync for a 4-state filter is
#: ~150 bytes, so anything near this bound is garbage, not protocol.
MAX_DATAGRAM_BYTES = 4096


def open_udp_socket(
    host: str, port: int, buffer_bytes: int = 4 << 20
) -> socket.socket:
    """A bound, non-blocking UDP socket with enlarged kernel buffers.

    The kernel grants at most ``rmem_max``/``wmem_max``; the request is
    best-effort and the granted size is whatever ``getsockopt`` then
    reports (callers can read it back for diagnostics).
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
    sock.bind((host, port))
    sock.setblocking(False)
    return sock


def corrupt_datagram(data: bytes, index: int) -> bytes:
    """Flip one deterministically chosen bit of a datagram payload.

    Same derivation as the in-process fabric's ``_corrupt`` (the flipped
    bit position is ``crc32("corrupt:<index>") mod bits``), so a wire
    test and a fabric test corrupt the same frame the same way and their
    accounting can be compared one-to-one.
    """
    flipped = bytearray(data)
    bit = zlib.crc32(f"corrupt:{index}".encode()) % (len(flipped) * 8)
    flipped[bit // 8] ^= 1 << (bit % 8)
    return bytes(flipped)


@dataclass
class WireCounters:
    """Receiver-side traffic ledger for one UDP endpoint.

    Every datagram handed up by the kernel lands in exactly one bucket:
    decoded (a valid frame from a registered source), corrupt (CRC
    trailer mismatch), unknown (intact CRC but an unresolvable source
    hash or malformed body) or oversize (dropped before decode).  Tail
    drops at the bounded inbox are counted separately -- those datagrams
    *were* received.  Kernel-level drops (socket buffer overflow) are
    invisible here by nature; the soak harness surfaces them as the
    non-negative residual ``sent - received`` across both endpoints.
    """

    datagrams_received: int = 0
    bytes_received: int = 0
    frames_decoded: int = 0
    frames_corrupt: int = 0
    frames_unknown: int = 0
    frames_oversize: int = 0
    inbox_dropped: int = 0
    datagrams_sent: int = 0
    bytes_sent: int = 0
    send_failures: int = 0

    def conservation_holds(self) -> bool:
        """Receiver-side conservation: every datagram is accounted once.

        ``received == decoded + corrupt + unknown + oversize + inbox
        dropped + still queued`` is asserted by the caller, who knows the
        live queue depth; this form checks the processed prefix.
        """
        processed = (
            self.frames_decoded
            + self.frames_corrupt
            + self.frames_unknown
            + self.frames_oversize
            + self.inbox_dropped
        )
        return processed <= self.datagrams_received

    def as_dict(self) -> dict[str, int]:
        """The ledger as a plain dict (summaries/telemetry)."""
        return {
            "datagrams_received": self.datagrams_received,
            "bytes_received": self.bytes_received,
            "frames_decoded": self.frames_decoded,
            "frames_corrupt": self.frames_corrupt,
            "frames_unknown": self.frames_unknown,
            "frames_oversize": self.frames_oversize,
            "inbox_dropped": self.inbox_dropped,
            "datagrams_sent": self.datagrams_sent,
            "bytes_sent": self.bytes_sent,
            "send_failures": self.send_failures,
        }


class PoisonLedger:
    """Typed ledger of rejected input: ``frames_rejected_total{reason=}``.

    One instance is shared by everything that refuses input -- the UDP
    decode path, the TCP query parser, the connection-admission guards.
    Each rejection lands under a stable, lowercase reason label (the
    taxonomy is normative in PROTOCOL.md §9): ``corrupt``, ``unknown``,
    ``oversize``, ``future_epoch``, ``bad_json``, ``not_object``,
    ``line_too_long``, ``idle_timeout``, ``too_many_connections``,
    ``rate_limited``, ``handler_error``.  The plain dict always counts
    (reports and gates read it even under :class:`NullTelemetry`); the
    labelled counter is emitted only when telemetry is enabled.
    """

    def __init__(self, telemetry=None) -> None:
        self._tel = telemetry or NULL_TELEMETRY
        self.reasons: dict[str, int] = {}

    def reject(self, reason: str) -> None:
        """Count one rejection under ``reason``."""
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        if self._tel.enabled:
            self._tel.metrics.counter(
                "frames_rejected_total", {"reason": reason}
            ).inc()

    @property
    def total(self) -> int:
        """Rejections across every reason."""
        return sum(self.reasons.values())

    def as_dict(self) -> dict[str, int]:
        """The ledger as a reason-sorted plain dict (reports)."""
        return dict(sorted(self.reasons.items()))


class BatchDatagramReceiver:
    """Drains a non-blocking UDP socket in batches off the event loop.

    Args:
        sock: The bound non-blocking socket.
        on_datagram: Callback ``(payload, addr) -> None`` invoked for
            every received datagram; must be cheap (enqueue, count) --
            decode happens later, on the runtime's tick budget.
        counters: Shared ledger; receive counts land here.
        chunk: Max datagrams drained per reader wakeup.  Bounding the
            drain keeps one flood from starving the loop's other tasks
            (the TCP query server most of all).
        on_oversize: Optional callback invoked (no arguments) for each
            datagram dropped before decode for exceeding
            :data:`MAX_DATAGRAM_BYTES` -- the poison ledger's hook.

    Call :meth:`install` with the running loop; :meth:`close` removes
    the reader.  The socket's lifetime belongs to the caller.
    """

    def __init__(
        self,
        sock: socket.socket,
        on_datagram: Callable[[bytes, tuple], None],
        counters: WireCounters | None = None,
        chunk: int = 2000,
        on_oversize: Callable[[], None] | None = None,
    ) -> None:
        self._sock = sock
        self._on_datagram = on_datagram
        self.counters = counters if counters is not None else WireCounters()
        self._chunk = chunk
        self._on_oversize = on_oversize
        self._loop = None

    def install(self, loop) -> None:
        """Register the drain callback with the event loop."""
        self._loop = loop
        loop.add_reader(self._sock.fileno(), self._drain)

    def close(self) -> None:
        """Deregister from the loop (the socket stays open)."""
        if self._loop is not None:
            self._loop.remove_reader(self._sock.fileno())
            self._loop = None

    def _drain(self) -> None:
        counters = self.counters
        on_datagram = self._on_datagram
        recvfrom = self._sock.recvfrom
        for _ in range(self._chunk):
            try:
                data, addr = recvfrom(MAX_DATAGRAM_BYTES + 1)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            counters.datagrams_received += 1
            counters.bytes_received += len(data)
            if len(data) > MAX_DATAGRAM_BYTES:
                counters.frames_oversize += 1
                if self._on_oversize is not None:
                    self._on_oversize()
                continue
            on_datagram(data, addr)
