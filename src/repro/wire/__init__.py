"""repro.wire -- the asyncio real-wire runtime.

Everything below this package is sans-IO and tick-denominated; this
package is where the simulated fabric becomes real sockets.  UDP
datagrams carry the PROTOCOL.md §5 frames byte-for-byte unchanged (§9:
one frame per datagram, no extra framing), a line-delimited JSON TCP
API serves ``answer``/``forecast`` with the same staleness and
quarantine honesty flags the tick engine's ``answers()`` carries, and
one :class:`~repro.wire.scheduler.Scheduler` seam holds both notions of
time -- the seeded deterministic tick backend and the wall-clock
:class:`~repro.wire.runtime.AsyncRuntime`.

See ``docs/WIRE.md`` for the architecture and the 100k-source soak
story.
"""

from repro.wire.chaos import (
    CHAOS_SCHEMA,
    ChannelShaper,
    ChaosCoordinator,
    ChaosProfile,
    FuzzBarrage,
    run_chaos,
)
from repro.wire.config import WireConfig
from repro.wire.datagram import (
    MAX_DATAGRAM_BYTES,
    BatchDatagramReceiver,
    PoisonLedger,
    WireCounters,
    corrupt_datagram,
    open_udp_socket,
)
from repro.wire.fleet import LiteFleet, StepperFleet, collision_free_ids
from repro.wire.query import QueryServer, query_line
from repro.wire.runtime import AsyncRuntime, StallWatchdog
from repro.wire.scheduler import Scheduler, TickScheduler
from repro.wire.server import WireServer
from repro.wire.soak import SOAK_SCHEMA, run_soak

__all__ = [
    "WireConfig",
    "WireCounters",
    "PoisonLedger",
    "MAX_DATAGRAM_BYTES",
    "BatchDatagramReceiver",
    "open_udp_socket",
    "corrupt_datagram",
    "LiteFleet",
    "StepperFleet",
    "collision_free_ids",
    "WireServer",
    "QueryServer",
    "query_line",
    "Scheduler",
    "TickScheduler",
    "AsyncRuntime",
    "StallWatchdog",
    "SOAK_SCHEMA",
    "run_soak",
    "CHAOS_SCHEMA",
    "ChaosProfile",
    "ChannelShaper",
    "ChaosCoordinator",
    "FuzzBarrage",
    "run_chaos",
]
