"""Chaos engineering for the real-wire runtime (PROTOCOL.md §9).

``repro wire --chaos`` runs the ordinary soak loop with four layers of
deliberate hostility stacked on top, all seeded so the *decisions* --
never the wall-clock outcomes -- replay exactly:

1. **Socket-level fault injection.**  A :class:`ChannelShaper` sits on
   each direction's send seam (:meth:`~repro.wire.fleet.LiteFleet.
   install_send_shaper`, :meth:`~repro.wire.server.WireServer.
   install_send_shaper`) and drops, duplicates, reorders, delays and
   bit-corrupts datagrams.  Loss runs on the PR-1
   :class:`~repro.dsms.faults.GilbertElliottLoss` burst chain; scheduled
   partitions of a seeded source subset reuse the PR-5
   :class:`~repro.dsms.faults.FaultSchedule` partition machinery (the
   shaper peeks the §5 header's source hash to route the cut); a
   mid-run server socket rebind exercises the re-open path.
2. **Adversarial input.**  A :class:`FuzzBarrage` fires seeded garbage
   at both ports every tick -- random bytes, truncated and oversized
   datagrams, valid-CRC frames from unregistered sources, replayed and
   future-epoch frames, malformed/non-object/deeply-nested/huge JSON,
   one slow-loris connection -- and asserts that every refusal is a
   *typed* rejection in the poison ledger and that nothing raises past
   a handler (the event loop's exception handler is the tripwire).
3. **Stall injection.**  Scheduled synchronous sleeps block the event
   loop so the :class:`~repro.wire.runtime.StallWatchdog` must detect
   real lag, emit ``wire.stall`` and escalate.
4. **The drain/restart drill.**  Mid-run, the coordinator captures the
   fleet's highest received cumulative acks, drains the runtime through
   the PR-3 checkpoint machinery, restarts it on the same endpoints and
   proves (a) recovery is bit-identical (canonical-JSON CRC of the
   re-exported state equals the snapshot's) and (b) **no acknowledged
   update was lost**: every source's restored ``expected_seq`` is at
   least the highest ack the fleet ever received.

The run writes two artifacts.  ``chaos-report.json`` contains only
deterministic content -- the profile, the workload fields, schedule
digests of the seeded fault decisions, and the gate booleans -- and is
byte-identical across same-seed runs (CI ``cmp``-asserts this).  The
measured side (latencies, counts, residuals) goes in the ordinary soak
summary, which is never compared byte-wise.
"""

from __future__ import annotations

import asyncio
import json
import math
import struct
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.dkf.protocol import UpdateMessage, encode_message
from repro.dsms.faults import FaultSchedule, GilbertElliottLoss
from repro.errors import ConfigurationError
from repro.obs import Telemetry
from repro.wire.config import WireConfig
from repro.wire.datagram import MAX_DATAGRAM_BYTES, corrupt_datagram
from repro.wire.runtime import AsyncRuntime
from repro.wire.soak import _build_fleet, _conservation

__all__ = [
    "CHAOS_SCHEMA",
    "ChaosProfile",
    "ChannelShaper",
    "FuzzBarrage",
    "ChaosCoordinator",
    "run_chaos",
]

#: Schema tag carried by every chaos report artifact.
CHAOS_SCHEMA = "repro.wire-chaos/v1"

#: Uniform draws materialised per block (lazy, memoised -- replay-exact
#: regardless of query order, the GilbertElliottLoss discipline).
_DRAW_BLOCK = 4096

#: Decision-schedule prefix length digested into the report.
_DIGEST_PREFIX = 2048

#: Fraction of the fleet that must be primed after the re-prime.
_PRIMED_FLOOR = 0.99


@dataclass(frozen=True)
class ChaosProfile:
    """Seeded fault mix for one chaos run (deterministic by content).

    Rates are per-datagram on each shaped direction; ticks are runtime
    ticks.  A tick field of 0 disables that injection.

    Attributes:
        ge_p_enter: Gilbert-Elliott good-to-bad transition probability.
        ge_p_exit: Bad-to-good transition probability.
        ge_loss_good: Loss probability in the good state.
        ge_loss_bad: Loss probability in the bad state.
        corrupt_prob: Per-datagram single-bit-flip probability.
        duplicate_prob: Per-datagram duplication probability.
        reorder_prob: Probability a datagram is held back and released
            after up to ``reorder_window`` later sends (or at the next
            tick pump, whichever comes first).
        reorder_window: Held datagrams a direction may accumulate.
        delay_prob: Probability a datagram is released via a wall-clock
            timer instead of inline.
        delay_max_s: Upper bound of the seeded delay draw.
        partition_fraction: Fraction of sources cut from the server.
        partition_at: Tick the partition starts (0 = none).
        partition_heal_at: Tick the partition heals.
        rebind_tick: Tick the server's UDP socket is torn down and
            re-bound on the same endpoint (0 = never).
        drain_tick: Tick the drain/restart drill fires (0 = never).
        stall_ticks: Ticks at which a synchronous sleep blocks the loop.
        stall_sleep_scale: Sleep length as a multiple of the stall
            budget (must exceed 1.0 to be detectable).
        fuzz_from_tick: First tick of the adversarial barrage (0 = no
            fuzzing).
        fuzz_per_tick: UDP fuzz datagrams per tick.
    """

    ge_p_enter: float = 0.02
    ge_p_exit: float = 0.4
    ge_loss_good: float = 0.005
    ge_loss_bad: float = 0.9
    corrupt_prob: float = 0.01
    duplicate_prob: float = 0.01
    reorder_prob: float = 0.05
    reorder_window: int = 4
    delay_prob: float = 0.02
    delay_max_s: float = 0.05
    partition_fraction: float = 0.1
    partition_at: int = 0
    partition_heal_at: int = 0
    rebind_tick: int = 0
    drain_tick: int = 0
    stall_ticks: tuple[int, ...] = ()
    stall_sleep_scale: float = 1.5
    fuzz_from_tick: int = 0
    fuzz_per_tick: int = 8

    @classmethod
    def reference(cls, ticks: int) -> "ChaosProfile":
        """The acceptance profile: ~5% GE loss, 1% corrupt, reorder
        window 4, a sixth of the run partitioned, one stall, one socket
        rebind and one mid-run drain/restart, fuzzing throughout."""
        return cls(
            partition_at=max(2, ticks // 5),
            partition_heal_at=max(3, (2 * ticks) // 5),
            rebind_tick=max(3, ticks // 2),
            drain_tick=max(4, (2 * ticks) // 3),
            stall_ticks=(max(2, ticks // 4),),
            fuzz_from_tick=2,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (tuples become lists)."""
        out = asdict(self)
        out["stall_ticks"] = list(self.stall_ticks)
        return out


class ChannelShaper:
    """Seeded fault shaping on one direction's send seam.

    Installed via ``install_send_shaper``; called as
    ``shaper(payload, addr, raw_send)`` and invokes ``raw_send`` for
    every datagram that genuinely reaches the socket, so the endpoint's
    sent counters stay truthful under shaping.  All decisions derive
    from ``(seed, channel, index)`` -- drop from the Gilbert-Elliott
    chain, the rest from memoised per-index uniform draws -- so any
    interleaving replays the same schedule.

    Args:
        name: Channel label (``data`` or ``ack``), part of the seed.
        profile: The fault mix.
        seed: Root seed (the run's config seed).
        schedule: Optional :class:`FaultSchedule` whose partitions sever
            this channel; requires ``index_lookup``.
        index_lookup: ``source-hash -> source-id`` map for header peeks
            (partition routing).
    """

    def __init__(
        self,
        name: str,
        profile: ChaosProfile,
        seed: int,
        schedule: FaultSchedule | None = None,
        index_lookup: dict[int, str] | None = None,
    ) -> None:
        self.name = name
        self._profile = profile
        self._channel_id = zlib.crc32(f"chaos:{name}".encode())
        self._seed = seed
        self._loss = GilbertElliottLoss(
            profile.ge_p_enter,
            profile.ge_p_exit,
            loss_good=profile.ge_loss_good,
            loss_bad=profile.ge_loss_bad,
            seed=seed ^ self._channel_id,
        )
        self._schedule = schedule
        self._index_lookup = index_lookup or {}
        self._blocks: dict[int, np.ndarray] = {}
        self._loop = None
        self._held: list[tuple[bytes, tuple, object]] = []
        self._next = 0
        self.dropped = 0
        self.partition_dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.passed = 0

    def bind_loop(self, loop) -> None:
        """Attach the event loop used for delayed releases."""
        self._loop = loop

    def _draws(self, index: int) -> np.ndarray:
        """Five independent uniforms for datagram ``index``: corrupt,
        duplicate, delay, delay-amount, reorder (memoised per block)."""
        block, offset = divmod(index, _DRAW_BLOCK)
        rows = self._blocks.get(block)
        if rows is None:
            rng = np.random.default_rng(
                [self._seed, self._channel_id, block]
            )
            rows = rng.random((_DRAW_BLOCK, 5))
            self._blocks[block] = rows
        return rows[offset]

    def _peek_source(self, payload: bytes) -> str | None:
        if len(payload) < 5:
            return None
        (source_hash,) = struct.unpack("!I", payload[1:5])
        return self._index_lookup.get(source_hash)

    def __call__(self, payload: bytes, addr: tuple, raw_send) -> None:
        index = self._next
        self._next += 1
        profile = self._profile
        if self._schedule is not None:
            source_id = self._peek_source(payload)
            if source_id is not None and self._schedule.link_severed(
                source_id, "server"
            ):
                self.partition_dropped += 1
                return
        if self._loss(index):
            self.dropped += 1
            return
        draws = self._draws(index)
        if draws[0] < profile.corrupt_prob:
            payload = corrupt_datagram(payload, index)
            self.corrupted += 1
        copies = 1
        if draws[1] < profile.duplicate_prob:
            copies = 2
            self.duplicated += 1
        if (
            draws[2] < profile.delay_prob
            and profile.delay_max_s > 0
            and self._loop is not None
        ):
            delay_s = float(draws[3]) * profile.delay_max_s
            self.delayed += 1
            for _ in range(copies):
                self._loop.call_later(delay_s, raw_send, payload, addr)
            return
        if (
            draws[4] < profile.reorder_prob
            and profile.reorder_window > 0
        ):
            self.reordered += 1
            for _ in range(copies):
                self._held.append((payload, addr, raw_send))
            while len(self._held) > profile.reorder_window:
                held_payload, held_addr, held_send = self._held.pop(0)
                held_send(held_payload, held_addr)
            return
        self.passed += 1
        for _ in range(copies):
            raw_send(payload, addr)

    def pump(self) -> None:
        """Release every held datagram (called once per tick)."""
        held, self._held = self._held, []
        for payload, addr, raw_send in held:
            raw_send(payload, addr)

    def schedule_digest(self, prefix: int = _DIGEST_PREFIX) -> int:
        """CRC-32 over the decision schedule's prefix.

        A pure function of ``(seed, channel)``: the first ``prefix``
        loss decisions plus the first uniform-draw block.  Two runs
        with the same seed agree on this before any traffic flows --
        the determinism pin the chaos report carries.
        """
        digest = 0
        for index in range(prefix):
            digest = zlib.crc32(
                b"1" if self._loss(index) else b"0", digest
            )
        return zlib.crc32(self._draws(0).tobytes(), digest)

    def summary(self) -> dict[str, int]:
        """Applied-decision counts (measured; not in the report)."""
        return {
            "offered": self._next,
            "passed": self.passed,
            "dropped": self.dropped,
            "partition_dropped": self.partition_dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
        }


class FuzzBarrage:
    """Seeded adversarial input against both live ports.

    Every tick from ``fuzz_from_tick`` on, the barrage sends a seeded
    mix of hostile datagrams at the UDP port and hostile request lines
    at the TCP port, reading every TCP reply and recording any that is
    not a JSON object (the "nothing raises past the handler" probe is
    the event loop's exception handler, owned by the coordinator).  One
    slow-loris connection is opened at the first fuzz tick and must be
    forcibly closed by the server's idle deadline before teardown.
    """

    def __init__(
        self, config: WireConfig, real_source: str, per_tick: int = 8
    ) -> None:
        self._config = config
        self._real_source = real_source
        self._per_tick = max(1, per_tick)
        self._sock = None
        self._loris: tuple | None = None
        self._loris_started_s: float | None = None
        self._loris_allowed = False
        self.datagrams_sent = 0
        self.lines_sent = 0
        self.bad_responses: list[str] = []
        self.loris_started = False
        self.loris_closed = False

    def open(self, loop) -> None:
        """Create the non-blocking UDP socket the barrage fires from."""
        import socket as socket_mod

        self._sock = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_DGRAM
        )
        self._sock.setblocking(False)

    def _payloads(self, tick: int) -> list[bytes]:
        """The tick's seeded UDP barrage (pure function of seed+tick)."""
        config = self._config
        rng = np.random.default_rng([config.seed, 5, tick])
        kinds = rng.integers(0, 6, self._per_tick)
        payloads: list[bytes] = []
        for kind in kinds:
            if kind == 0:  # random bytes (CRC rejects)
                size = int(rng.integers(1, 200))
                payloads.append(rng.bytes(size))
            elif kind == 1:  # oversize (dropped before decode)
                payloads.append(
                    rng.bytes(MAX_DATAGRAM_BYTES + 1 + int(rng.integers(0, 64)))
                )
            elif kind == 2:  # truncated valid frame (CRC rejects)
                frame = encode_message(
                    UpdateMessage(
                        source_id=self._real_source,
                        seq=1,
                        k=tick,
                        value=np.array([0.0]),
                    )
                )
                payloads.append(frame[: max(1, len(frame) - 3)])
            elif kind == 3:  # intact CRC, unregistered source hash
                payloads.append(
                    encode_message(
                        UpdateMessage(
                            source_id=f"fuzz-ghost-{int(rng.integers(0, 8))}",
                            seq=0,
                            k=tick,
                            value=np.array([1.0]),
                        )
                    )
                )
            elif kind == 4:  # future epoch (forged timestamp)
                payloads.append(
                    encode_message(
                        UpdateMessage(
                            source_id=self._real_source,
                            seq=0,
                            k=2_000_000 + tick,
                            value=np.array([2.0]),
                        )
                    )
                )
            else:  # replayed priming frame (duplicate; tolerated)
                payloads.append(
                    encode_message(
                        UpdateMessage(
                            source_id=self._real_source,
                            seq=0,
                            k=1,
                            value=np.array([3.0]),
                        )
                    )
                )
        return payloads

    def plan_digest(self, ticks: int) -> int:
        """CRC-32 over the full seeded barrage (deterministic)."""
        digest = 0
        for tick in range(1, ticks + 1):
            for payload in self._payloads(tick):
                digest = zlib.crc32(payload, digest)
        return digest

    async def tick(
        self, tick: int, runtime: AsyncRuntime, loris_ok: bool = True
    ) -> None:
        """Fire one tick of the barrage at the live runtime."""
        self._loris_allowed = loris_ok
        udp = runtime.udp_endpoint
        if self._sock is not None and udp is not None:
            for payload in self._payloads(tick):
                try:
                    self._sock.sendto(payload, udp)
                    self.datagrams_sent += 1
                except (BlockingIOError, OSError):
                    pass
        await self._fuzz_tcp(tick, runtime)

    async def _fuzz_tcp(self, tick: int, runtime: AsyncRuntime) -> None:
        tcp = runtime.tcp_endpoint
        if tcp is None or runtime.query is None:
            return
        lines = [
            b'{"op": "ping"',  # bad JSON
            b"[1,2,3]",  # valid JSON, not an object
            b'"just a string"',
            b'{"op": "no-such-op"}',
            b'{"op": "answer", "source_id": 5}',
            b'{"op": "answers", "limit": "all"}',
            b'{"op": "forecast", "source_id": "%b", "steps": -2}'
            % self._real_source.encode(),
        ]
        if tick % 5 == 0:
            lines.append(b"[" * 5000 + b"]" * 5000)  # nesting bomb
        try:
            reader, writer = await asyncio.open_connection(*tcp)
        except OSError:
            return
        try:
            for line in lines:
                writer.write(line + b"\n")
                await writer.drain()
                reply = await asyncio.wait_for(reader.readline(), 5.0)
                self.lines_sent += 1
                if not reply:
                    break
                try:
                    decoded = json.loads(reply)
                except json.JSONDecodeError:
                    decoded = None
                if not isinstance(decoded, dict):
                    self.bad_responses.append(reply.decode(errors="replace"))
        except (asyncio.TimeoutError, ConnectionResetError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if tick % 7 == 0:
            await self._fuzz_huge_line(tcp)
        if self._loris is None and self._loris_allowed:
            # The loris must be evicted by the *idle deadline*, not by a
            # scheduled drain tearing the listener down -- so it only
            # starts once the drill (if any) is behind us.
            await self._start_loris(tcp)

    async def _fuzz_huge_line(self, tcp: tuple) -> None:
        """A line past the 64 KiB cap on its own connection."""
        try:
            reader, writer = await asyncio.open_connection(*tcp)
        except OSError:
            return
        try:
            writer.write(b"a" * 70_000 + b"\n")
            await writer.drain()
            self.lines_sent += 1
            await asyncio.wait_for(reader.readline(), 5.0)
        except (asyncio.TimeoutError, ConnectionResetError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _start_loris(self, tcp: tuple) -> None:
        """Connect, write half a request, go silent."""
        try:
            reader, writer = await asyncio.open_connection(*tcp)
        except OSError:
            return
        writer.write(b'{"op": "ans')  # never finishes the line
        try:
            await writer.drain()
        except (ConnectionResetError, OSError):
            return
        self._loris = (reader, writer)
        self._loris_started_s = time.monotonic()
        self.loris_started = True

    async def teardown(self) -> None:
        """Verify the loris was evicted; close everything."""
        if self._loris is not None:
            reader, writer = self._loris
            # The server owes us an eviction by its idle deadline.  Wait
            # out whatever remains of that deadline, then expect EOF.
            waited = time.monotonic() - (self._loris_started_s or 0.0)
            remaining = max(
                0.5, self._config.query_idle_timeout_s - waited + 2.0
            )
            try:
                await asyncio.wait_for(reader.read(), remaining)
                self.loris_closed = True
            except (asyncio.TimeoutError, ConnectionResetError, OSError):
                self.loris_closed = False
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._loris = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None


class ChaosCoordinator:
    """Orchestrates one chaos run against a live :class:`AsyncRuntime`.

    The runtime calls :meth:`install` once the sockets are open,
    :meth:`on_tick` after every tick and :meth:`teardown` on the way
    out.  All scheduling is tick-driven and seeded; the coordinator
    owns the shapers, the fuzz barrage, the partition schedule, the
    stall injections and the drain/restart drill, and accumulates the
    drill verdicts the gates read.
    """

    def __init__(
        self,
        profile: ChaosProfile,
        config: WireConfig,
        telemetry=None,
    ) -> None:
        self.profile = profile
        self._config = config
        self._tel = telemetry
        self.schedule = FaultSchedule(seed=config.seed)
        self.data_shaper: ChannelShaper | None = None
        self.ack_shaper: ChannelShaper | None = None
        self.fuzz: FuzzBarrage | None = None
        self.partitioned: list[str] = []
        self.loop_errors: list[str] = []
        self.rebinds = 0
        self.stalls_injected = 0
        self._pending_snapshot: dict | None = None
        self.drill: dict[str, object] = {}
        self._loop = None

    # Wiring ---------------------------------------------------------------

    def partition_subset(self, source_ids: list[str]) -> list[str]:
        """The seeded source subset the partition severs."""
        fraction = self.profile.partition_fraction
        if self.profile.partition_at <= 0 or fraction <= 0:
            return []
        count = max(1, int(fraction * len(source_ids)))
        rng = np.random.default_rng([self._config.seed, 7])
        picks = rng.choice(len(source_ids), size=count, replace=False)
        return [source_ids[i] for i in sorted(picks)]

    def install(self, runtime: AsyncRuntime, loop) -> None:
        """Arm every chaos layer on the freshly opened runtime."""
        self._loop = loop
        profile = self.profile
        source_ids = list(runtime.fleet.source_ids)
        self.partitioned = self.partition_subset(source_ids)
        if self.partitioned:
            self.schedule.partition(
                self.partitioned,
                ["server"],
                at=profile.partition_at,
                heal_at=profile.partition_heal_at or None,
            )
        index_lookup = dict(runtime.server._index)
        self.data_shaper = ChannelShaper(
            "data",
            profile,
            self._config.seed,
            schedule=self.schedule if self.partitioned else None,
            index_lookup=index_lookup,
        )
        self.ack_shaper = ChannelShaper(
            "ack",
            profile,
            self._config.seed,
            schedule=self.schedule if self.partitioned else None,
            index_lookup=index_lookup,
        )
        self.data_shaper.bind_loop(loop)
        self.ack_shaper.bind_loop(loop)
        runtime.fleet.install_send_shaper(self.data_shaper)
        runtime.server.install_send_shaper(self.ack_shaper)
        if profile.fuzz_from_tick > 0:
            self.fuzz = FuzzBarrage(
                self._config,
                source_ids[0],
                per_tick=profile.fuzz_per_tick,
            )
            self.fuzz.open(loop)
        loop.set_exception_handler(self._capture_loop_error)

    def _capture_loop_error(self, loop, context) -> None:
        exception = context.get("exception")
        self.loop_errors.append(
            f"{context.get('message', 'unhandled error')}: {exception!r}"
        )

    # Per-tick drive -------------------------------------------------------

    async def on_tick(self, tick: int, runtime: AsyncRuntime) -> None:
        """One tick of scheduled hostility."""
        profile = self.profile
        self.schedule.observe_tick(tick)
        if self.data_shaper is not None:
            self.data_shaper.pump()
        if self.ack_shaper is not None:
            self.ack_shaper.pump()
        if (
            self.fuzz is not None
            and profile.fuzz_from_tick > 0
            and tick >= profile.fuzz_from_tick
            and runtime.query is not None
        ):
            loris_ok = (
                profile.drain_tick == 0 or tick > profile.drain_tick
            )
            await self.fuzz.tick(tick, runtime, loris_ok=loris_ok)
        if profile.rebind_tick and tick == profile.rebind_tick:
            runtime.server.rebind(self._loop)
            self.rebinds += 1
        if tick in profile.stall_ticks:
            budget_ms = (
                runtime.stall_watchdog.budget_ms
                if runtime.stall_watchdog is not None
                else self._config.tick_ms
            )
            time.sleep(
                profile.stall_sleep_scale * budget_ms / 1000.0
            )
            self.stalls_injected += 1
        if profile.drain_tick and tick == profile.drain_tick:
            await self._drill_drain(tick, runtime)
        elif self._pending_snapshot is not None:
            await self._drill_restart(runtime)

    # The drain/restart drill ----------------------------------------------

    @staticmethod
    def _state_digest(sources: dict) -> int:
        canonical = json.dumps(
            sources, sort_keys=True, separators=(",", ":")
        )
        return zlib.crc32(canonical.encode())

    async def _drill_drain(
        self, tick: int, runtime: AsyncRuntime
    ) -> None:
        """Kill the server mid-soak: capture acks, drain, checkpoint."""
        acked_before = runtime.fleet.acked_high()
        snapshot = await runtime.drain()
        self._pending_snapshot = snapshot
        self.drill = {
            "drain_tick": tick,
            "acked_sources": len(acked_before),
            "acked_before": acked_before,
            "snapshot_digest": self._state_digest(snapshot["sources"]),
        }

    async def _drill_restart(self, runtime: AsyncRuntime) -> None:
        """Bring the server back one tick later; verify the two gates."""
        snapshot, self._pending_snapshot = self._pending_snapshot, None
        await runtime.restart(snapshot)
        reexported = {
            source_id: runtime.server.dkf.export_source_state(source_id)
            for source_id in runtime.server.dkf.source_ids
        }
        bit_identical = (
            self._state_digest(reexported)
            == self.drill["snapshot_digest"]
        )
        acked_before: dict = self.drill.pop("acked_before")
        lost = {
            source_id: acked
            for source_id, acked in acked_before.items()
            if int(
                snapshot["sources"]
                .get(source_id, {"expected_seq": -1})["expected_seq"]
            )
            < acked
        }
        self.drill.update(
            {
                "restart_tick": runtime.ticks_run,
                "bit_identical": bit_identical,
                "acked_updates_lost": len(lost),
                "lost_examples": dict(list(lost.items())[:5]),
            }
        )

    # Teardown / verdicts --------------------------------------------------

    async def teardown(self, runtime: AsyncRuntime) -> None:
        """Flush held datagrams, reap the fuzzers, restore the loop."""
        if self.data_shaper is not None:
            self.data_shaper.pump()
        if self.ack_shaper is not None:
            self.ack_shaper.pump()
        if self._pending_snapshot is not None:
            # Drain fired on the final tick; finish the drill so the
            # books close on a living server.
            await self._drill_restart(runtime)
        if self.fuzz is not None:
            await self.fuzz.teardown()
        if self._loop is not None:
            self._loop.set_exception_handler(None)

    def summary(self) -> dict[str, object]:
        """Measured chaos account (for the non-compared soak summary)."""
        return {
            "data_shaper": (
                self.data_shaper.summary()
                if self.data_shaper is not None
                else {}
            ),
            "ack_shaper": (
                self.ack_shaper.summary()
                if self.ack_shaper is not None
                else {}
            ),
            "partitioned_sources": len(self.partitioned),
            "rebinds": self.rebinds,
            "stalls_injected": self.stalls_injected,
            "fuzz_datagrams": (
                self.fuzz.datagrams_sent if self.fuzz is not None else 0
            ),
            "fuzz_lines": (
                self.fuzz.lines_sent if self.fuzz is not None else 0
            ),
            "loop_errors": list(self.loop_errors),
            "drill": {
                key: value
                for key, value in self.drill.items()
                if key != "acked_before"
            },
        }


def _chaos_gates(
    config: WireConfig,
    runtime: AsyncRuntime,
    coordinator: ChaosCoordinator,
    conservation: dict,
    p99: float | None,
) -> dict[str, object]:
    """The pass/fail verdicts (booleans only; deterministic when green)."""
    profile = coordinator.profile
    drill = coordinator.drill
    fuzz = coordinator.fuzz
    primed_floor = math.ceil(_PRIMED_FLOOR * config.sources)
    gates: dict[str, object] = {
        "conservation_ok": bool(conservation["holds"]),
        "primed_ok": runtime.primed >= primed_floor,
        "query_p99_ok": (
            p99 is not None and p99 <= config.query_p99_gate_ms
        ),
        "no_acked_update_lost": (
            profile.drain_tick == 0
            or drill.get("acked_updates_lost") == 0
        ),
        "recovery_bit_identical": (
            profile.drain_tick == 0 or bool(drill.get("bit_identical"))
        ),
        "no_unhandled_errors": not coordinator.loop_errors,
        "fuzz_responses_typed": (
            fuzz is None or not fuzz.bad_responses
        ),
        "loris_evicted": (
            fuzz is None or not fuzz.loris_started or fuzz.loris_closed
        ),
        "stall_detected": (
            not profile.stall_ticks
            or (
                runtime.stall_watchdog is not None
                and runtime.stall_watchdog.stalls > 0
            )
        ),
        "rebind_done": (
            profile.rebind_tick == 0 or coordinator.rebinds > 0
        ),
    }
    gates["ok"] = all(bool(v) for v in gates.values())
    return gates


def run_chaos(
    config: WireConfig,
    profile: ChaosProfile | None = None,
    fleet_kind: str = "lite",
    out: str | Path | None = None,
    report_out: str | Path | None = None,
    bench_out: str | Path | None = None,
) -> dict:
    """Run one chaos soak; returns the measured summary (gates included).

    Writes up to three artifacts: ``out`` (the measured summary, like
    the soak's), ``report_out`` (``chaos-report.json`` -- deterministic
    content only, byte-identical per seed) and ``bench_out`` (a
    ``repro.obs`` snapshot with the chaos bench gauges).
    """
    if profile is None:
        profile = ChaosProfile.reference(config.ticks)
    if profile.drain_tick >= config.ticks:
        raise ConfigurationError(
            "drain_tick must leave ticks for the restart and re-prime"
        )
    telemetry = Telemetry(time_unit="ms")
    heartbeat_ms = config.heartbeat_interval_ticks * config.tick_ms
    telemetry.slo.install_wire_defaults(
        staleness_objective_ms=max(2500.0, 1.5 * heartbeat_ms),
        query_p99_objective_ms=config.query_p99_gate_ms,
    )
    telemetry.health.install_wire_defaults()
    coordinator = ChaosCoordinator(profile, config, telemetry)
    runtime = AsyncRuntime(
        config,
        fleet=_build_fleet(config, fleet_kind),
        telemetry=telemetry,
        chaos=coordinator,
    )
    runtime.run()

    fuzz_sent = (
        coordinator.fuzz.datagrams_sent
        if coordinator.fuzz is not None
        else 0
    )
    conservation = _conservation(runtime, extra_data_sent=fuzz_sent)
    report = runtime.report()
    p99 = report["query_p99_ms"]
    gates = _chaos_gates(
        config, runtime, coordinator, conservation, p99
    )

    workload: dict[str, object] = dict(config.workload_fields())
    digest = getattr(runtime.fleet, "workload_digest", None)
    if digest is not None:
        workload["digest"] = digest()

    summary = {
        "schema": CHAOS_SCHEMA,
        "workload": workload,
        "profile": profile.as_dict(),
        "chaos": coordinator.summary(),
        "wire": {
            "server": runtime.server.counters.as_dict(),
            "fleet": runtime.fleet.counters.as_dict(),
            "conservation": conservation,
            "rejections": runtime.server.poison.as_dict(),
        },
        "fleet": runtime.fleet.summary(),
        "measured": {
            "ticks": report["ticks"],
            "wall_seconds": report["wall_seconds"],
            "overruns": report["overruns"],
            "primed": runtime.primed,
            "suspects": runtime.suspects,
            "drains": runtime.drains,
            "restarts": runtime.restarts,
            "stall_watchdog": report["stall_watchdog"],
            "queries": report["queries"],
            "query_failures": report["query_failures"],
            "query_p50_ms": report["query_p50_ms"],
            "query_p99_ms": report["query_p99_ms"],
        },
        "gates": gates,
    }

    # The replayable report: nothing measured, nothing wall-clock.  Two
    # same-seed runs must produce byte-identical files (CI cmp-gates
    # this); gate booleans are included because a green run is green
    # deterministically.
    chaos_report = {
        "schema": CHAOS_SCHEMA,
        "seed": config.seed,
        "workload": workload,
        "profile": profile.as_dict(),
        "schedule": {
            "partition_subset_digest": zlib.crc32(
                ",".join(coordinator.partitioned).encode()
            ),
            "partitioned_sources": len(coordinator.partitioned),
            "data_decisions_digest": (
                coordinator.data_shaper.schedule_digest()
                if coordinator.data_shaper is not None
                else 0
            ),
            "ack_decisions_digest": (
                coordinator.ack_shaper.schedule_digest()
                if coordinator.ack_shaper is not None
                else 0
            ),
            "fuzz_plan_digest": (
                coordinator.fuzz.plan_digest(config.ticks)
                if coordinator.fuzz is not None
                else 0
            ),
        },
        "gates": gates,
    }

    if out is not None:
        Path(out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if report_out is not None:
        Path(report_out).write_text(
            json.dumps(chaos_report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if bench_out is not None:
        _export_chaos_bench(telemetry, summary, config, Path(bench_out))
    return summary


def _export_chaos_bench(
    telemetry: Telemetry,
    summary: dict,
    config: WireConfig,
    path: Path,
) -> None:
    """BENCH gauges for degraded-mode regressions (repro benchdiff)."""
    from repro.obs import build_snapshot, write_snapshot

    registry = telemetry.metrics
    p99 = summary["measured"]["query_p99_ms"]
    if p99 is not None:
        registry.gauge("wire_chaos_query_p99_ms").set(float(p99))
    registry.gauge("wire_chaos_primed_pct").set(
        100.0 * summary["measured"]["primed"] / config.sources
    )
    snapshot = build_snapshot(
        telemetry,
        meta={
            "bench": "wire-chaos",
            "seed": config.seed,
            "sources": config.sources,
            "ticks": config.ticks,
            "tick_seconds": config.tick_seconds,
        },
    )
    snapshot["history"] = {
        **snapshot["history"], "samples": 0, "series": [],
    }
    write_snapshot(path, snapshot)
