"""The soak harness: sustained real-socket load with honest gates.

``repro wire --soak`` drives a :class:`~repro.wire.runtime.AsyncRuntime`
at configurable scale (CI runs 5k sources; the acceptance target is
100k on one box) and cuts a summary artifact split along the
determinism boundary:

* ``workload`` -- everything derivable from ``(config, seed)`` alone:
  the config's workload fields plus the fleet's pre-socket workload
  digest.  Byte-identical across same-seed runs, the ``repro chaos``
  contract.
* ``wire`` -- the traffic books from both endpoints, the receiver-side
  conservation law, and the kernel-drop residuals (``sent - received``
  per direction; the only loss the ledgers cannot see directly).
* ``measured`` -- wall-clock observations: query latency percentiles,
  tick overruns, achieved qps.  Real timings, never expected to repeat.
* ``gates`` -- pass/fail: the p99 query-latency gate, the conservation
  law, and a priming-coverage floor.

The same run exports ``BENCH_wire.json`` (a ``repro.obs`` snapshot with
``wire_query_p99_ms``/``wire_query_p50_ms`` gauges) for ``repro
benchdiff`` regression gating in CI.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs import Telemetry, build_snapshot, write_snapshot
from repro.wire.config import WireConfig
from repro.wire.fleet import LiteFleet, StepperFleet
from repro.wire.runtime import AsyncRuntime

__all__ = ["run_soak", "SOAK_SCHEMA"]

#: Schema tag carried by every soak summary artifact.
SOAK_SCHEMA = "repro.wire-soak/v1"

#: Fraction of the fleet that must be primed when the books close.
_PRIMED_FLOOR = 0.99


def _build_fleet(config: WireConfig, kind: str):
    if kind == "lite":
        return LiteFleet(config)
    if kind == "stepper":
        return StepperFleet(config)
    raise ConfigurationError(f"unknown fleet kind {kind!r}")


def _conservation(
    runtime: AsyncRuntime, extra_data_sent: int = 0
) -> dict[str, object]:
    """Both endpoints' books plus the cross-endpoint residuals.

    ``extra_data_sent`` counts datagrams offered to the server by
    senders *other than the fleet* -- the chaos run's fuzz barrage --
    without which the data-direction residual would go negative (the
    server legitimately receives more than the fleet sent).
    """
    server = runtime.server.counters
    fleet = runtime.fleet.counters
    inbox_left = runtime.server.inbox_depth
    server_accounted = (
        server.frames_decoded
        + server.frames_corrupt
        + server.frames_unknown
        + server.frames_oversize
        + server.inbox_dropped
        + inbox_left
    )
    # Kernel drops are invisible to both ledgers; they surface only as
    # the non-negative residual sent - received per direction.
    data_residual = (
        fleet.datagrams_sent + extra_data_sent
        - server.datagrams_received
    )
    ack_residual = server.datagrams_sent - fleet.datagrams_received
    fleet_accounted = (
        fleet.frames_decoded
        + fleet.frames_corrupt
        + fleet.frames_unknown
        + fleet.frames_oversize
    )
    holds = (
        server_accounted == server.datagrams_received
        and fleet_accounted <= fleet.datagrams_received
        and data_residual >= 0
        and ack_residual >= 0
    )
    return {
        "holds": holds,
        "server_inbox_left": inbox_left,
        "server_accounted": server_accounted,
        "fleet_acks_queued": (
            fleet.datagrams_received - fleet_accounted
        ),
        "kernel_dropped_data": data_residual,
        "kernel_dropped_acks": ack_residual,
    }


def summarise(config: WireConfig, runtime: AsyncRuntime) -> dict:
    """Assemble the soak summary from a completed runtime."""
    report = runtime.report()
    conservation = _conservation(runtime)
    workload: dict[str, object] = dict(config.workload_fields())
    digest = getattr(runtime.fleet, "workload_digest", None)
    if digest is not None:
        workload["digest"] = digest()
    p99 = report["query_p99_ms"]
    primed_floor = math.ceil(_PRIMED_FLOOR * config.sources)
    gates = {
        "query_p99_gate_ms": config.query_p99_gate_ms,
        "query_p99_ok": (
            p99 is not None and p99 <= config.query_p99_gate_ms
        ),
        "conservation_ok": bool(conservation["holds"]),
        "primed_floor": primed_floor,
        "primed_ok": runtime.primed >= primed_floor,
    }
    gates["ok"] = (
        gates["query_p99_ok"]
        and gates["conservation_ok"]
        and gates["primed_ok"]
    )
    return {
        "schema": SOAK_SCHEMA,
        "workload": workload,
        "wire": {
            "server": runtime.server.counters.as_dict(),
            "fleet": runtime.fleet.counters.as_dict(),
            "conservation": conservation,
        },
        "fleet": runtime.fleet.summary(),
        "measured": {
            "ticks": report["ticks"],
            "wall_seconds": report["wall_seconds"],
            "overruns": report["overruns"],
            "primed": runtime.primed,
            "suspects": runtime.suspects,
            "queries": report["queries"],
            "query_failures": report["query_failures"],
            "query_qps": report["query_qps"],
            "query_p50_ms": report["query_p50_ms"],
            "query_p99_ms": report["query_p99_ms"],
            "query_max_ms": report["query_max_ms"],
        },
        "gates": gates,
    }


def _export_bench(
    telemetry: Telemetry,
    summary: dict,
    config: WireConfig,
    path: Path,
) -> None:
    measured = summary["measured"]
    registry = telemetry.metrics
    for gauge, key in (
        ("wire_query_p99_ms", "query_p99_ms"),
        ("wire_query_p50_ms", "query_p50_ms"),
    ):
        value = measured[key]
        if value is not None:
            registry.gauge(gauge).set(float(value))
    registry.gauge("wire_tick_overruns").set(
        float(measured["overruns"])
    )
    snapshot = build_snapshot(
        telemetry,
        meta={
            "bench": "wire",
            "seed": config.seed,
            "sources": config.sources,
            "ticks": config.ticks,
            "tick_seconds": config.tick_seconds,
            "query_rate": config.query_rate,
        },
    )
    # The ms-clock history is bulk without being gated; benchdiff judges
    # gauges, and the counters already prove the pipe end-to-end.
    snapshot["history"] = {
        **snapshot["history"], "samples": 0, "series": [],
    }
    write_snapshot(path, snapshot)


def run_soak(
    config: WireConfig,
    fleet_kind: str = "lite",
    out: str | Path | None = None,
    bench_out: str | Path | None = None,
) -> dict:
    """Run one soak and return its summary (gates included).

    Args:
        config: The wire runtime configuration.
        fleet_kind: ``lite`` (vectorised, soak scale) or ``stepper``
            (real DKF endpoints, demo scale).
        out: Optional path for the summary JSON artifact.
        bench_out: Optional path for the ``BENCH_wire.json`` snapshot.
    """
    telemetry = Telemetry(time_unit="ms")
    # A δ-suppressed source's worst-case contact cadence is its
    # heartbeat interval, so a fixed staleness objective would fire on
    # perfectly healthy runs whenever heartbeats are sparse.  Objective:
    # 1.5 heartbeat intervals, floored at the default 2.5 s.
    heartbeat_ms = config.heartbeat_interval_ticks * config.tick_ms
    telemetry.slo.install_wire_defaults(
        staleness_objective_ms=max(2500.0, 1.5 * heartbeat_ms),
        query_p99_objective_ms=config.query_p99_gate_ms,
    )
    runtime = AsyncRuntime(
        config,
        fleet=_build_fleet(config, fleet_kind),
        telemetry=telemetry,
    )
    runtime.run()
    summary = summarise(config, runtime)
    if out is not None:
        Path(out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if bench_out is not None:
        _export_bench(telemetry, summary, config, Path(bench_out))
    return summary
