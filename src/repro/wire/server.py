"""The UDP-facing server half of the wire runtime.

A :class:`WireServer` wraps the sans-IO :class:`~repro.dkf.server.
DKFServer` (tolerant mode, ack outbox on) with the real-socket plumbing:
a batch-draining UDP receiver feeding a :class:`~repro.resilience.
supervisor.BoundedInbox`, a per-tick decode/apply budget, ack datagrams
flowing back to each source's last seen address, and socket-level
backpressure -- the inbox depth feeds the PR-3
:class:`~repro.resilience.supervisor.OverloadController` exactly the way
the tick engine's drain loop does, and the resulting δ-scale changes are
handed to the runtime's control-plane callback (in the soak harness the
fleet is co-located, so the callback applies them directly; a deployed
fleet would receive them out-of-band).

The receive callback does nothing but enqueue: decode, filter updates
and ack emission all run on the runtime's tick budget, chunked with
event-loop yields so the TCP query API keeps answering while a burst
drains.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from collections.abc import Callable

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    build_source_index,
    decode_message,
    encode_message,
)
from repro.dkf.server import DKFServer
from repro.errors import ConfigurationError, CorruptMessageError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.checkpoint import CHECKPOINT_SCHEMA
from repro.resilience.supervisor import (
    BoundedInbox,
    OverloadController,
    OverloadPolicy,
)
from repro.wire.config import WireConfig
from repro.wire.datagram import (
    BatchDatagramReceiver,
    PoisonLedger,
    WireCounters,
    open_udp_socket,
)

__all__ = ["WireServer"]

#: Frames decoded between event-loop yields while draining a tick.
_DECODE_CHUNK = 500


class WireServer:
    """Datagram front-end over a tolerant :class:`DKFServer`.

    Args:
        config: The wire runtime configuration.
        telemetry: Observability handle (wire counters, inbox gauge).
        watchdog: Optional divergence watchdog; when given, the query
            layer reads its quarantine rung.
        on_scales: Control-plane callback invoked with the overload
            controller's ``{source_id: delta_scale}`` changes.
        dkf_telemetry: Telemetry handle for the *inner* DKF server.
            Defaults to the null handle, deliberately separate from the
            wire-level ``telemetry``: the DKF server labels its apply
            counters per source, which at soak scale (100k sources)
            means 100k+ instruments each sampled into history every
            tick.  The wire layer's own counters are label-free and
            stay cheap at any fleet size; pass a real handle here only
            for small fleets where per-source detail is worth it.
    """

    def __init__(
        self,
        config: WireConfig,
        telemetry=None,
        watchdog=None,
        on_scales: Callable[[dict[str, float]], None] | None = None,
        dkf_telemetry=None,
    ) -> None:
        self._config = config
        self._tel = telemetry or NULL_TELEMETRY
        self.dkf = DKFServer(
            strict=False,
            emit_acks=True,
            telemetry=dkf_telemetry or NULL_TELEMETRY,
        )
        self.watchdog = watchdog
        self._on_scales = on_scales
        self.counters = WireCounters()
        self._inbox = BoundedInbox(config.inbox_capacity)
        self._overload = OverloadController(
            OverloadPolicy(
                inbox_capacity=config.inbox_capacity,
                drain_per_tick=config.drain_per_tick,
            ),
            telemetry=self._tel,
        )
        self._index: dict[int, str] = {}
        self._addrs: dict[str, tuple] = {}
        self._state_dim = config.state_dim
        self._sock: socket.socket | None = None
        self._receiver: BatchDatagramReceiver | None = None
        self._send_shaper = None
        self._dkf_telemetry = dkf_telemetry or NULL_TELEMETRY
        self._fleet_dkf_config: DKFConfig | None = None
        self._fleet_transport: TransportPolicy | None = None
        self.poison = PoisonLedger(self._tel)

    # Lifecycle ------------------------------------------------------------

    def open(
        self, loop, endpoint: tuple[str, int] | None = None
    ) -> tuple[str, int]:
        """Bind the UDP socket and install the batch receiver.

        ``endpoint`` overrides the configured ``(host, udp_port)`` --
        the restart path passes the previously bound concrete address so
        the fleet's datagrams keep landing where they always did.
        Returns the bound ``(host, port)`` (useful with port 0).
        """
        if self._sock is not None:
            raise ConfigurationError("wire server is already open")
        host, port = (
            endpoint
            if endpoint is not None
            else (self._config.host, self._config.udp_port)
        )
        self._sock = open_udp_socket(
            host, port, self._config.socket_buffer_bytes
        )
        self._receiver = BatchDatagramReceiver(
            self._sock,
            self._on_datagram,
            counters=self.counters,
            chunk=self._config.recv_chunk,
            on_oversize=lambda: self.poison.reject("oversize"),
        )
        self._receiver.install(loop)
        return self._sock.getsockname()

    def close(self) -> None:
        """Remove the reader and close the socket."""
        if self._receiver is not None:
            self._receiver.close()
            self._receiver = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def rebind(self, loop) -> tuple[str, int]:
        """Close and immediately re-open on the same concrete endpoint.

        The chaos drill's mid-run socket bounce: datagrams in flight
        while the socket is down are genuinely lost (UDP's contract) and
        surface as the kernel-drop residual, never as a counter leak.
        """
        endpoint = self.endpoint
        self.close()
        return self.open(loop, endpoint)

    def stop_receiving(self) -> None:
        """Deregister the reader but keep the socket (drain phase 1).

        Acks for already-queued frames can still be sent; new datagrams
        accumulate in the kernel buffer and die with the socket.
        """
        if self._receiver is not None:
            self._receiver.close()
            self._receiver = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound UDP address (raises before :meth:`open`)."""
        if self._sock is None:
            raise ConfigurationError("wire server is not open")
        return self._sock.getsockname()

    @property
    def inbox_depth(self) -> int:
        """Datagrams queued and not yet decoded."""
        return self._inbox.depth

    @property
    def overload(self) -> OverloadController:
        """The backpressure controller (live object)."""
        return self._overload

    # Registration ---------------------------------------------------------

    def register(
        self,
        source_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
        priority: int = 0,
    ) -> None:
        """Install one source: filter slot, hash index, shed tracking."""
        self.dkf.register(source_id, config, transport)
        self._overload.register(source_id, priority, config.min_delta)
        self._index = build_source_index(self.dkf.source_ids)
        if self.watchdog is not None:
            self.watchdog.register(source_id)

    def register_fleet(
        self,
        source_ids,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
    ) -> None:
        """Bulk registration; rebuilds the hash index once at the end.

        The fleet's DKF config and transport policy are retained so
        :meth:`restore` can re-register the same fleet bit-identically
        after a drain/restart cycle.
        """
        self._fleet_dkf_config = config
        self._fleet_transport = transport
        for source_id in source_ids:
            self.dkf.register(source_id, config, transport)
            self._overload.register(source_id, 0, config.min_delta)
            if self.watchdog is not None:
                self.watchdog.register(source_id)
        self._index = build_source_index(self.dkf.source_ids)

    # Receive path ---------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: tuple) -> None:
        """Reader callback: enqueue only (decode runs on the tick budget)."""
        if not self._inbox.offer((data, addr)):
            self.counters.inbox_dropped += 1

    async def process_tick(self, tick: int) -> int:
        """One runtime tick of server work; returns frames processed.

        Advances the liveness clock, decodes up to ``drain_per_tick``
        queued datagrams (yielding to the event loop between chunks so
        queries interleave), flushes the ack outbox after every chunk,
        and feeds the inbox depth into the overload controller.
        """
        self.dkf.advance_clock(tick)
        budget = self._config.drain_per_tick
        processed = 0
        while budget > 0:
            batch = self._inbox.drain(min(budget, _DECODE_CHUNK))
            if not batch:
                break
            for data, addr in batch:
                self._apply_datagram(data, addr)
            processed += len(batch)
            budget -= len(batch)
            self._flush_acks()
            await asyncio.sleep(0)
        self._flush_acks()
        depth = self._inbox.depth
        if self._tel.enabled:
            self._tel.gauge("inbox_depth", depth)
        changes = self._overload.step(tick, depth)
        if changes and self._on_scales is not None:
            self._on_scales(changes)
        return processed

    def _apply_datagram(self, data: bytes, addr: tuple) -> None:
        counters = self.counters
        try:
            message = decode_message(
                data, self._index, state_dim=self._state_dim
            )
        except CorruptMessageError:
            counters.frames_corrupt += 1
            self.poison.reject("corrupt")
            if self._tel.enabled:
                self._tel.count("wire_frames_corrupt_total")
            return
        except (ConfigurationError, ValueError, struct.error):
            counters.frames_unknown += 1
            self.poison.reject("unknown")
            if self._tel.enabled:
                self._tel.count("wire_frames_unknown_total")
            return
        if message.k > self.dkf.clock + self._config.max_future_ticks:
            # Intact CRC but a sampling instant far past the server's
            # clock: a forged or replayed-from-the-future frame, not a
            # straggler.  Conservation-wise it lands in the unknown
            # bucket; the ledger records the sharper reason.
            counters.frames_unknown += 1
            self.poison.reject("future_epoch")
            if self._tel.enabled:
                self._tel.count("wire_frames_unknown_total")
            return
        counters.frames_decoded += 1
        if self._tel.enabled:
            self._tel.count("wire_frames_decoded_total")
        self._addrs[message.source_id] = addr
        self.dkf.receive(message)

    def flush_inbox(self) -> int:
        """Decode and apply *everything* queued, ignoring the tick budget.

        The drain path's inbox flush: after :meth:`stop_receiving`, the
        inbox is finite and this empties it synchronously so the
        checkpoint cut sees every datagram the runtime ever accepted.
        Returns the number of datagrams applied.
        """
        processed = 0
        while True:
            batch = self._inbox.drain(_DECODE_CHUNK)
            if not batch:
                break
            for data, addr in batch:
                self._apply_datagram(data, addr)
            processed += len(batch)
        self._flush_acks()
        return processed

    # Send path ------------------------------------------------------------

    def install_send_shaper(self, shaper) -> None:
        """Route outbound datagrams through ``shaper(payload, addr, send)``.

        The chaos transport's server-side seam: the shaper decides what
        actually reaches the wire (drop, duplicate, delay, corrupt) and
        calls the passed ``send`` for each real emission, so the sent
        counters always reflect datagrams that genuinely hit the socket.
        ``None`` uninstalls.
        """
        self._send_shaper = shaper

    def _raw_send(self, payload: bytes, addr: tuple) -> None:
        """Put one datagram on the socket and account for it.

        Tolerates a closed socket: a chaos shaper's delayed release can
        fire after teardown, where the right behaviour is to count a
        send failure, not raise into the event loop.
        """
        if self._sock is None:
            self.counters.send_failures += 1
            return
        try:
            self._sock.sendto(payload, addr)
        except (BlockingIOError, OSError):
            self.counters.send_failures += 1
            return
        self.counters.datagrams_sent += 1
        self.counters.bytes_sent += len(payload)

    def _send(self, payload: bytes, addr: tuple) -> None:
        if self._send_shaper is not None:
            self._send_shaper(payload, addr, self._raw_send)
        else:
            self._raw_send(payload, addr)

    def _flush_acks(self) -> None:
        """Encode and send every queued ack to its source's last address."""
        acks = self.dkf.take_outbox()
        if not acks or self._sock is None:
            return
        for ack in acks:
            addr = self._addrs.get(ack.source_id)
            if addr is None:
                continue
            self._send(encode_message(ack), addr)

    # Checkpoint / restore -------------------------------------------------

    def checkpoint_snapshot(self, tick: int) -> dict:
        """A PR-3 ``repro.ckpt-v1`` snapshot of the full DKF state.

        Cut *after* the final inbox flush so it reflects every update
        the server ever acknowledged; :func:`~repro.resilience.
        checkpoint.validate_checkpoint` accepts it as-is.
        """
        return {
            "schema": CHECKPOINT_SCHEMA,
            "tick": int(tick),
            "server_clock": int(self.dkf.clock),
            "sources": {
                source_id: self.dkf.export_source_state(source_id)
                for source_id in self.dkf.source_ids
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Rebuild the inner DKF server bit-identically from a snapshot.

        Requires a prior :meth:`register_fleet` (the fleet's DKF config
        and transport policy are not in the snapshot, matching the PR-3
        recovery flow where the engine re-registers from its configs).
        The hash index, shed tracking and last-seen addresses survive in
        this object; only the protocol/filter state is rebuilt.
        """
        if self._fleet_dkf_config is None:
            raise ConfigurationError(
                "restore requires a prior register_fleet"
            )
        dkf = DKFServer(
            strict=False,
            emit_acks=True,
            telemetry=self._dkf_telemetry,
        )
        for source_id, state in snapshot["sources"].items():
            dkf.register(
                source_id, self._fleet_dkf_config, self._fleet_transport
            )
            dkf.import_source_state(source_id, state)
        dkf.advance_clock(int(snapshot["server_clock"]))
        self.dkf = dkf
        self._index = build_source_index(self.dkf.source_ids)
        # A genuinely restarted process would not remember peer
        # addresses; drop them so acks only flow once a source has
        # re-contacted this incarnation (its next frame carries addr).
        self._addrs.clear()
