"""The UDP-facing server half of the wire runtime.

A :class:`WireServer` wraps the sans-IO :class:`~repro.dkf.server.
DKFServer` (tolerant mode, ack outbox on) with the real-socket plumbing:
a batch-draining UDP receiver feeding a :class:`~repro.resilience.
supervisor.BoundedInbox`, a per-tick decode/apply budget, ack datagrams
flowing back to each source's last seen address, and socket-level
backpressure -- the inbox depth feeds the PR-3
:class:`~repro.resilience.supervisor.OverloadController` exactly the way
the tick engine's drain loop does, and the resulting δ-scale changes are
handed to the runtime's control-plane callback (in the soak harness the
fleet is co-located, so the callback applies them directly; a deployed
fleet would receive them out-of-band).

The receive callback does nothing but enqueue: decode, filter updates
and ack emission all run on the runtime's tick budget, chunked with
event-loop yields so the TCP query API keeps answering while a burst
drains.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from collections.abc import Callable

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    build_source_index,
    decode_message,
    encode_message,
)
from repro.dkf.server import DKFServer
from repro.errors import ConfigurationError, CorruptMessageError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.supervisor import (
    BoundedInbox,
    OverloadController,
    OverloadPolicy,
)
from repro.wire.config import WireConfig
from repro.wire.datagram import (
    BatchDatagramReceiver,
    WireCounters,
    open_udp_socket,
)

__all__ = ["WireServer"]

#: Frames decoded between event-loop yields while draining a tick.
_DECODE_CHUNK = 500


class WireServer:
    """Datagram front-end over a tolerant :class:`DKFServer`.

    Args:
        config: The wire runtime configuration.
        telemetry: Observability handle (wire counters, inbox gauge).
        watchdog: Optional divergence watchdog; when given, the query
            layer reads its quarantine rung.
        on_scales: Control-plane callback invoked with the overload
            controller's ``{source_id: delta_scale}`` changes.
        dkf_telemetry: Telemetry handle for the *inner* DKF server.
            Defaults to the null handle, deliberately separate from the
            wire-level ``telemetry``: the DKF server labels its apply
            counters per source, which at soak scale (100k sources)
            means 100k+ instruments each sampled into history every
            tick.  The wire layer's own counters are label-free and
            stay cheap at any fleet size; pass a real handle here only
            for small fleets where per-source detail is worth it.
    """

    def __init__(
        self,
        config: WireConfig,
        telemetry=None,
        watchdog=None,
        on_scales: Callable[[dict[str, float]], None] | None = None,
        dkf_telemetry=None,
    ) -> None:
        self._config = config
        self._tel = telemetry or NULL_TELEMETRY
        self.dkf = DKFServer(
            strict=False,
            emit_acks=True,
            telemetry=dkf_telemetry or NULL_TELEMETRY,
        )
        self.watchdog = watchdog
        self._on_scales = on_scales
        self.counters = WireCounters()
        self._inbox = BoundedInbox(config.inbox_capacity)
        self._overload = OverloadController(
            OverloadPolicy(
                inbox_capacity=config.inbox_capacity,
                drain_per_tick=config.drain_per_tick,
            ),
            telemetry=self._tel,
        )
        self._index: dict[int, str] = {}
        self._addrs: dict[str, tuple] = {}
        self._state_dim = config.state_dim
        self._sock: socket.socket | None = None
        self._receiver: BatchDatagramReceiver | None = None

    # Lifecycle ------------------------------------------------------------

    def open(self, loop) -> tuple[str, int]:
        """Bind the UDP socket and install the batch receiver.

        Returns the bound ``(host, port)`` (useful with port 0).
        """
        if self._sock is not None:
            raise ConfigurationError("wire server is already open")
        self._sock = open_udp_socket(
            self._config.host,
            self._config.udp_port,
            self._config.socket_buffer_bytes,
        )
        self._receiver = BatchDatagramReceiver(
            self._sock,
            self._on_datagram,
            counters=self.counters,
            chunk=self._config.recv_chunk,
        )
        self._receiver.install(loop)
        return self._sock.getsockname()

    def close(self) -> None:
        """Remove the reader and close the socket."""
        if self._receiver is not None:
            self._receiver.close()
            self._receiver = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound UDP address (raises before :meth:`open`)."""
        if self._sock is None:
            raise ConfigurationError("wire server is not open")
        return self._sock.getsockname()

    @property
    def inbox_depth(self) -> int:
        """Datagrams queued and not yet decoded."""
        return self._inbox.depth

    @property
    def overload(self) -> OverloadController:
        """The backpressure controller (live object)."""
        return self._overload

    # Registration ---------------------------------------------------------

    def register(
        self,
        source_id: str,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
        priority: int = 0,
    ) -> None:
        """Install one source: filter slot, hash index, shed tracking."""
        self.dkf.register(source_id, config, transport)
        self._overload.register(source_id, priority, config.min_delta)
        self._index = build_source_index(self.dkf.source_ids)
        if self.watchdog is not None:
            self.watchdog.register(source_id)

    def register_fleet(
        self,
        source_ids,
        config: DKFConfig,
        transport: TransportPolicy | None = None,
    ) -> None:
        """Bulk registration; rebuilds the hash index once at the end."""
        for source_id in source_ids:
            self.dkf.register(source_id, config, transport)
            self._overload.register(source_id, 0, config.min_delta)
            if self.watchdog is not None:
                self.watchdog.register(source_id)
        self._index = build_source_index(self.dkf.source_ids)

    # Receive path ---------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: tuple) -> None:
        """Reader callback: enqueue only (decode runs on the tick budget)."""
        if not self._inbox.offer((data, addr)):
            self.counters.inbox_dropped += 1

    async def process_tick(self, tick: int) -> int:
        """One runtime tick of server work; returns frames processed.

        Advances the liveness clock, decodes up to ``drain_per_tick``
        queued datagrams (yielding to the event loop between chunks so
        queries interleave), flushes the ack outbox after every chunk,
        and feeds the inbox depth into the overload controller.
        """
        self.dkf.advance_clock(tick)
        budget = self._config.drain_per_tick
        processed = 0
        while budget > 0:
            batch = self._inbox.drain(min(budget, _DECODE_CHUNK))
            if not batch:
                break
            for data, addr in batch:
                self._apply_datagram(data, addr)
            processed += len(batch)
            budget -= len(batch)
            self._flush_acks()
            await asyncio.sleep(0)
        self._flush_acks()
        depth = self._inbox.depth
        if self._tel.enabled:
            self._tel.gauge("inbox_depth", depth)
        changes = self._overload.step(tick, depth)
        if changes and self._on_scales is not None:
            self._on_scales(changes)
        return processed

    def _apply_datagram(self, data: bytes, addr: tuple) -> None:
        counters = self.counters
        try:
            message = decode_message(
                data, self._index, state_dim=self._state_dim
            )
        except CorruptMessageError:
            counters.frames_corrupt += 1
            if self._tel.enabled:
                self._tel.count("wire_frames_corrupt_total")
            return
        except (ConfigurationError, ValueError, struct.error):
            counters.frames_unknown += 1
            if self._tel.enabled:
                self._tel.count("wire_frames_unknown_total")
            return
        counters.frames_decoded += 1
        if self._tel.enabled:
            self._tel.count("wire_frames_decoded_total")
        self._addrs[message.source_id] = addr
        self.dkf.receive(message)

    def _flush_acks(self) -> None:
        """Encode and send every queued ack to its source's last address."""
        acks = self.dkf.take_outbox()
        if not acks or self._sock is None:
            return
        counters = self.counters
        sendto = self._sock.sendto
        for ack in acks:
            addr = self._addrs.get(ack.source_id)
            if addr is None:
                continue
            payload = encode_message(ack)
            try:
                sendto(payload, addr)
            except (BlockingIOError, OSError):
                counters.send_failures += 1
                continue
            counters.datagrams_sent += 1
            counters.bytes_sent += len(payload)
