"""The wall-clock scheduler: ticks mapped onto an asyncio event loop.

:class:`AsyncRuntime` is the second :class:`~repro.wire.scheduler.
Scheduler` backend.  Where :class:`~repro.wire.scheduler.TickScheduler`
counts loop iterations, the runtime counts *seconds*: each tick ``t``
fires at ``t0 + t * tick_seconds`` on the loop's monotonic clock, the
fleet and server exchange PROTOCOL.md frames over real UDP, queries
arrive over real TCP, and every tick-denominated policy -- ack
timeouts, heartbeat intervals, liveness deadlines -- becomes a real
duration through the ``tick_seconds`` factor.  A tick that finishes
late is counted as an overrun, never silently stretched, so the report
is honest about whether the box kept up.

Telemetry under this backend runs on a millisecond clock: the runtime
stamps ``set_tick(elapsed_ms)`` each tick, so metric history, health
watchers and the ms-denominated :func:`~repro.obs.slo.wire_rules` all
evaluate against wall time.  Construct the handle with
``Telemetry(time_unit="ms")`` so exported histories carry the right
unit label.

The runtime also owns the query-load probe: a persistent TCP client
issuing ``answer`` requests round-robin across the fleet at
``query_rate`` per second, recording each round trip into
``wire_query_latency_ms`` -- the latency distribution the soak gate
judges.

Two robustness organs live here as well.  The :class:`StallWatchdog` is
a heartbeat task that measures event-loop lag (how late its own wakeup
fired), gauges it into ``wire_loop_lag_ms`` for the Kalman health
watchers, and -- past the tick budget -- emits ``wire.stall`` and
escalates one planned widening step through the OverloadController.
And :meth:`AsyncRuntime.drain` / :meth:`AsyncRuntime.restart` implement
the zero-loss hot-restart cycle: stop accepting, flush the inbox,
checkpoint through the PR-3 machinery, close the sockets; then re-bind
both endpoints on their old concrete addresses, recover bit-identically
and let the resync handshake re-prime stragglers.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.checkpoint import CheckpointStore
from repro.wire.config import WireConfig
from repro.wire.fleet import LiteFleet
from repro.wire.query import QueryServer
from repro.wire.scheduler import Scheduler
from repro.wire.server import WireServer

__all__ = ["AsyncRuntime", "StallWatchdog"]

#: Extra drain passes after the last tick so in-flight datagrams and
#: acks land before the books are closed.
_SETTLE_ROUNDS = 3


class StallWatchdog:
    """Heartbeat task measuring how late its own wakeups fire.

    Event-loop lag is the one overload signal no queue depth captures:
    a synchronous stall (GC pause, a handler that forgot to yield, CPU
    starvation) delays *everything* scheduled, including this task.
    Each interval the watchdog records the overshoot as
    ``wire_loop_lag_ms`` -- the gauge the ``loop_lag`` Kalman health
    watcher consumes -- and when the lag breaches ``budget_ms`` it
    counts ``wire_stalls_total``, emits a ``wire.stall`` event and
    invokes ``on_stall(lag_ms)`` (the runtime escalates that to one
    planned OverloadController widening step).

    Args:
        budget_ms: Lag past which a wakeup counts as a stall.
        interval_s: Heartbeat period (a fraction of the tick length).
        telemetry: Observability handle.
        on_stall: Optional escalation callback ``(lag_ms) -> None``.
    """

    def __init__(
        self,
        budget_ms: float,
        interval_s: float,
        telemetry=None,
        on_stall=None,
    ) -> None:
        self.budget_ms = budget_ms
        self._interval = interval_s
        self._tel = telemetry or NULL_TELEMETRY
        self._on_stall = on_stall
        self.beats = 0
        self.stalls = 0
        self.max_lag_ms = 0.0

    async def run(self) -> None:
        """Beat until cancelled (the runtime owns the task)."""
        loop = asyncio.get_running_loop()
        target = loop.time() + self._interval
        while True:
            await asyncio.sleep(max(0.0, target - loop.time()))
            now = loop.time()
            lag_ms = max(0.0, (now - target) * 1000.0)
            target = now + self._interval
            self.beats += 1
            if lag_ms > self.max_lag_ms:
                self.max_lag_ms = lag_ms
            if self._tel.enabled:
                self._tel.gauge("wire_loop_lag_ms", lag_ms)
            if lag_ms > self.budget_ms:
                self.stalls += 1
                if self._tel.enabled:
                    self._tel.count("wire_stalls_total")
                    self._tel.emit(
                        "wire.stall",
                        lag_ms=round(lag_ms, 3),
                        budget_ms=self.budget_ms,
                    )
                if self._on_stall is not None:
                    self._on_stall(lag_ms)

    def summary(self) -> dict[str, object]:
        """Measured lag account (non-deterministic; report only)."""
        return {
            "beats": self.beats,
            "stalls": self.stalls,
            "max_lag_ms": round(self.max_lag_ms, 3),
            "budget_ms": self.budget_ms,
        }


class AsyncRuntime(Scheduler):
    """Runs a fleet and a wire server against the wall clock.

    Args:
        config: The wire runtime configuration (horizon, tick length,
            fleet shape, gates).
        fleet: A fleet object (:class:`~repro.wire.fleet.LiteFleet` or
            :class:`~repro.wire.fleet.StepperFleet`); defaults to a
            ``LiteFleet`` built from ``config``.
        telemetry: Observability handle; pass one constructed with
            ``time_unit="ms"`` -- the runtime advances its clock in
            elapsed wall milliseconds.
        watchdog: Optional divergence watchdog handed to the server (the
            query API then reports quarantine).  Registering 100k
            sources with a watchdog is feasible but rarely worth the
            per-tick checks at soak scale.
        dkf_telemetry: Optional handle for the server's per-source DKF
            counters (small fleets only; see :class:`WireServer`).
        chaos: Optional chaos coordinator (:class:`~repro.wire.chaos.
            ChaosCoordinator`).  When given, its ``install`` hook runs
            once the sockets are open (shapers, fuzzers) and its
            ``on_tick`` coroutine runs after every tick (fault pumps,
            scheduled rebinds, the drain/restart drill).
    """

    backend = "wall-clock"

    def __init__(
        self,
        config: WireConfig,
        fleet=None,
        telemetry=None,
        watchdog=None,
        dkf_telemetry=None,
        chaos=None,
    ) -> None:
        self._config = config
        self.fleet = fleet if fleet is not None else LiteFleet(config)
        self._tel = telemetry or NULL_TELEMETRY
        self._watchdog = watchdog
        self._dkf_tel = dkf_telemetry
        self._chaos = chaos
        self.server: WireServer | None = None
        self.query: QueryServer | None = None
        self.stall_watchdog: StallWatchdog | None = None
        self.udp_endpoint: tuple[str, int] | None = None
        self.tcp_endpoint: tuple[str, int] | None = None
        self.latencies_ms: list[float] = []
        self.query_failures = 0
        self.overruns = 0
        self.ticks_run = 0
        self.wall_seconds = 0.0
        self.primed = 0
        self.suspects = 0
        self.drains = 0
        self.restarts = 0

    # Scheduler contract ---------------------------------------------------

    def run(self) -> int:
        """Execute the configured horizon on a fresh event loop."""
        asyncio.run(self._main())
        return self.ticks_run

    def report(self) -> dict[str, object]:
        """JSON-ready account of the completed run."""
        latencies = sorted(self.latencies_ms)

        def pct(q: float) -> float | None:
            if not latencies:
                return None
            index = min(
                len(latencies) - 1, int(q * (len(latencies) - 1))
            )
            return round(latencies[index], 3)

        qps = (
            len(latencies) / self.wall_seconds
            if self.wall_seconds > 0
            else 0.0
        )
        return {
            "backend": self.backend,
            "ticks": self.ticks_run,
            "tick_seconds": self._config.tick_seconds,
            "wall_seconds": round(self.wall_seconds, 3),
            "overruns": self.overruns,
            "primed": self.primed,
            "suspects": self.suspects,
            "queries": len(latencies),
            "query_failures": self.query_failures,
            "query_qps": round(qps, 2),
            "query_p50_ms": pct(0.50),
            "query_p99_ms": pct(0.99),
            "query_max_ms": pct(1.0),
            "drains": self.drains,
            "restarts": self.restarts,
            "stall_watchdog": (
                self.stall_watchdog.summary()
                if self.stall_watchdog is not None
                else {}
            ),
            "fleet": self.fleet.summary(),
            "server": (
                self.server.counters.as_dict()
                if self.server is not None
                else {}
            ),
            "rejections": (
                self.server.poison.as_dict()
                if self.server is not None
                else {}
            ),
        }

    # Event-loop body ------------------------------------------------------

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        config = self._config
        self.server = WireServer(
            config,
            telemetry=self._tel,
            watchdog=self._watchdog,
            on_scales=self.fleet.apply_scales,
            dkf_telemetry=self._dkf_tel,
        )
        probe_task: asyncio.Task | None = None
        stall_task: asyncio.Task | None = None
        try:
            self.udp_endpoint = self.server.open(loop)
            self.fleet.open(loop, self.udp_endpoint)
            self.server.register_fleet(
                self.fleet.source_ids,
                self.fleet.dkf_config(),
                self.fleet.transport_policy(),
            )
            self.query = QueryServer(
                self.server, config, self._tel,
                poison=self.server.poison,
            )
            self.tcp_endpoint = await self.query.start()
            self.stall_watchdog = StallWatchdog(
                budget_ms=(
                    config.stall_budget_ms
                    if config.stall_budget_ms is not None
                    else config.tick_ms
                ),
                interval_s=min(max(config.tick_seconds / 4, 0.01), 0.25),
                telemetry=self._tel,
                on_stall=self._escalate_stall,
            )
            stall_task = asyncio.ensure_future(self.stall_watchdog.run())
            if config.query_rate > 0:
                probe_task = asyncio.ensure_future(self._probe())
            if self._chaos is not None:
                self._chaos.install(self, loop)

            t0 = loop.time()
            for tick in range(1, config.ticks + 1):
                target = t0 + tick * config.tick_seconds
                now = loop.time()
                if now < target:
                    await asyncio.sleep(target - now)
                else:
                    self.overruns += 1
                await self.fleet.step_tick(tick)
                await self.server.process_tick(tick)
                if self._chaos is not None:
                    await self._chaos.on_tick(tick, self)
                if self._tel.enabled:
                    self._tel.set_tick(
                        int((loop.time() - t0) * 1000.0)
                    )
                self.ticks_run = tick
            # Settle: no new traffic, but let straggling datagrams and
            # acks land so the conservation books can balance.
            for extra in range(1, _SETTLE_ROUNDS + 1):
                await asyncio.sleep(min(config.tick_seconds, 0.05))
                await self.server.process_tick(config.ticks + extra)
                self.fleet.settle(config.ticks + extra)
            self.wall_seconds = loop.time() - t0
            self._close_books()
        finally:
            for task in (probe_task, stall_task):
                if task is not None:
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
            if self._chaos is not None:
                await self._chaos.teardown(self)
            if self.query is not None:
                await self.query.close()
            self.server.close()
            self.fleet.close()

    def _escalate_stall(self, lag_ms: float) -> None:
        """Stall escalation: one planned widening step, applied now."""
        if self.server is None:
            return
        changes = self.server.overload.plan_widen(self.ticks_run, 1)
        if changes:
            self.fleet.apply_scales(changes)

    # Drain / hot restart --------------------------------------------------

    async def drain(self, checkpoint_dir: str | None = None) -> dict:
        """Zero-loss drain: stop intake, flush, checkpoint, close.

        Ordering is the whole proof.  (1) The receiver deregisters, so
        no new datagram can be accepted -- anything arriving now dies in
        the kernel and is, by definition, unacknowledged.  (2) The query
        listener closes.  (3) The inbox is flushed to exhaustion, so
        every datagram the runtime ever *accepted* reaches the DKF and
        its ack hits the wire.  (4) The checkpoint is cut *after* that
        flush -- the last state change before close -- so any ack the
        fleet has ever received satisfies ``ack.seq <= checkpointed
        expected_seq``.  (5) Sockets close.  Returns the snapshot, and
        persists it through the PR-3 :class:`CheckpointStore` (WAL
        machinery included) when ``checkpoint_dir`` is given.
        """
        server = self.server
        server.stop_receiving()
        if self.query is not None:
            await self.query.close()
            self.query = None
        server.flush_inbox()
        snapshot = server.checkpoint_snapshot(self.ticks_run)
        if checkpoint_dir is not None:
            CheckpointStore(checkpoint_dir).save(snapshot)
        server.close()
        self.drains += 1
        if self._tel.enabled:
            self._tel.emit("wire.drain", at_tick=self.ticks_run)
        return snapshot

    async def restart(self, snapshot: dict) -> None:
        """Hot restart: re-bind old endpoints, recover, re-prime.

        The UDP socket and TCP listener come back on the exact concrete
        addresses they had before :meth:`drain` (UDP has no TIME_WAIT;
        the TCP listener was closed cleanly), so the fleet's frames and
        the probe's reconnects land without reconfiguration.  The DKF
        state is rebuilt bit-identically from the snapshot; sources the
        checkpoint missed re-prime through the ordinary resync
        handshake once their ack deadlines fire.
        """
        loop = asyncio.get_running_loop()
        server = self.server
        server.restore(snapshot)
        server.open(loop, self.udp_endpoint)
        self.query = QueryServer(
            server, self._config, self._tel, poison=server.poison
        )
        await self.query.start(port=self.tcp_endpoint[1])
        self.restarts += 1
        if self._tel.enabled:
            self._tel.emit("wire.restart", at_tick=self.ticks_run)

    def _close_books(self) -> None:
        dkf = self.server.dkf
        primed = 0
        suspects = 0
        for source_id in self.fleet.source_ids:
            if dkf.is_primed(source_id):
                primed += 1
            if dkf.liveness(source_id)["suspect"]:
                suspects += 1
        self.primed = primed
        self.suspects = suspects
        if self._tel.enabled:
            self._tel.gauge("wire_primed_sources", float(primed))
            self._tel.gauge("wire_suspect_sources", float(suspects))
            self._tel.sample_now()

    # Query-load probe -----------------------------------------------------

    async def _probe(self) -> None:
        """Issue ``answer`` queries at ``query_rate``/s, timing each."""
        loop = asyncio.get_running_loop()
        config = self._config
        interval = 1.0 / config.query_rate
        targets = itertools.cycle(self.fleet.source_ids)
        reader = writer = None
        try:
            while True:
                if writer is None:
                    try:
                        reader, writer = await asyncio.open_connection(
                            *self.tcp_endpoint
                        )
                    except OSError:
                        self.query_failures += 1
                        await asyncio.sleep(interval)
                        continue
                request = {"op": "answer", "source_id": next(targets)}
                started = loop.time()
                try:
                    writer.write(
                        json.dumps(
                            request, separators=(",", ":")
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    line = await reader.readline()
                    if not line:
                        raise ConnectionResetError
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    OSError,
                ):
                    self.query_failures += 1
                    writer.close()
                    reader = writer = None
                    continue
                elapsed_ms = (loop.time() - started) * 1000.0
                self.latencies_ms.append(elapsed_ms)
                if self._tel.enabled:
                    self._tel.observe(
                        "wire_query_latency_ms", elapsed_ms, unit="ms"
                    )
                remaining = interval - (loop.time() - started)
                if remaining > 0:
                    await asyncio.sleep(remaining)
        finally:
            if writer is not None:
                writer.close()
