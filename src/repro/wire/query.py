"""TCP query API: line-delimited JSON over a real socket.

One request per line, one JSON object per response line.  Operations:

* ``{"op": "answer", "source_id": "s12"}`` -- the server's current best
  value with the same honesty flags the tick engine's ``answers()``
  carries: ``staleness_ms`` (wall-clock silence), ``suspect`` (past the
  liveness deadline), ``quarantined`` (divergence-watchdog rung, when a
  watchdog is installed), ``confidence`` and the precision width.
* ``{"op": "answers", "limit": 10}`` -- up to ``limit`` primed sources.
* ``{"op": "forecast", "source_id": "s12", "steps": 5}`` -- the filter's
  forecast trajectory (the capability static caching lacks).
* ``{"op": "stats"}`` -- wire counters, inbox depth and the clock.
* ``{"op": "ping"}`` -- liveness probe (used by latency measurement).

Unknown ops and unknown sources answer with an ``error`` field rather
than dropping the connection; protocol errors on one line never poison
the next.

Adversarial-input posture (PROTOCOL.md §9): every connection carries a
per-read idle deadline (the slow-loris guard), admissions past
``query_max_connections`` get one error line and an immediate close,
each peer address is governed by a token bucket when
``query_rate_limit_per_s`` is set, and *no* request -- malformed,
hostile or merely unlucky -- may raise past :meth:`QueryServer.
dispatch_line`.  Every refusal lands in the shared
:class:`~repro.wire.datagram.PoisonLedger` under a typed reason.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import UnknownSourceError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.wire.config import WireConfig
from repro.wire.datagram import PoisonLedger
from repro.wire.server import WireServer

__all__ = ["QueryServer", "query_line"]

#: Hard cap on one request line; anything longer is a protocol error.
_MAX_LINE_BYTES = 65536


class QueryServer:
    """Line-delimited JSON query endpoint over one :class:`WireServer`.

    Args:
        wire: The UDP-facing server whose answers this endpoint serves.
        config: The wire runtime configuration (tick-to-ms mapping).
        telemetry: Observability handle; every served answer records its
            wall-clock staleness (``unit="ms"``).
        poison: Shared typed-rejection ledger.  Defaults to a private
            one; the runtime passes the wire server's so UDP and TCP
            refusals land in one ``frames_rejected_total`` family.
    """

    def __init__(
        self,
        wire: WireServer,
        config: WireConfig,
        telemetry=None,
        poison: PoisonLedger | None = None,
    ) -> None:
        self._wire = wire
        self._config = config
        self._tel = telemetry or NULL_TELEMETRY
        self.poison = (
            poison if poison is not None else PoisonLedger(telemetry)
        )
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._buckets: dict[str, tuple[float, float]] = {}
        self.queries_served = 0

    async def start(self, port: int | None = None) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port`` overrides the configured TCP port -- the hot-restart
        path uses it to come back on the exact endpoint clients hold.
        """
        self._server = await asyncio.start_server(
            self._handle,
            self._config.host,
            self._config.tcp_port if port is None else port,
            limit=_MAX_LINE_BYTES,
        )
        return self._server.sockets[0].getsockname()

    async def close(self) -> None:
        """Stop accepting, reap open connections, close the listener.

        Open handler tasks are cancelled and awaited here; leaving them
        pending would push the cancellation into loop teardown, where
        asyncio logs it as an unretrieved exception.
        """
        if self._server is not None:
            self._server.close()
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(
                    *self._handlers, return_exceptions=True
                )
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            if len(self._handlers) > self._config.query_max_connections:
                self.poison.reject("too_many_connections")
                writer.write(b'{"error": "too many connections"}\n')
                await writer.drain()
                return
            peername = writer.get_extra_info("peername")
            peer = peername[0] if peername else "?"
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(),
                        self._config.query_idle_timeout_s,
                    )
                except asyncio.TimeoutError:
                    self.poison.reject("idle_timeout")
                    writer.write(b'{"error": "idle timeout"}\n')
                    await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    self.poison.reject("line_too_long")
                    writer.write(b'{"error": "line too long"}\n')
                    await writer.drain()
                    break
                if not line:
                    break
                if self._admit(peer):
                    response = self.dispatch_line(line)
                else:
                    self.poison.reject("rate_limited")
                    response = {"error": "rate limited"}
                writer.write(
                    json.dumps(response, separators=(",", ":")).encode()
                    + b"\n"
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Orderly shutdown from close().  Finishing the task instead
            # of dying cancelled matters: asyncio's stream protocol
            # retrieves task.exception() in a loop callback, which
            # *raises* for a cancelled task and logs a spurious error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # Admission ------------------------------------------------------------

    def _admit(self, peer: str) -> bool:
        """Per-peer token bucket; always admits when rate limiting is off."""
        rate = self._config.query_rate_limit_per_s
        if rate <= 0:
            return True
        burst = self._config.query_rate_burst
        now = asyncio.get_running_loop().time()
        tokens, last = self._buckets.get(peer, (burst, now))
        tokens = min(burst, tokens + (now - last) * rate)
        if tokens < 1.0:
            self._buckets[peer] = (tokens, now)
            return False
        self._buckets[peer] = (tokens - 1.0, now)
        return True

    # Dispatch -------------------------------------------------------------

    def dispatch_line(self, line: bytes) -> dict:
        """Parse and serve one request line (exposed for direct tests).

        Total: every failure mode maps to an ``error`` response and a
        poison-ledger entry.  ``RecursionError`` is a real input class
        here -- a deeply nested JSON array overflows the parser's stack
        long before it overflows memory -- and the final catch-all keeps
        an unforeseen handler bug on *this* line from poisoning the
        connection or the event loop.
        """
        try:
            request = json.loads(line)
        except RecursionError:
            self.poison.reject("bad_json")
            return {"error": "request is too deeply nested"}
        except (json.JSONDecodeError, ValueError):
            self.poison.reject("bad_json")
            return {"error": "request is not valid JSON"}
        if not isinstance(request, dict):
            self.poison.reject("not_object")
            return {"error": "request must be a JSON object"}
        op = request.get("op")
        self.queries_served += 1
        try:
            if op == "ping":
                return {"ok": True, "tick": self._wire.dkf.clock}
            if op == "answer":
                return self._answer(request)
            if op == "answers":
                return self._answers(request)
            if op == "forecast":
                return self._forecast(request)
            if op == "stats":
                return self._stats()
            return {"error": f"unknown op {op!r}"}
        except Exception:
            self.poison.reject("handler_error")
            return {"error": "internal error"}

    def _answer(self, request: dict) -> dict:
        source_id = request.get("source_id")
        if not isinstance(source_id, str):
            return {"error": "answer needs a source_id"}
        dkf = self._wire.dkf
        try:
            liveness = dkf.liveness(source_id)
        except UnknownSourceError:
            return {"error": f"unknown source {source_id!r}"}
        staleness_ms = liveness["staleness_ticks"] * self._config.tick_ms
        primed = dkf.is_primed(source_id)
        quarantined = (
            self._wire.watchdog is not None
            and self._wire.watchdog.is_quarantined(source_id)
        )
        out: dict[str, object] = {
            "source_id": source_id,
            "primed": primed,
            "staleness_ms": staleness_ms,
            "suspect": bool(liveness["suspect"]),
            "degraded": bool(liveness["suspect"]) or not primed,
            "quarantined": quarantined,
        }
        if primed:
            out["value"] = [float(v) for v in dkf.value(source_id)]
            out["confidence"] = dkf.confidence(source_id)
        if self._tel.enabled:
            self._tel.observe(
                "staleness_at_answer_ticks", staleness_ms, unit="ms"
            )
        return out

    def _answers(self, request: dict) -> dict:
        limit = request.get("limit", 10)
        if not isinstance(limit, int) or limit < 1:
            return {"error": "limit must be a positive integer"}
        rows = []
        for source_id in self._wire.dkf.source_ids:
            if len(rows) >= limit:
                break
            if self._wire.dkf.is_primed(source_id):
                rows.append(self._answer({"source_id": source_id}))
        return {"answers": rows, "count": len(rows)}

    def _forecast(self, request: dict) -> dict:
        source_id = request.get("source_id")
        steps = request.get("steps", 1)
        if not isinstance(source_id, str):
            return {"error": "forecast needs a source_id"}
        if not isinstance(steps, int) or steps < 1:
            return {"error": "steps must be a positive integer"}
        try:
            trajectory = self._wire.dkf.forecast(source_id, steps)
        except UnknownSourceError:
            return {"error": f"source {source_id!r} is not primed"}
        return {
            "source_id": source_id,
            "steps": steps,
            "forecast": [
                [float(v) for v in row] for row in trajectory
            ],
        }

    def _stats(self) -> dict:
        return {
            "tick": self._wire.dkf.clock,
            "inbox_depth": self._wire.inbox_depth,
            "queries_served": self.queries_served,
            "wire": self._wire.counters.as_dict(),
        }


async def query_line(
    host: str, port: int, request: dict, timeout: float = 5.0
) -> dict:
    """One-shot client helper: connect, send one request, read one reply."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            json.dumps(request, separators=(",", ":")).encode() + b"\n"
        )
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
